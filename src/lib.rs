//! # append-memory — umbrella crate
//!
//! A full Rust reproduction of Melnyk & Wattenhofer, *"The Append Memory
//! Model: Why BlockDAGs Excel Blockchains"* (SPAA 2020).
//!
//! This crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `am-core` | the append memory, messages, views, reference DAG, chain/GHOST ordering, linearization |
//! | [`bft`] | `am-bft` | deterministic BFT finality embedded in the block DAG: interpreter + finality oracle |
//! | [`sched`] | `am-sched` | the Section 2 formalism + bivalence model checker (Theorem 2.1, Lemma 3.1) |
//! | [`sync`] | `am-sync` | Algorithm 1 (synchronous Byzantine agreement) and its straddling adversaries |
//! | [`mp`] | `am-mp` | the ABD-style message-passing simulation (Algorithms 2–3) |
//! | [`poisson`] | `am-poisson` | the Poisson token authority and discrete-event substrate |
//! | [`protocols`] | `am-protocols` | Algorithms 4/5/6 with the paper's adversaries and Monte-Carlo runners |
//! | [`stats`] | `am-stats` | distributions, estimators, paper bounds, table rendering |
//! | [`node`] | `am-node` | the serving runtime: mempool, archival log, request API, load generator |
//!
//! ## Quickstart
//!
//! ```
//! use append_memory::core::{AppendMemory, MessageBuilder, NodeId, Value, GENESIS};
//!
//! // Three nodes share an append memory.
//! let mem = AppendMemory::new(3);
//! let a = mem
//!     .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS))
//!     .unwrap();
//! let _b = mem
//!     .append(MessageBuilder::new(NodeId(1), Value::minus()).parent(a))
//!     .unwrap();
//! // Reads are immutable snapshots; the reference graph orders them.
//! let view = mem.read();
//! let chain = append_memory::core::longest_chain(&view);
//! assert_eq!(chain.len(), 3); // genesis → a → b
//! ```
//!
//! Run `cargo run --release -p am-experiments` to regenerate every
//! theorem's quantitative claim (E1–E13; see DESIGN.md / EXPERIMENTS.md).

#![forbid(unsafe_code)]

pub use am_bft as bft;
pub use am_core as core;
pub use am_mp as mp;
pub use am_node as node;
pub use am_poisson as poisson;
pub use am_protocols as protocols;
pub use am_sched as sched;
pub use am_stats as stats;
pub use am_sync as sync;
