//! The JSON value tree shared by the vendored `serde` and `serde_json`.

use std::fmt::Write as _;

/// A JSON number, preserving integer exactness (u64/i64 round-trip
/// losslessly; only genuine floats go through f64).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point.
    Float(f64),
}

impl From<u64> for Number {
    fn from(u: u64) -> Number {
        Number::UInt(u)
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        if i >= 0 {
            Number::UInt(i as u64)
        } else {
            Number::Int(i)
        }
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Number {
        Number::Float(f)
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a.total_cmp(b) == std::cmp::Ordering::Equal,
            (Number::UInt(a), Number::Int(b)) | (Number::Int(b), Number::UInt(a)) => {
                i64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            _ => false,
        }
    }
}

/// A parsed or constructed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short noun for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Reads the value as u64 if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(u)) => Some(*u),
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Reads the value as i64 if losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Reads the value as f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(f)) => Some(*f),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }

    fn write(&self, out: &mut String, pretty: bool, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, depth + 1);
                    }
                    item.write(out, pretty, depth + 1);
                }
                if pretty {
                    newline_indent(out, depth);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, depth + 1);
                    }
                    write_json_string(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, pretty, depth + 1);
                }
                if pretty {
                    newline_indent(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips through f64 parsing.
                let _ = write!(out, "{f:?}");
            } else if f.is_nan() {
                out.push_str("null");
            } else if f > 0.0 {
                // Overflows every finite f64 on parse, reading back as inf.
                out.push_str("1e999");
            } else {
                out.push_str("-1e999");
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::UInt(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.render(false), r#"{"a":1,"b":[null,true]}"#);
        let pretty = v.render(true);
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_roundtrip_via_debug() {
        for f in [0.1, 1.0 / 3.0, 1e-300, -2.5] {
            let mut s = String::new();
            write_number(&mut s, Number::Float(f));
            assert_eq!(s.parse::<f64>().unwrap(), f);
        }
    }

    #[test]
    fn string_escapes() {
        let mut s = String::new();
        write_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn accessors() {
        let v = Value::Number(Number::UInt(5));
        assert_eq!(v.as_u64(), Some(5));
        assert_eq!(v.as_i64(), Some(5));
        assert_eq!(v.as_f64(), Some(5.0));
        let neg = Value::Number(Number::Int(-2));
        assert_eq!(neg.as_u64(), None);
        assert_eq!(neg.as_i64(), Some(-2));
    }
}
