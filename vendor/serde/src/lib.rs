//! Vendored stand-in for `serde` (see `vendor/README.md`).
//!
//! Real serde is a zero-copy visitor framework; this shim is a simple
//! JSON-value-tree mapping: `Serialize` renders to a [`Value`],
//! `Deserialize` rebuilds from one. The derive macros (from the sibling
//! `serde_derive` shim) generate the same *external* JSON shapes serde
//! would: structs as objects, newtype structs as their inner value, unit
//! enum variants as strings, payload variants as single-key objects. The
//! workspace only consumes serde through `derive` + `serde_json`
//! `to_string` / `to_string_pretty` / `from_str`, which this covers.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Deserialization error: a path-annotated message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Creates an error with the given message.
    pub fn msg<S: Into<String>>(s: S) -> Error {
        Error(s.into())
    }
}

/// Types renderable to a JSON [`Value`].
pub trait Serialize {
    /// Renders self as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::msg(format!(
                    "expected unsigned integer, found {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::msg(format!(
                    "expected integer, found {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected char, found {}", other.kind()))),
        }
    }
}

// ---- container impls ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected {}-tuple, found array of {}",
                                expected, items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array (tuple), found {}", other.kind()))),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [-3i8, 0, 5] {
            assert_eq!(i8::from_value(&x.to_value()).unwrap(), x);
        }
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let val = v.to_value();
        assert_eq!(Vec::<(f64, f64)>::from_value(&val).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn range_errors_surface() {
        let big = Value::Number(Number::UInt(300));
        assert!(u8::from_value(&big).is_err());
        assert!(bool::from_value(&big).is_err());
    }
}
