//! Vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the call shape of the real crate (`criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_with_input` /
//! `Bencher::iter`) but measures with a plain wall-clock loop and prints
//! one line per benchmark — no statistics, plots, or baselines. Good
//! enough to compare orders of magnitude offline; not a statistics suite.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the measured closure; handed to benchmark bodies.
pub struct Bencher {
    iters_hint: u64,
}

impl Bencher {
    /// Times `f`: a short warm-up, then batches until the time budget is
    /// spent, reporting mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let budget = Duration::from_millis(20);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < self.iters_hint {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.report(iters.max(1), total);
    }

    fn report(&mut self, iters: u64, total: Duration) {
        let ns = total.as_nanos() as f64 / iters as f64;
        // Stashed by the caller via println; the group prefixes the id.
        println!("{:>14.1} ns/iter ({} iters)", ns, iters);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Caps measured iterations (the real crate's statistical sample
    /// count; here a plain iteration ceiling).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a displayed input parameter.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        print!("bench {}/{} ... ", self.name, id.id);
        let mut b = Bencher {
            iters_hint: self.sample_size as u64 * 10,
        };
        f(&mut b, input);
        self
    }

    /// Benchmarks a closure with no displayed input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {}/{} ... ", self.name, id.into());
        let mut b = Bencher {
            iters_hint: self.sample_size as u64 * 10,
        };
        f(&mut b);
        self
    }

    /// Ends the group (kept for API parity; prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness handle passed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {} ... ", id.into());
        let mut b = Bencher { iters_hint: 1000 };
        f(&mut b);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            ran += 1;
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(ran, 1);
    }
}
