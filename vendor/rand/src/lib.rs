//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (`Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `RngCore`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal implementations of its external dependencies (see
//! `vendor/README.md`). Distribution quality: integer ranges use the
//! widening-multiply (Lemire) method on a full 64-bit draw; floats use the
//! standard 53-bit mantissa-in-[0,1) construction. Streams are *not*
//! bit-compatible with the real `rand` crate — everything in this
//! repository that depends on randomness is seeded and only requires
//! self-consistency, never a specific upstream stream.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard the half-open contract against rounding at both ends.
        x.clamp(self.start, f64::from_bits(self.end.to_bits() - 1))
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
        x.clamp(self.start, f32::from_bits(self.end.to_bits() - 1))
    }
}

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` stand-in: a small fast non-crypto generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the "small rng" of this vendored shim.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn min_positive_range_never_yields_zero() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
