//! The case loop: sample → run → pass / fail / resample.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng as _;

/// How many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is violated; the test fails.
    Fail(String),
    /// The sample does not satisfy a `prop_assume!`; resample.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected sample with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Seeded deterministically per test so
/// failures reproduce without a regressions file.
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

/// Drives a property: samples the strategy tuple `cases` times.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner whose RNG is seeded from `name` (use the test's
    /// module path + function name).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name, then a fixed tweak so the seed is not the
        // raw hash of a short string.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng {
                rng: SmallRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15),
            },
        }
    }

    /// Runs `test` on `config.cases` samples of `strategy`, panicking on
    /// the first failing case. Rejected samples are redrawn and do not
    /// count toward the case total.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
    ) {
        let max_rejects = (self.config.cases as u64).saturating_mul(64).max(1024);
        let mut rejects: u64 = 0;
        for case in 0..self.config.cases {
            loop {
                let value = strategy.sample(&mut self.rng);
                match test(value) {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(why)) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest: too many rejected samples ({rejects}); last: {why}"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
    }
}
