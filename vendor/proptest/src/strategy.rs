//! Strategies: samplable descriptions of value distributions.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A samplable value distribution. Unlike real proptest there is no value
/// tree and no shrinking; `sample` draws one value.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy, fixing its value type (coercion helper for
/// [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// Full-domain sampling for `any::<T>()`.
pub trait Arbitrary {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// Samples any value of `A` uniformly over its domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

// Ranges are strategies: `0u8..3`, `-1i8..=1`, `0.0f64..1.0`, ...

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.clone())
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.clone())
    }
}

// Tuples of strategies sample componentwise, left to right.

macro_rules! strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
