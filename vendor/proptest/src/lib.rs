//! Vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the `proptest!` test macro,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop_map`, `Just`, `prop_oneof!`, `prop::collection::vec`, the
//! `prop_assert*` / `prop_assume!` macros, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! * no shrinking — a failing case reports its case number, not a minimal
//!   counterexample;
//! * seeding is deterministic per test (hash of the test's module path),
//!   so failures reproduce across runs without a regressions file;
//! * `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(&($($s,)+), |($($p,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Picks uniformly among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($s)),+
        ])
    };
}

/// Asserts inside a `proptest!` body; failure fails only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal (requires `Debug` for the default
/// message, like real proptest).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Rejects the current sample without failing; the runner resamples.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    fn pick() -> impl Strategy<Value = Pick> {
        prop_oneof![any::<u8>().prop_map(Pick::A), Just(Pick::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..10, y in -1i8..=1, z in 0usize..3) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1..=1).contains(&y));
            prop_assert!(z < 3);
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for &x in &xs {
                prop_assert!(x < 5, "element {} out of range", x);
            }
        }

        #[test]
        fn oneof_and_assume(p in pick(), n in 0u8..10) {
            prop_assume!(n != 0);
            prop_assert_ne!(n, 0);
            match p {
                Pick::A(_) | Pick::B => {}
            }
        }
    }

    #[test]
    fn same_name_same_samples() {
        let draw = |name: &str| {
            let mut r = TestRunner::new(ProptestConfig::with_cases(5), name);
            let mut out = Vec::new();
            r.run(&(0u64..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(draw("t1"), draw("t1"));
        assert_ne!(draw("t1"), draw("t2"));
    }
}
