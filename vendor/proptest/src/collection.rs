//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// A length distribution for collection strategies. Half-open internally.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Samples `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
