//! Vendored stand-in for `rayon` (see `vendor/README.md`).
//!
//! `into_par_iter` / `par_iter` return the corresponding *sequential*
//! std iterators, so every adapter chain written against rayon's API
//! compiles and produces identical results, executed on one thread. All
//! workspace uses of rayon are order-insensitive reductions over
//! deterministically seeded trials, so sequential execution changes
//! wall-clock only, never results.

#![forbid(unsafe_code)]

pub mod prelude {
    /// `rayon::prelude::IntoParallelIterator`, sequentially.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Hands back the sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `rayon::prelude::IntoParallelRefIterator`, sequentially.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// Hands back the sequential borrowed iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `rayon::prelude::IntoParallelRefMutIterator`, sequentially.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The mutable borrowed iterator type.
        type Iter: Iterator;

        /// Hands back the sequential mutable iterator.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Iter = <&'a mut T as IntoIterator>::IntoIter;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Runs both closures (sequentially) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chains_behave_like_std() {
        let count = (0u64..100)
            .into_par_iter()
            .map(|i| i * 3)
            .filter(|x| x % 2 == 0)
            .count();
        assert_eq!(count, 50);
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
