//! Vendored ChaCha-based generators (`ChaCha8Rng`, `ChaCha20Rng`).
//!
//! The block function is the genuine ChaCha permutation (RFC 8439 quarter
//! rounds, 32-byte key, 64-bit counter), so the statistical quality matches
//! the real `rand_chacha`. `seed_from_u64` expands the seed with SplitMix64
//! into the key words; output streams are therefore *not* bit-identical to
//! upstream `rand_chacha` (the workspace only requires seeded
//! self-consistency, see `vendor/README.md`).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8 or 20 here).
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k" constants.
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14], state[15]: zero nonce (single-stream generator).
    let mut work = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    for (w, s) in work.iter_mut().zip(state.iter()) {
        *w = w.wrapping_add(*s);
    }
    work
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word index in `buf`; 16 means exhausted.
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                // SplitMix64 key expansion, as upstream rand does for
                // seed_from_u64.
                let mut state = seed;
                let mut next = || {
                    state = state.wrapping_add(0x9e3779b97f4a7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                    z ^ (z >> 31)
                };
                let mut key = [0u32; 8];
                for pair in key.chunks_exact_mut(2) {
                    let w = next();
                    pair[0] = w as u32;
                    pair[1] = (w >> 32) as u32;
                }
                $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds — the workspace's standard seeded generator."
);
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn block_function_diffuses() {
        // Flipping one key bit changes roughly half the output bits.
        let mut k1 = [7u32; 8];
        let k2 = k1;
        k1[0] ^= 1;
        let b1 = chacha_block(&k1, 0, 8);
        let b2 = chacha_block(&k2, 0, 8);
        let diff: u32 = b1
            .iter()
            .zip(b2.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!((150..360).contains(&diff), "poor diffusion: {diff} bits");
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} skewed: {b}");
        }
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
