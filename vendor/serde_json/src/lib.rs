//! Vendored stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Rendering delegates to [`serde::Value::render`]; parsing is a small
//! recursive-descent JSON reader producing the same [`Value`] tree, then
//! `T::from_value` rebuilds the target type.

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Number, Serialize};

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render(false))
}

/// Renders pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render(true))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    T::from_value(&v)
}

// ---- parser ----

fn parse_value(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::msg("unexpected end of input")),
        Some(b'n') => expect_lit(b, pos, "null", Value::Null),
        Some(b't') => expect_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::msg(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let val = parse_at(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::msg(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(Error::msg(format!(
            "unexpected byte {:?} at {pos}",
            *c as char
        ))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this workspace's
                        // own output (only \u00xx control escapes), but accept
                        // lone BMP code points.
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("invalid code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::msg("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number slice");
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::UInt(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::Float(f)))
        .map_err(|_| Error::msg(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let src = r#"{"a":1,"b":[true,null,-2,0.5],"c":"x\ny","d":{"e":18446744073709551615}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(
            v.get("d").unwrap().get("e").unwrap().as_u64(),
            Some(u64::MAX)
        );
        let re = to_string(&v).unwrap();
        let v2: Value = from_str(&re).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"{"k":[1,2,3]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1.5, 2, -3e1]").unwrap();
        assert_eq!(xs, vec![1.5, 2.0, -30.0]);
        let n: u8 = from_str("200").unwrap();
        assert_eq!(n, 200);
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("[1] x").is_err());
    }

    #[test]
    fn escapes_parse() {
        let s: String = from_str(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndA");
    }
}
