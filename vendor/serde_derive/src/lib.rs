//! Vendored stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled token walking instead of syn/quote (neither is available
//! offline). Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields          → JSON object
//! * tuple structs with one field       → the inner value (newtype rule)
//! * tuple structs with N > 1 fields    → JSON array
//! * enums of unit variants             → `"VariantName"`
//! * enums with tuple-variant payloads  → `{"VariantName": payload}`
//!   (one payload field → the value itself, several → an array)
//!
//! Generics, named-field enum variants, and `#[serde(...)]` attributes are
//! unsupported and panic at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this arity.
    TupleStruct(usize),
    /// Enum variants: (name, payload arity). Arity 0 = unit variant.
    Enum(Vec<(String, usize)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),",
                        p.name
                    ),
                    1 => format!(
                        "{}::{v}(x0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(x0))]),",
                        p.name
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(::std::vec![{}]))]),",
                            p.name,
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{ fn to_value(&self) -> ::serde::Value {{ {} }} }}",
        p.name, body
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse(input);
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| ::serde::Error::msg(::std::format!(\"{name}: missing field {f}\")))?)?"
                    )
                })
                .collect();
            format!(
                "if !::std::matches!(v, ::serde::Value::Object(_)) {{ return ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"{name}: expected object, found {{}}\", v.kind()))); }} ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Array(items) if items.len() == {n} => ::std::result::Result::Ok({name}({})), _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}: expected array of {n}\")) }}",
                gets.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                        )
                    } else {
                        let gets: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => match payload {{ ::serde::Value::Array(items) if items.len() == {arity} => ::std::result::Result::Ok({name}::{v}({})), _ => ::std::result::Result::Err(::serde::Error::msg(\"{name}::{v}: expected array of {arity}\")) }},",
                            gets.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::String(s) => match s.as_str() {{ {} _ => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"{name}: unknown variant {{s}}\"))) }}, \
                   ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
                     let (tag, payload) = &entries[0]; \
                     match tag.as_str() {{ {} _ => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"{name}: unknown variant {{tag}}\"))) }} \
                   }}, \
                   other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"{name}: expected variant string or single-key object, found {{}}\", other.kind()))) \
                 }}",
                unit_arms.join(" "),
                keyed_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}

// ---- token-level parsing ----

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum keyword, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are unsupported; hand-write the impl for {name}");
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, found {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}` for {name}"),
    };
    Parsed { name, shape }
}

/// Advances past any `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas at angle-bracket depth zero.
/// Groups are opaque single tokens, so only `<`/`>` need depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    split_top_level(stream)
        .into_iter()
        .map(|variant| {
            let mut i = 0;
            skip_attrs_and_vis(&variant, &mut i);
            let name = match variant.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let arity = match variant.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    count_top_level_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => panic!(
                    "serde_derive (vendored): named-field enum variants are unsupported ({name})"
                ),
                _ => 0,
            };
            (name, arity)
        })
        .collect()
}
