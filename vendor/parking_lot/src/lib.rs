//! Vendored stand-in for `parking_lot` built on `std::sync` (see
//! `vendor/README.md`). Lock poisoning is converted to a panic, matching
//! parking_lot's no-poisoning API shape.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
