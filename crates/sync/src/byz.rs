//! Byzantine strategies for the synchronous round model.
//!
//! A strategy plans, per round, a set of appends for the Byzantine nodes.
//! Each planned append carries a *visibility set*: the correct nodes that
//! must see it within the round (everyone else sees it at the next round's
//! read). This is exactly the Section 3.1 straddling power. Because reads
//! are atomic snapshots of one shared memory, the visibility sets of one
//! round must be **nested**; the runner asserts this.

use am_core::{MemoryView, MsgId, NodeId, Round};

/// How a planned Byzantine message chooses its references.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefsPolicy {
    /// Reference every message tagged with the previous round (looks
    /// protocol-compliant).
    PrevRound,
    /// Reference exactly these ids (private-chain construction).
    Ids(Vec<MsgId>),
    /// Reference only genesis.
    Genesis,
}

/// One planned Byzantine append.
#[derive(Clone, Debug)]
pub struct PlannedMsg {
    /// The Byzantine author (must be one of the Byzantine nodes).
    pub author: NodeId,
    /// The claimed value.
    pub value: bool,
    /// The round tag the message claims.
    pub round_tag: Round,
    /// Reference selection.
    pub refs: RefsPolicy,
    /// Correct nodes that see this append within the current round.
    /// Everyone else sees it one round later.
    pub visible_to: Vec<NodeId>,
}

/// A full per-round plan.
#[derive(Clone, Debug, Default)]
pub struct ByzPlan {
    /// Messages to append this round, in append order. Visibility sets
    /// must be nested descending: `visible_to` of message `i+1` ⊆ that of
    /// message `i`.
    pub msgs: Vec<PlannedMsg>,
}

/// Context handed to a strategy when planning a round.
pub struct PlanCtx<'a> {
    /// Current round (1-based).
    pub round: Round,
    /// Total nodes.
    pub n: usize,
    /// Byzantine budget `t` (the protocol runs `t+1` rounds).
    pub t: u32,
    /// The Byzantine node ids (the last `t` indices).
    pub byz_nodes: &'a [NodeId],
    /// The correct node ids.
    pub correct_nodes: &'a [NodeId],
    /// The full current memory (Byzantine nodes read everything).
    pub view: &'a MemoryView,
    /// The correct nodes' input bits (a worst-case adversary knows them).
    pub inputs: &'a [bool],
}

/// A Byzantine strategy.
pub trait ByzStrategy: Send {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// Plan the appends for this round.
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan;
    /// Feedback: the ids the runner assigned to this round's planned
    /// appends, in plan order (lets chain-building strategies reference
    /// their own earlier links).
    fn observe(&mut self, _appended: &[MsgId]) {}
}

/// Appends nothing, ever. Baseline: the protocol must simply agree on the
/// correct majority.
#[derive(Default)]
pub struct Silent;

impl ByzStrategy for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }
    fn plan(&mut self, _ctx: &PlanCtx<'_>) -> ByzPlan {
        ByzPlan::default()
    }
}

/// Follows the protocol exactly but proposes the *minority* value of the
/// correct inputs — the strategy that saturates the `t < n/2` resilience
/// bound: once `t ≥ n/2`, these fully-accepted dissenting values flip the
/// majority and break validity.
#[derive(Default)]
pub struct Dissenter;

impl ByzStrategy for Dissenter {
    fn name(&self) -> &'static str {
        "dissenter"
    }
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan {
        let ones = ctx.inputs.iter().filter(|&&b| b).count();
        let value = ones * 2 < ctx.inputs.len(); // minority of correct inputs
        let msgs = ctx
            .byz_nodes
            .iter()
            .map(|&b| PlannedMsg {
                author: b,
                value,
                round_tag: ctx.round,
                refs: RefsPolicy::PrevRound,
                visible_to: ctx.correct_nodes.to_vec(),
            })
            .collect();
        ByzPlan { msgs }
    }
}

/// Round-1 equivocation: every Byzantine node appends *both* values, one
/// visible to everyone, the other to a nested half — then relays honestly.
#[derive(Default)]
pub struct Equivocator;

impl ByzStrategy for Equivocator {
    fn name(&self) -> &'static str {
        "equivocator"
    }
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan {
        let mut msgs = Vec::new();
        if ctx.round == Round(1) {
            let half = &ctx.correct_nodes[..ctx.correct_nodes.len() / 2];
            for &b in ctx.byz_nodes {
                msgs.push(PlannedMsg {
                    author: b,
                    value: true,
                    round_tag: ctx.round,
                    refs: RefsPolicy::Genesis,
                    visible_to: ctx.correct_nodes.to_vec(),
                });
                msgs.push(PlannedMsg {
                    author: b,
                    value: false,
                    round_tag: ctx.round,
                    refs: RefsPolicy::Genesis,
                    visible_to: half.to_vec(),
                });
            }
        } else {
            for &b in ctx.byz_nodes {
                msgs.push(PlannedMsg {
                    author: b,
                    value: true,
                    round_tag: ctx.round,
                    refs: RefsPolicy::PrevRound,
                    visible_to: ctx.correct_nodes.to_vec(),
                });
            }
        }
        ByzPlan { msgs }
    }
}

/// The Lemma 3.1 adversary: each round, append the minority value visible
/// to only half the correct nodes, so views straddle the round boundary.
#[derive(Default)]
pub struct Straddler;

impl ByzStrategy for Straddler {
    fn name(&self) -> &'static str {
        "straddler"
    }
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan {
        let ones = ctx.inputs.iter().filter(|&&b| b).count();
        let value = ones * 2 < ctx.inputs.len();
        let half = &ctx.correct_nodes[..ctx.correct_nodes.len() / 2];
        let msgs = ctx
            .byz_nodes
            .iter()
            .map(|&b| PlannedMsg {
                author: b,
                value,
                round_tag: ctx.round,
                refs: RefsPolicy::PrevRound,
                visible_to: half.to_vec(),
            })
            .collect();
        ByzPlan { msgs }
    }
}

/// Builds a private chain of Byzantine relays `b_1 → b_2 → … → b_t`,
/// hidden from everyone, then reveals the tip to exactly one correct node
/// in round `t` — forcing that node to extend the chain in round `t+1`,
/// which (per the Theorem 3.2 proof) makes *every* correct node accept the
/// injected value. Tests that late injection cannot split decisions.
#[derive(Default)]
pub struct ChainInjector {
    /// The id of the previous private-chain link.
    tip: Option<MsgId>,
}

impl ByzStrategy for ChainInjector {
    fn name(&self) -> &'static str {
        "chain-injector"
    }
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan {
        let Round(r) = ctx.round;
        if ctx.t == 0 || r > ctx.t {
            return ByzPlan::default();
        }
        let author = ctx.byz_nodes[(r - 1) as usize % ctx.byz_nodes.len()];
        let ones = ctx.inputs.iter().filter(|&&b| b).count();
        let value = ones * 2 < ctx.inputs.len();
        let refs = match self.tip {
            None => RefsPolicy::Genesis,
            Some(id) => RefsPolicy::Ids(vec![id]),
        };
        // Reveal the final link to exactly one correct node in round t; all
        // earlier links stay private this round.
        let visible_to = if r == ctx.t {
            vec![ctx.correct_nodes[0]]
        } else {
            Vec::new()
        };
        ByzPlan {
            msgs: vec![PlannedMsg {
                author,
                value,
                round_tag: ctx.round,
                refs,
                visible_to,
            }],
        }
    }

    fn observe(&mut self, appended: &[MsgId]) {
        if let Some(&id) = appended.last() {
            self.tip = Some(id);
        }
    }
}

impl ChainInjector {
    /// Records the id the runner assigned to this round's link so the next
    /// round can reference it.
    pub fn note_tip(&mut self, id: MsgId) {
        self.tip = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_core::AppendMemory;

    #[allow(clippy::too_many_arguments)]
    fn ctx_fixture(
        n: usize,
        t: u32,
        round: u32,
        mem: &AppendMemory,
        inputs: &[bool],
        byz: &[NodeId],
        correct: &[NodeId],
        view: &MemoryView,
    ) -> PlanCtx<'static> {
        // Lifetimes: tests only — leak the slices.
        let _ = mem;
        PlanCtx {
            round: Round(round),
            n,
            t,
            byz_nodes: Box::leak(byz.to_vec().into_boxed_slice()),
            correct_nodes: Box::leak(correct.to_vec().into_boxed_slice()),
            view: Box::leak(Box::new(view.clone())),
            inputs: Box::leak(inputs.to_vec().into_boxed_slice()),
        }
    }

    #[test]
    fn silent_plans_nothing() {
        let mem = AppendMemory::new(4);
        let v = mem.read();
        let ctx = ctx_fixture(
            4,
            1,
            1,
            &mem,
            &[true, true, false],
            &[NodeId(3)],
            &[NodeId(0), NodeId(1), NodeId(2)],
            &v,
        );
        assert!(Silent.plan(&ctx).msgs.is_empty());
        assert_eq!(Silent.name(), "silent");
    }

    #[test]
    fn dissenter_proposes_minority() {
        let mem = AppendMemory::new(4);
        let v = mem.read();
        let ctx = ctx_fixture(
            4,
            1,
            1,
            &mem,
            &[true, true, false],
            &[NodeId(3)],
            &[NodeId(0), NodeId(1), NodeId(2)],
            &v,
        );
        let plan = Dissenter.plan(&ctx);
        assert_eq!(plan.msgs.len(), 1);
        assert!(
            !plan.msgs[0].value,
            "correct majority is 1 → dissent with 0"
        );
        assert_eq!(plan.msgs[0].visible_to.len(), 3, "dissenter hides nothing");
    }

    #[test]
    fn equivocator_splits_round_one() {
        let mem = AppendMemory::new(5);
        let v = mem.read();
        let correct = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let ctx = ctx_fixture(
            5,
            1,
            1,
            &mem,
            &[true, true, false, false],
            &[NodeId(4)],
            &correct,
            &v,
        );
        let plan = Equivocator.plan(&ctx);
        assert_eq!(plan.msgs.len(), 2);
        assert_ne!(plan.msgs[0].value, plan.msgs[1].value);
        // Nested visibility: second set is a subset of the first.
        assert!(plan.msgs[1]
            .visible_to
            .iter()
            .all(|x| plan.msgs[0].visible_to.contains(x)));
    }

    #[test]
    fn chain_injector_stays_private_until_round_t() {
        let mem = AppendMemory::new(5);
        let v = mem.read();
        let byz = [NodeId(3), NodeId(4)];
        let correct = [NodeId(0), NodeId(1), NodeId(2)];
        let mut s = ChainInjector::default();
        let c1 = ctx_fixture(5, 2, 1, &mem, &[true, true, true], &byz, &correct, &v);
        let p1 = s.plan(&c1);
        assert_eq!(p1.msgs.len(), 1);
        assert!(p1.msgs[0].visible_to.is_empty(), "round 1 link is private");
        s.note_tip(MsgId(7));
        let c2 = ctx_fixture(5, 2, 2, &mem, &[true, true, true], &byz, &correct, &v);
        let p2 = s.plan(&c2);
        assert_eq!(
            p2.msgs[0].visible_to.len(),
            1,
            "round t reveals to one node"
        );
        assert_eq!(p2.msgs[0].refs, RefsPolicy::Ids(vec![MsgId(7)]));
        // Past round t: silent.
        let c3 = ctx_fixture(5, 2, 3, &mem, &[true, true, true], &byz, &correct, &v);
        assert!(s.plan(&c3).msgs.is_empty());
    }
}
