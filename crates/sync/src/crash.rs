//! One-round agreement under crash failures.
//!
//! Section 3's contrast with the message-passing lower bounds: "The
//! previous papers assume that a crashed node can send messages to a
//! subset of the nodes in the system before crashing. This cannot happen
//! in the append memory … all values that have reached the memory will be
//! available to all correct nodes after a time interval of Δ. This
//! implies that agreement with crash failures can be solved in the append
//! memory with synchronous nodes within one round only."
//!
//! A crashed append either reached the memory (then *everyone* sees it)
//! or it did not (then *no one* does) — there is no partial visibility,
//! so a single append-wait-read round yields identical views and a common
//! majority decision.

use am_core::{AppendMemory, MessageBuilder, Round, Time, Value, GENESIS};

/// Per-node crash behaviour in the single round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPlan {
    /// The node completes its append, then crashes (or not — same
    /// visibility either way).
    AfterAppend,
    /// The node crashes before its append reaches the memory.
    BeforeAppend,
}

/// Outcome of a one-round crash-failure run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Decisions of the surviving (and of the crashed-after-append) nodes
    /// that are still running — one per *correct* node.
    pub decisions: Vec<bool>,
    /// Whether all correct nodes decided identically (always true here —
    /// asserting it is the point).
    pub agreement: bool,
    /// Whether validity held for uniform inputs.
    pub validity: bool,
}

/// Runs one round of crash-tolerant agreement: every node appends its
/// input (crashing nodes per their plan), waits Δ, reads, and decides the
/// majority of what it sees (ties to `false`).
///
/// `inputs[i]` is node `i`'s input; `plans[i] = Some(plan)` marks node `i`
/// as crashing. Crashed nodes produce no decision.
pub fn run_crash_one_round(inputs: &[bool], plans: &[Option<CrashPlan>]) -> CrashOutcome {
    let n = inputs.len();
    assert_eq!(plans.len(), n);
    let mem = AppendMemory::new(n);

    // Single append phase: crashed-before nodes never reach the memory.
    for i in 0..n {
        match plans[i] {
            Some(CrashPlan::BeforeAppend) => {}
            _ => {
                mem.append(
                    MessageBuilder::new(am_core::NodeId(i as u32), Value::Bit(inputs[i]))
                        .parent(GENESIS)
                        .round(Round(1)),
                )
                .expect("append valid");
            }
        }
    }
    mem.set_now(Time::new(1.0)); // wait Δ
    mem.seal();

    // Read phase: every surviving node reads the (identical) full memory.
    let view = mem.read();
    let ones = view.iter().filter(|m| m.value == Value::Bit(true)).count();
    let zeros = view.iter().filter(|m| m.value == Value::Bit(false)).count();
    let decision = ones > zeros;

    let decisions: Vec<bool> = (0..n)
        .filter(|&i| plans[i].is_none())
        .map(|_| decision)
        .collect();
    let correct_inputs: Vec<bool> = (0..n)
        .filter(|&i| plans[i].is_none())
        .map(|i| inputs[i])
        .collect();
    let uniform = correct_inputs.iter().all(|&b| b == correct_inputs[0]);
    // Validity here is best-effort for mixed crash patterns: required only
    // when all *participating appends* agree with the correct nodes.
    let appended_uniform = view
        .iter()
        .filter_map(|m| m.value.as_bit())
        .all(|b| correct_inputs.first().map(|&x| x == b).unwrap_or(true));
    CrashOutcome {
        agreement: true, // single shared view ⇒ identical decisions
        validity: !uniform
            || !appended_uniform
            || decisions.first().copied() == correct_inputs.first().copied(),
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_crashes_majority_decision() {
        let out = run_crash_one_round(&[true, true, false], &[None, None, None]);
        assert!(out.agreement);
        assert!(out.validity);
        assert_eq!(out.decisions, vec![true, true, true]);
    }

    #[test]
    fn crash_before_append_is_invisible_to_all() {
        // Node 2 (input true) crashes before appending: the remaining
        // majority is computed over {true, false} → tie → false, but
        // crucially *identically* at every surviving node.
        let out = run_crash_one_round(
            &[true, false, true],
            &[None, None, Some(CrashPlan::BeforeAppend)],
        );
        assert!(out.agreement);
        assert_eq!(out.decisions.len(), 2);
        assert!(out.decisions.iter().all(|&d| d == out.decisions[0]));
    }

    #[test]
    fn crash_after_append_is_visible_to_all() {
        // Node 2 crashes after appending: its value still counts for
        // everyone — no message-passing-style partial visibility.
        let out = run_crash_one_round(
            &[true, false, true],
            &[None, None, Some(CrashPlan::AfterAppend)],
        );
        assert!(out.agreement);
        assert_eq!(
            out.decisions,
            vec![true, true],
            "the crashed append counted"
        );
    }

    #[test]
    fn every_crash_pattern_agrees_in_one_round() {
        // Exhaustive over inputs and crash patterns for n = 4: agreement
        // after ONE round, always — the claim that contrasts with the
        // t+1-round Byzantine bound.
        for input_mask in 0..16u32 {
            let inputs: Vec<bool> = (0..4).map(|i| (input_mask >> i) & 1 == 1).collect();
            for crash_mask in 0..16u32 {
                for before in [true, false] {
                    let plans: Vec<Option<CrashPlan>> = (0..4)
                        .map(|i| {
                            if (crash_mask >> i) & 1 == 1 {
                                Some(if before {
                                    CrashPlan::BeforeAppend
                                } else {
                                    CrashPlan::AfterAppend
                                })
                            } else {
                                None
                            }
                        })
                        .collect();
                    let out = run_crash_one_round(&inputs, &plans);
                    assert!(out.agreement);
                    assert!(
                        out.decisions
                            .iter()
                            .all(|&d| d == *out.decisions.first().unwrap_or(&false)),
                        "inputs {inputs:?} crashes {crash_mask:#b} split"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_inputs_without_dissent_decide_that_input() {
        let out = run_crash_one_round(
            &[true, true, true],
            &[None, None, Some(CrashPlan::BeforeAppend)],
        );
        assert!(out.validity);
        assert!(out.decisions.iter().all(|&d| d));
        let out0 = run_crash_one_round(&[false, false, false], &[None, None, None]);
        assert!(out0.validity);
        assert!(out0.decisions.iter().all(|&d| !d));
    }
}
