//! The chain-acceptance rule of Algorithm 1, Line 6.
//!
//! "Let a value val(w) be accepted, if there exists a chain of t + 1
//! distinct nodes v, w_1, w_2, …, w_t such that (val(v), ∅) is listed in
//! (w_1, L_1), (w_1, L_1) is in (w_2, L_2), …, and (w_{t−1}, L_{t−1}) is
//! in (w_t, L_t)."
//!
//! Structurally: a path of messages, one per round `1..=t+1`, each listed
//! in the next one's reference set, with **pairwise distinct authors**,
//! whose final (round `t+1`) message is in the deciding node's view.
//!
//! Two implementations are provided (ablation A3):
//! * [`accepted_values_naive`] — literal recursive path enumeration;
//! * [`accepted_values`] — DFS with memoized dead states, which prunes the
//!   exponential blow-up on the dense reference graphs correct nodes
//!   produce.

use am_core::view::MemoryView;
use am_core::{Message, MsgId, NodeId, Round, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One accepted round-1 value instance: the proposing author and its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Accepted {
    /// The proposing node (`v` in the chain).
    pub author: NodeId,
    /// The proposed binary value.
    pub value: bool,
    /// The round-1 message carrying it.
    pub msg: MsgId,
}

/// Index of the round-tagged reference graph of a view.
struct RoundIndex<'a> {
    /// Messages by round.
    by_round: HashMap<u32, Vec<&'a Arc<Message>>>,
    /// children[m] = messages listing m among their parents.
    children: HashMap<MsgId, Vec<&'a Arc<Message>>>,
}

impl<'a> RoundIndex<'a> {
    fn new(view: &'a MemoryView) -> RoundIndex<'a> {
        let mut by_round: HashMap<u32, Vec<&'a Arc<Message>>> = HashMap::new();
        let mut children: HashMap<MsgId, Vec<&'a Arc<Message>>> = HashMap::new();
        for m in view.iter() {
            if let Some(Round(r)) = m.round {
                by_round.entry(r).or_default().push(m);
            }
            for &p in &m.parents {
                children.entry(p).or_default().push(m);
            }
        }
        RoundIndex { by_round, children }
    }

    fn round_1(&self) -> &[&'a Arc<Message>] {
        self.by_round.get(&1).map(Vec::as_slice).unwrap_or(&[])
    }
}

fn author_bit(m: &Message) -> Option<u64> {
    m.author.map(|a| 1u64 << (a.0 % 64))
}

/// Pruned DFS: does a distinct-author chain of length `t+1` rounds exist
/// from `start`? `dead` memoizes (msg, author-mask) states proven fruitless.
fn chain_exists(
    idx: &RoundIndex<'_>,
    start: &Arc<Message>,
    t: u32,
    dead: &mut HashSet<(MsgId, u64)>,
) -> bool {
    fn dfs(
        idx: &RoundIndex<'_>,
        m: &Arc<Message>,
        mask: u64,
        t: u32,
        dead: &mut HashSet<(MsgId, u64)>,
    ) -> bool {
        let Some(Round(r)) = m.round else {
            return false;
        };
        if r == t + 1 {
            return true;
        }
        if dead.contains(&(m.id, mask)) {
            return false;
        }
        if let Some(kids) = idx.children.get(&m.id) {
            for k in kids {
                let (Some(Round(kr)), Some(bit)) = (k.round, author_bit(k)) else {
                    continue;
                };
                if kr == r + 1 && mask & bit == 0 && dfs(idx, k, mask | bit, t, dead) {
                    return true;
                }
            }
        }
        dead.insert((m.id, mask));
        false
    }
    let Some(bit) = author_bit(start) else {
        return false;
    };
    dfs(idx, start, bit, t, dead)
}

/// Naive acceptance: literal path enumeration with no memoization
/// (ablation A3 baseline; semantics identical to [`accepted_values`]).
pub fn accepted_values_naive(view: &MemoryView, t: u32) -> Vec<Accepted> {
    fn dfs(idx: &RoundIndex<'_>, m: &Arc<Message>, mask: u64, t: u32) -> bool {
        let Some(Round(r)) = m.round else {
            return false;
        };
        if r == t + 1 {
            return true;
        }
        if let Some(kids) = idx.children.get(&m.id) {
            for k in kids {
                let (Some(Round(kr)), Some(bit)) = (k.round, author_bit(k)) else {
                    continue;
                };
                if kr == r + 1 && mask & bit == 0 && dfs(idx, k, mask | bit, t) {
                    return true;
                }
            }
        }
        false
    }
    let idx = RoundIndex::new(view);
    let mut out = Vec::new();
    for m in idx.round_1() {
        let (Some(author), Value::Bit(value), Some(bit)) = (m.author, m.value, author_bit(m))
        else {
            continue;
        };
        if dfs(&idx, m, bit, t) {
            out.push(Accepted {
                author,
                value,
                msg: m.id,
            });
        }
    }
    out.sort_by_key(|a| a.msg);
    out
}

/// Chain acceptance with dead-state memoization: the accepted round-1
/// value instances visible in `view` under parameter `t`.
pub fn accepted_values(view: &MemoryView, t: u32) -> Vec<Accepted> {
    let idx = RoundIndex::new(view);
    let mut dead: HashSet<(MsgId, u64)> = HashSet::new();
    let mut out = Vec::new();
    for m in idx.round_1() {
        let (Some(author), Value::Bit(value)) = (m.author, m.value) else {
            continue;
        };
        if chain_exists(&idx, m, t, &mut dead) {
            out.push(Accepted {
                author,
                value,
                msg: m.id,
            });
        }
    }
    out.sort_by_key(|a| a.msg);
    out
}

/// Algorithm 1 Line 7: the majority over accepted values; ties decide
/// `false` (the rule must be deterministic and common to all nodes).
pub fn decide(accepted: &[Accepted]) -> bool {
    let ones = accepted.iter().filter(|a| a.value).count();
    let zeros = accepted.len() - ones;
    ones > zeros
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_core::{AppendMemory, MessageBuilder, GENESIS};

    /// Builds a clean 2-round (t=1) history for 3 correct nodes with the
    /// given inputs; returns the memory.
    fn correct_history(inputs: &[bool]) -> AppendMemory {
        let n = inputs.len();
        let mem = AppendMemory::new(n);
        let mut r1 = Vec::new();
        for (i, &b) in inputs.iter().enumerate() {
            let id = mem
                .append(
                    MessageBuilder::new(NodeId(i as u32), Value::Bit(b))
                        .parent(GENESIS)
                        .round(Round(1)),
                )
                .unwrap();
            r1.push(id);
        }
        for (i, &b) in inputs.iter().enumerate() {
            mem.append(
                MessageBuilder::new(NodeId(i as u32), Value::Bit(b))
                    .parents(r1.iter().copied())
                    .round(Round(2)),
            )
            .unwrap();
        }
        mem
    }

    #[test]
    fn all_correct_values_accepted() {
        let mem = correct_history(&[true, false, true]);
        let acc = accepted_values(&mem.read(), 1);
        assert_eq!(acc.len(), 3, "every correct value must be accepted");
        assert!(decide(&acc), "majority of {{1,0,1}} is 1");
    }

    #[test]
    fn naive_and_pruned_agree() {
        let mem = correct_history(&[true, true, false, false, true]);
        let v = mem.read();
        assert_eq!(accepted_values(&v, 1), accepted_values_naive(&v, 1));
    }

    #[test]
    fn unrelayed_value_rejected() {
        // A round-1 value that nobody lists in round 2 has no chain.
        let mem = correct_history(&[false, false]);
        // Node 2 appends round-1 late; no round-2 message references it.
        let mem2 = AppendMemory::new(3);
        let mut r1 = Vec::new();
        for i in 0..2u32 {
            r1.push(
                mem2.append(
                    MessageBuilder::new(NodeId(i), Value::Bit(false))
                        .parent(GENESIS)
                        .round(Round(1)),
                )
                .unwrap(),
            );
        }
        let stray = mem2
            .append(
                MessageBuilder::new(NodeId(2), Value::Bit(true))
                    .parent(GENESIS)
                    .round(Round(1)),
            )
            .unwrap();
        for i in 0..2u32 {
            mem2.append(
                MessageBuilder::new(NodeId(i), Value::Bit(false))
                    .parents(r1.iter().copied())
                    .round(Round(2)),
            )
            .unwrap();
        }
        let acc = accepted_values(&mem2.read(), 1);
        assert_eq!(acc.len(), 2);
        assert!(acc.iter().all(|a| a.msg != stray));
        assert!(!decide(&acc));
        let _ = mem;
    }

    #[test]
    fn chain_needs_distinct_authors() {
        // A node relaying its own round-1 value is not a valid chain.
        let mem = AppendMemory::new(2);
        let m1 = mem
            .append(
                MessageBuilder::new(NodeId(0), Value::Bit(true))
                    .parent(GENESIS)
                    .round(Round(1)),
            )
            .unwrap();
        // Self-relay only.
        mem.append(
            MessageBuilder::new(NodeId(0), Value::Bit(true))
                .parent(m1)
                .round(Round(2)),
        )
        .unwrap();
        let acc = accepted_values(&mem.read(), 1);
        assert!(acc.is_empty(), "self-relay must not satisfy the chain rule");
        assert_eq!(accepted_values_naive(&mem.read(), 1), acc);
    }

    #[test]
    fn cross_relay_is_a_valid_chain() {
        let mem = AppendMemory::new(2);
        let m1 = mem
            .append(
                MessageBuilder::new(NodeId(0), Value::Bit(true))
                    .parent(GENESIS)
                    .round(Round(1)),
            )
            .unwrap();
        mem.append(
            MessageBuilder::new(NodeId(1), Value::Bit(false))
                .parent(m1)
                .round(Round(2)),
        )
        .unwrap();
        let acc = accepted_values(&mem.read(), 1);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].author, NodeId(0));
        assert!(acc[0].value);
    }

    #[test]
    fn t_zero_accepts_direct_values() {
        let mem = AppendMemory::new(2);
        mem.append(
            MessageBuilder::new(NodeId(0), Value::Bit(true))
                .parent(GENESIS)
                .round(Round(1)),
        )
        .unwrap();
        let acc = accepted_values(&mem.read(), 0);
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn equivocating_author_contributes_both_instances() {
        // Author 0 appends two conflicting round-1 values, both relayed.
        let mem = AppendMemory::new(3);
        let a = mem
            .append(
                MessageBuilder::new(NodeId(0), Value::Bit(true))
                    .parent(GENESIS)
                    .round(Round(1)),
            )
            .unwrap();
        let b = mem
            .append(
                MessageBuilder::new(NodeId(0), Value::Bit(false))
                    .parent(GENESIS)
                    .round(Round(1)),
            )
            .unwrap();
        mem.append(
            MessageBuilder::new(NodeId(1), Value::Bit(true))
                .parents([a, b])
                .round(Round(2)),
        )
        .unwrap();
        let acc = accepted_values(&mem.read(), 1);
        assert_eq!(acc.len(), 2, "both equivocated instances accepted");
        // They cancel in the majority.
        assert!(!decide(&acc));
    }

    #[test]
    fn decide_tie_is_false() {
        assert!(!decide(&[]));
        let mem = correct_history(&[true, false]);
        let acc = accepted_values(&mem.read(), 1);
        assert_eq!(acc.len(), 2);
        assert!(!decide(&acc));
    }

    #[test]
    fn larger_t_requires_longer_chains() {
        // 2-round history checked with t=2 (needs 3-round chains): nothing
        // accepted.
        let mem = correct_history(&[true, true, true]);
        let acc = accepted_values(&mem.read(), 2);
        assert!(acc.is_empty());
    }
}
