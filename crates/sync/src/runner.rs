//! The synchronous round scheduler for Algorithm 1.
//!
//! Executes `t + 1` rounds over one [`AppendMemory`]. Per round:
//!
//! 1. every correct node appends `(val(v), L_{r-1})` — its input plus
//!    references to everything it saw for the first time at its previous
//!    read (Line 2 of Algorithm 1);
//! 2. the Byzantine strategy appends its planned messages;
//! 3. every correct node reads (Line 4). Read order is scheduled so each
//!    Byzantine message is seen this round by exactly its requested
//!    visibility set — the Section 3.1 straddling power. Visibility sets
//!    within a round must be nested (reads are atomic snapshots of one
//!    shared memory), which the runner asserts.
//!
//! After round `t + 1` each correct node runs the chain-acceptance rule on
//! its final view and decides the majority (Lines 6–7).

use crate::accept::{accepted_values, decide};
use crate::byz::{ByzPlan, ByzStrategy, PlanCtx, RefsPolicy};
use am_core::{AppendMemory, MessageBuilder, MsgId, NodeId, Round, Time, Value, GENESIS};

/// Parameters of a synchronous run.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    /// Total nodes; the last `t` are Byzantine.
    pub n: usize,
    /// Byzantine count; the protocol runs `t + 1` rounds.
    pub t: u32,
    /// The synchrony bound Δ (pure bookkeeping here: rounds advance the
    /// simulated clock by Δ so outcomes report wall-clock `O(tΔ)`).
    pub delta: f64,
}

impl SyncConfig {
    /// Standard configuration with Δ = 1.
    pub fn new(n: usize, t: u32) -> SyncConfig {
        assert!(n >= 1 && (t as usize) < n, "need t < n");
        SyncConfig { n, t, delta: 1.0 }
    }

    /// Ids of correct nodes (`0 .. n-t`).
    pub fn correct_nodes(&self) -> Vec<NodeId> {
        (0..self.n - self.t as usize)
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Ids of Byzantine nodes (`n-t .. n`).
    pub fn byz_nodes(&self) -> Vec<NodeId> {
        (self.n - self.t as usize..self.n)
            .map(|i| NodeId(i as u32))
            .collect()
    }
}

/// Result of one synchronous execution.
#[derive(Clone, Debug)]
pub struct SyncOutcome {
    /// Per-correct-node decisions, in node order.
    pub decisions: Vec<bool>,
    /// Whether all correct nodes decided the same value.
    pub agreement: bool,
    /// Whether validity held: if all correct inputs were equal, the common
    /// decision matches them (`true` vacuously for mixed inputs, provided
    /// agreement held).
    pub validity: bool,
    /// Rounds executed (`t + 1`).
    pub rounds: u32,
    /// Simulated completion time (`(t+1)·Δ` — the `O(tΔ)` of Theorem 3.2).
    pub finish_time: Time,
    /// Total messages in the memory at decision time.
    pub memory_len: usize,
    /// Total reference-list entries across correct appends — the
    /// "information exchange" a message-passing simulation would have to
    /// ship. Grows Θ(n²·t) for Algorithm 1 (every round, every node
    /// references everything it newly saw), which is what makes the
    /// Section 4 simulation of full-information protocols expensive.
    pub total_refs: usize,
}

/// Runs Algorithm 1 with the given inputs for the correct nodes and the
/// given Byzantine strategy.
///
/// `inputs` must have length `n - t` (one bit per correct node).
///
/// ```
/// use am_sync::{run, Dissenter, SyncConfig};
/// let cfg = SyncConfig::new(4, 1); // t = 1 < n/2: guarantees hold
/// let out = run(&cfg, &[true, true, false], &mut Dissenter);
/// assert!(out.agreement && out.validity);
/// assert_eq!(out.rounds, 2); // t + 1
/// ```
pub fn run(cfg: &SyncConfig, inputs: &[bool], strategy: &mut dyn ByzStrategy) -> SyncOutcome {
    let n_corr = cfg.n - cfg.t as usize;
    assert_eq!(inputs.len(), n_corr, "one input per correct node");
    let correct = cfg.correct_nodes();
    let byz = cfg.byz_nodes();
    let mem = AppendMemory::new(cfg.n);
    let rounds = cfg.t + 1;

    // Per correct node: memory prefix length at its last read. Everyone
    // starts having "read" only genesis.
    let mut read_prefix: Vec<usize> = vec![1; n_corr];
    // Per correct node: ids newly seen at the last read (the L_{r-1} the
    // next append references).
    let mut newly_seen: Vec<Vec<MsgId>> = vec![vec![GENESIS]; n_corr];
    let mut total_refs = 0usize;

    for r in 1..=rounds {
        let round = Round(r);
        // --- Phase 1: correct appends (all land before any read). ---
        for (i, &node) in correct.iter().enumerate() {
            total_refs += newly_seen[i].len();
            mem.append(
                MessageBuilder::new(node, Value::Bit(inputs[i]))
                    .parents(newly_seen[i].iter().copied())
                    .round(round),
            )
            .expect("correct append is valid");
        }

        // --- Phase 2: Byzantine plan. ---
        let view = mem.read();
        let plan: ByzPlan = strategy.plan(&PlanCtx {
            round,
            n: cfg.n,
            t: cfg.t,
            byz_nodes: &byz,
            correct_nodes: &correct,
            view: &view,
            inputs,
        });
        // Order appends so visibility sets descend (the adversary controls
        // its own append order), then assert they nest.
        let mut plan = plan;
        plan.msgs
            .sort_by_key(|m| std::cmp::Reverse(m.visible_to.len()));
        for w in plan.msgs.windows(2) {
            assert!(
                w[1].visible_to.iter().all(|x| w[0].visible_to.contains(x)),
                "visibility sets within a round must be nested (atomic reads)"
            );
        }

        // --- Phase 3: interleave Byzantine appends with correct reads so
        // each message is seen exactly by its visibility set this round. ---
        let mut pending_readers: Vec<usize> = (0..n_corr).collect();
        let do_reads = |mem: &AppendMemory,
                        keep: &dyn Fn(NodeId) -> bool,
                        pending: &mut Vec<usize>,
                        read_prefix: &mut Vec<usize>,
                        newly_seen: &mut Vec<Vec<MsgId>>| {
            let mut still = Vec::new();
            for &i in pending.iter() {
                if keep(correct[i]) {
                    still.push(i);
                } else {
                    let len = mem.len();
                    newly_seen[i] = (read_prefix[i]..len).map(|x| MsgId(x as u64)).collect();
                    read_prefix[i] = len;
                }
            }
            *pending = still;
        };

        let mut appended_ids = Vec::with_capacity(plan.msgs.len());
        for pm in &plan.msgs {
            // Readers not entitled to see `pm` this round read now.
            do_reads(
                &mem,
                &|node| pm.visible_to.contains(&node),
                &mut pending_readers,
                &mut read_prefix,
                &mut newly_seen,
            );
            let parents: Vec<MsgId> = match &pm.refs {
                RefsPolicy::Genesis => vec![GENESIS],
                RefsPolicy::Ids(ids) => ids.clone(),
                RefsPolicy::PrevRound => {
                    if r == 1 {
                        vec![GENESIS]
                    } else {
                        mem.read()
                            .iter()
                            .filter(|m| m.round == Some(Round(r - 1)))
                            .map(|m| m.id)
                            .collect()
                    }
                }
            };
            let id = mem
                .append(
                    MessageBuilder::new(pm.author, Value::Bit(pm.value))
                        .parents(parents)
                        .round(pm.round_tag),
                )
                .expect("byzantine append is structurally valid");
            appended_ids.push(id);
        }
        strategy.observe(&appended_ids);
        // Remaining readers (inside every visibility set) read last.
        do_reads(
            &mem,
            &|_| false,
            &mut pending_readers,
            &mut read_prefix,
            &mut newly_seen,
        );

        mem.set_now(Time::new(r as f64 * cfg.delta));
    }

    // --- Decision: each node applies Lines 6–7 to its final view. ---
    let decisions: Vec<bool> = (0..n_corr)
        .map(|i| {
            let view = mem.read_prefix(read_prefix[i]);
            decide(&accepted_values(&view, cfg.t))
        })
        .collect();

    let agreement = decisions.iter().all(|&d| d == decisions[0]);
    let uniform = inputs.iter().all(|&b| b == inputs[0]);
    let validity = if uniform {
        agreement && decisions[0] == inputs[0]
    } else {
        agreement
    };

    SyncOutcome {
        agreement,
        validity,
        decisions,
        rounds,
        finish_time: Time::new(rounds as f64 * cfg.delta),
        memory_len: mem.len(),
        total_refs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::{ChainInjector, Dissenter, Equivocator, Silent, Straddler};

    #[test]
    fn silent_byz_agrees_on_majority() {
        let cfg = SyncConfig::new(4, 1);
        let out = run(&cfg, &[true, true, false], &mut Silent);
        assert!(out.agreement);
        assert!(out.validity);
        assert!(
            out.decisions.iter().all(|&d| d),
            "majority of {{1,1,0}} is 1"
        );
        assert_eq!(out.rounds, 2);
        assert_eq!(out.finish_time, Time::new(2.0));
    }

    #[test]
    fn uniform_inputs_satisfy_validity_under_all_strategies() {
        for t in [1u32, 2] {
            let n = 2 * t as usize + 2; // t < n/2
            let inputs = vec![true; n - t as usize];
            let strategies: Vec<Box<dyn ByzStrategy>> = vec![
                Box::new(Silent),
                Box::new(Dissenter),
                Box::new(Equivocator),
                Box::new(Straddler),
                Box::new(ChainInjector::default()),
            ];
            for mut s in strategies {
                let cfg = SyncConfig::new(n, t);
                let out = run(&cfg, &inputs, s.as_mut());
                assert!(
                    out.agreement && out.validity,
                    "strategy {} broke t={t}: {:?}",
                    s.name(),
                    out.decisions
                );
                assert!(out.decisions[0], "must decide the uniform input 1");
            }
        }
    }

    #[test]
    fn mixed_inputs_still_agree_below_half() {
        for t in [1u32, 2] {
            let n = 2 * t as usize + 3;
            let n_corr = n - t as usize;
            let inputs: Vec<bool> = (0..n_corr).map(|i| i % 2 == 0).collect();
            let strategies: Vec<Box<dyn ByzStrategy>> = vec![
                Box::new(Dissenter),
                Box::new(Equivocator),
                Box::new(Straddler),
                Box::new(ChainInjector::default()),
            ];
            for mut s in strategies {
                let cfg = SyncConfig::new(n, t);
                let out = run(&cfg, &inputs, s.as_mut());
                assert!(
                    out.agreement,
                    "strategy {} split decisions at t={t}: {:?}",
                    s.name(),
                    out.decisions
                );
            }
        }
    }

    #[test]
    fn dissenter_breaks_validity_at_half() {
        // t = n/2: Byzantine dissenting values tie/outnumber the correct
        // ones and flip the uniform decision — the resilience wall.
        let n = 6;
        let t = 3u32;
        let cfg = SyncConfig::new(n, t);
        let inputs = vec![true; n - t as usize];
        let out = run(&cfg, &inputs, &mut Dissenter);
        assert!(
            !out.validity,
            "t = n/2 must break validity, got {:?}",
            out.decisions
        );
    }

    #[test]
    fn chain_injector_value_accepted_by_all_or_none() {
        // The injected value must never split the decision (Theorem 3.2's
        // "accepted iff at least one correct node extends the chain").
        for n in [5usize, 6, 7] {
            let t = 2u32;
            let n_corr = n - t as usize;
            let inputs: Vec<bool> = (0..n_corr).map(|i| i % 2 == 0).collect();
            let cfg = SyncConfig::new(n, t);
            let out = run(&cfg, &inputs, &mut ChainInjector::default());
            assert!(out.agreement, "n={n}: {:?}", out.decisions);
        }
    }

    #[test]
    fn straddler_cannot_split_with_t_plus_one_rounds() {
        for inputs in [
            vec![true, false, true],
            vec![false, false, true],
            vec![true, true, false],
        ] {
            let cfg = SyncConfig::new(4, 1);
            let out = run(&cfg, &inputs, &mut Straddler);
            assert!(out.agreement, "inputs {inputs:?}: {:?}", out.decisions);
        }
    }

    #[test]
    fn memory_grows_linearly_in_rounds() {
        let cfg = SyncConfig::new(4, 1);
        let out = run(&cfg, &[true, true, false], &mut Dissenter);
        // genesis + 2 rounds × (3 correct + 1 byz) = 9.
        assert_eq!(out.memory_len, 9);
    }

    #[test]
    #[should_panic(expected = "one input per correct node")]
    fn input_arity_checked() {
        let cfg = SyncConfig::new(4, 1);
        let _ = run(&cfg, &[true], &mut Silent);
    }

    #[test]
    fn reference_volume_grows_quadratically() {
        // The "exponential information exchange" observation of Section 4:
        // each correct node references everything it newly saw, so the
        // total reference volume scales like n²·t — quadratic growth in n
        // at fixed t ratio.
        let refs = |n: usize, t: u32| {
            let inputs = vec![true; n - t as usize];
            run(&SyncConfig::new(n, t), &inputs, &mut Silent).total_refs
        };
        let r8 = refs(8, 3);
        let r16 = refs(16, 7);
        let r32 = refs(32, 15);
        assert!(r16 as f64 > 3.0 * r8 as f64, "n 8→16: {r8} → {r16}");
        assert!(r32 as f64 > 3.0 * r16 as f64, "n 16→32: {r16} → {r32}");
    }

    #[test]
    fn t_zero_single_round() {
        let cfg = SyncConfig::new(3, 0);
        let out = run(&cfg, &[false, false, true], &mut Silent);
        assert_eq!(out.rounds, 1);
        assert!(out.agreement);
        assert!(!out.decisions[0], "majority of {{0,0,1}} is 0");
    }
}
