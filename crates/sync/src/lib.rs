//! # am-sync — synchronous Byzantine agreement in the append memory
//!
//! Implements Section 3.2 of the paper: **Algorithm 1**, the simple
//! deterministic Byzantine agreement protocol for synchronous nodes.
//!
//! Each node runs `t + 1` rounds. In round `r` it appends
//! `(val(v), L_{r-1})` — its input value plus references to every command
//! it saw appended in the previous round — waits `Δ`, and reads. After
//! round `t + 1`, a value is *accepted* iff a chain of `t + 1` distinct
//! nodes vouches for it (Line 6 of Algorithm 1), and the decision is the
//! majority over accepted values.
//!
//! The Byzantine power in this model is *straddling*: a Byzantine node can
//! time an append so that only a subset of the correct nodes sees it
//! within the round, the rest one round later (Section 3.1). Because reads
//! of the shared memory are atomic snapshots, realizable visibility
//! subsets in one round are **nested** — the runner schedules reads to
//! realise exactly the subsets a strategy requests, in request order.
//!
//! Modules:
//! * [`accept`] — the chain-acceptance rule, in a naive path-enumeration
//!   form and a pruned DFS form (ablation A3).
//! * [`byz`] — Byzantine strategies: silence, equivocation, straddling,
//!   and chain injection.
//! * [`runner`] — the round scheduler and outcome checking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accept;
pub mod byz;
pub mod crash;
pub mod runner;

pub use accept::{accepted_values, accepted_values_naive};
pub use byz::{
    ByzPlan, ByzStrategy, ChainInjector, Dissenter, Equivocator, PlanCtx, PlannedMsg, RefsPolicy,
    Silent, Straddler,
};
pub use crash::{run_crash_one_round, CrashOutcome, CrashPlan};
pub use runner::{run, SyncConfig, SyncOutcome};
