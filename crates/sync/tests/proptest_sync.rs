//! Failure injection for Algorithm 1: proptest generates *arbitrary*
//! Byzantine plans (values, claimed rounds, reference policies, nested
//! visibility sets) and asserts the theorem's guarantees survive them all
//! below t < n/2.

use am_core::{MsgId, Round};
use am_sync::{run, ByzPlan, ByzStrategy, PlanCtx, PlannedMsg, RefsPolicy, SyncConfig};
use proptest::prelude::*;

/// Description of one planned message, in generator-friendly form.
#[derive(Clone, Debug)]
struct MsgSpec {
    byz_pick: u8,
    value: bool,
    round_lie: u8, // 0 = honest tag, 1 = previous round, 2 = next round
    refs_pick: u8, // 0 = prev round, 1 = genesis, 2 = arbitrary known ids
    visible_len: u8,
}

/// A fully random—but structurally admissible—Byzantine strategy: each
/// round plays the generated specs, with visibility sets realized as
/// nested prefixes of the correct-node list.
struct RandomPlan {
    per_round: Vec<Vec<MsgSpec>>,
}

impl ByzStrategy for RandomPlan {
    fn name(&self) -> &'static str {
        "random-plan"
    }
    fn plan(&mut self, ctx: &PlanCtx<'_>) -> ByzPlan {
        let Round(r) = ctx.round;
        let specs = match self.per_round.get((r - 1) as usize) {
            Some(s) => s,
            None => return ByzPlan::default(),
        };
        let mut msgs = Vec::new();
        // Sort by descending visibility so the nesting requirement holds.
        let mut ordered: Vec<&MsgSpec> = specs.iter().collect();
        ordered.sort_by_key(|s| std::cmp::Reverse(s.visible_len));
        for spec in ordered {
            let author = ctx.byz_nodes[spec.byz_pick as usize % ctx.byz_nodes.len()];
            let round_tag = match spec.round_lie {
                1 if r > 1 => Round(r - 1),
                2 => Round(r + 1),
                _ => Round(r),
            };
            let refs = match spec.refs_pick {
                0 => RefsPolicy::PrevRound,
                1 => RefsPolicy::Genesis,
                _ => {
                    // Arbitrary known ids: a few low ids always exist.
                    let hi = ctx.view.len() as u64;
                    RefsPolicy::Ids(vec![MsgId(spec.refs_pick as u64 % hi)])
                }
            };
            let vis_len = spec.visible_len as usize % (ctx.correct_nodes.len() + 1);
            msgs.push(PlannedMsg {
                author,
                value: spec.value,
                round_tag,
                refs,
                visible_to: ctx.correct_nodes[..vis_len].to_vec(),
            });
        }
        ByzPlan { msgs }
    }
}

fn msg_spec() -> impl Strategy<Value = MsgSpec> {
    (any::<u8>(), any::<bool>(), 0u8..3, 0u8..6, any::<u8>()).prop_map(
        |(byz_pick, value, round_lie, refs_pick, visible_len)| MsgSpec {
            byz_pick,
            value,
            round_lie,
            refs_pick,
            visible_len,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Agreement and (for uniform inputs) validity hold against arbitrary
    /// admissible Byzantine plans whenever t < n/2.
    #[test]
    fn algorithm1_survives_arbitrary_plans(
        n in 4usize..8,
        t in 1u32..3,
        pattern in any::<u16>(),
        plans in prop::collection::vec(prop::collection::vec(msg_spec(), 0..4), 1..4),
    ) {
        let t = t.min(((n - 1) / 2) as u32);
        let n_corr = n - t as usize;
        let inputs: Vec<bool> = (0..n_corr).map(|i| (pattern >> i) & 1 == 1).collect();
        let cfg = SyncConfig::new(n, t);
        let mut strat = RandomPlan { per_round: plans };
        let out = run(&cfg, &inputs, &mut strat);
        prop_assert!(out.agreement, "decisions split: {:?}", out.decisions);
        if inputs.iter().all(|&b| b == inputs[0]) {
            prop_assert!(out.validity, "uniform input flipped: {:?}", out.decisions);
        }
    }

    /// The runner never panics and always produces one decision per
    /// correct node, even at t ≥ n/2 (only the guarantees lapse, not the
    /// execution).
    #[test]
    fn runner_is_total_even_past_half(
        n in 4usize..8,
        extra in 0u32..2,
        plans in prop::collection::vec(prop::collection::vec(msg_spec(), 0..3), 1..5),
    ) {
        let t = (n as u32) / 2 + extra;
        prop_assume!((t as usize) < n);
        let n_corr = n - t as usize;
        let inputs = vec![true; n_corr];
        let cfg = SyncConfig::new(n, t);
        let mut strat = RandomPlan { per_round: plans };
        let out = run(&cfg, &inputs, &mut strat);
        prop_assert_eq!(out.decisions.len(), n_corr);
        prop_assert_eq!(out.rounds, t + 1);
    }
}
