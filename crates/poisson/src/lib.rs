//! # am-poisson — the randomized-memory-access substrate
//!
//! Section 5 of the paper restricts append access by a Poisson process:
//! "The access probability to the append memory model for each node v
//! inside the time interval Δ is a Poisson distributed random variable
//! X_v with rate λ. All random variables X_v are independent and therefore
//! the access rate to the memory by all nodes is described by the random
//! variable Y := Σ_v X_v ∼ Pois(λn)."
//!
//! This crate provides:
//!
//! * [`process`] — exponential inter-arrival sampling and the merged
//!   Poisson token stream (who gets the next append token, and when);
//! * [`token`] — the token authority: a replayable, seeded schedule of
//!   `(time, node)` grants, with adversarial controls (Byzantine nodes may
//!   *bank* their tokens and spend them later — the withholding power of
//!   Lemma 5.5; correct nodes must spend immediately);
//! * [`des`] — a small discrete-event simulator used by the protocol
//!   runners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod process;
pub mod silence;
pub mod token;

pub use des::{EventQueue, Scheduled};
pub use process::{merged_stream, MergedPoisson, PoissonProcess};
pub use silence::{measure_silence, SilenceStats};
pub use token::{Grant, TokenAuthority};
