//! Correct-silence interval statistics (the raw material of Lemma 5.5).
//!
//! The DAG analysis hinges on the interval `T` "during which no correct
//! node appends a value to the memory": the adversary's withheld burst is
//! limited by the tokens it collects inside `T`. This module measures
//! silence intervals of a grant stream directly, so the Lemma 5.5
//! experiment can compare the simulated process against the exponential
//! tail `P[T > x] = exp(−rate_corr · x)`.

use crate::token::TokenAuthority;
use am_core::NodeId;

/// Silence-interval measurements over a horizon of `k_correct` correct
/// grants.
#[derive(Clone, Debug, PartialEq)]
pub struct SilenceStats {
    /// Every gap between consecutive correct grants (simulated time).
    pub gaps: Vec<f64>,
    /// The largest gap observed.
    pub max_gap: f64,
    /// Byzantine grants that fell inside the largest gap — the bank the
    /// Lemma 5.5 adversary can amass during it.
    pub byz_in_max_gap: usize,
}

/// Draws grants until `k_correct` correct grants occurred and reports the
/// correct-silence structure.
pub fn measure_silence(
    n: usize,
    t: usize,
    lambda: f64,
    delta: f64,
    k_correct: usize,
    seed: u64,
) -> SilenceStats {
    assert!(t < n && k_correct >= 2);
    let byz: Vec<NodeId> = (n - t..n).map(|i| NodeId(i as u32)).collect();
    let mut auth = TokenAuthority::new(n, lambda, delta, &byz, seed);
    let mut last_correct = 0.0f64;
    let mut gaps = Vec::with_capacity(k_correct);
    let mut byz_times: Vec<f64> = Vec::new();
    let mut correct_seen = 0usize;
    while correct_seen < k_correct {
        let g = auth.next_grant();
        let ts = g.time.seconds();
        if auth.is_byz(g.node) {
            byz_times.push(ts);
        } else {
            gaps.push(ts - last_correct);
            last_correct = ts;
            correct_seen += 1;
        }
    }
    let (max_idx, max_gap) = gaps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &g)| (i, g))
        .expect("k_correct >= 2");
    // Reconstruct the bounds of the max gap to count Byzantine grants in it.
    let start: f64 = gaps[..max_idx].iter().sum();
    let end = start + max_gap;
    let byz_in_max_gap = byz_times.iter().filter(|&&x| x > start && x < end).count();
    SilenceStats {
        max_gap,
        byz_in_max_gap,
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_stats::{exponential_cdf, ks_fits};

    #[test]
    fn correct_gaps_are_exponential() {
        // Correct arrivals form a Poisson process with rate λ(n−t)/Δ;
        // gaps must pass a KS test against that exponential.
        let (n, t, lambda, delta) = (10usize, 3usize, 0.5f64, 1.0f64);
        let stats = measure_silence(n, t, lambda, delta, 800, 11);
        let rate = lambda * (n - t) as f64 / delta;
        let mut gaps = stats.gaps.clone();
        assert!(
            ks_fits(&mut gaps, exponential_cdf(rate)),
            "correct-gap sample failed KS against Exp({rate})"
        );
    }

    #[test]
    fn max_gap_grows_with_byzantine_share() {
        // Fewer correct nodes → slower correct process → longer silences.
        let lo = measure_silence(12, 1, 0.4, 1.0, 400, 3).max_gap;
        let hi = measure_silence(12, 8, 0.4, 1.0, 400, 3).max_gap;
        assert!(hi > lo, "t=8 silence {hi} must exceed t=1 silence {lo}");
    }

    #[test]
    fn byz_bank_in_gap_scales_with_t() {
        let mut small = 0usize;
        let mut large = 0usize;
        for seed in 0..20 {
            small += measure_silence(12, 2, 0.5, 1.0, 300, seed).byz_in_max_gap;
            large += measure_silence(12, 6, 0.5, 1.0, 300, seed).byz_in_max_gap;
        }
        assert!(
            large > small,
            "more Byzantine nodes must bank more in the silence: {small} vs {large}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = measure_silence(8, 2, 0.5, 1.0, 100, 9);
        let b = measure_silence(8, 2, 0.5, 1.0, 100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn silence_tail_matches_theory() {
        // P[gap > x] ≈ exp(−rate·x): compare the empirical exceedance at
        // one point against the closed form.
        let (n, t, lambda) = (10usize, 3usize, 0.5f64);
        let rate = lambda * (n - t) as f64;
        let x = 1.0 / rate; // P ≈ e^{-1} ≈ 0.3679
        let stats = measure_silence(n, t, lambda, 1.0, 4000, 21);
        let p_emp = stats.gaps.iter().filter(|&&g| g > x).count() as f64 / stats.gaps.len() as f64;
        assert!(
            (p_emp - (-1.0f64).exp()).abs() < 0.03,
            "empirical exceedance {p_emp} vs theory {:.4}",
            (-1.0f64).exp()
        );
    }
}
