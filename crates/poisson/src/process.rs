//! Poisson processes via exponential inter-arrival times.
//!
//! A per-node process with rate `λ/Δ` events per unit time; the merged
//! system process has rate `λn/Δ`. Merging uses the standard
//! superposition: sample the merged exponential, then pick the node
//! uniformly (correct because the minimum of `n` i.i.d. exponentials is
//! exponential with the summed rate and the argmin is uniform).

use am_core::Time;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A single Poisson process with a fixed rate (events per unit time).
pub struct PoissonProcess {
    rate: f64,
    rng: ChaCha8Rng,
    now: Time,
}

impl PoissonProcess {
    /// Creates a process with `rate` events per unit time.
    pub fn new(rate: f64, seed: u64) -> PoissonProcess {
        assert!(rate > 0.0, "rate must be positive");
        PoissonProcess {
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: Time::ZERO,
        }
    }

    /// The process rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the next arrival time (strictly after the previous one).
    pub fn next_arrival(&mut self) -> Time {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let dt = -u.ln() / self.rate;
        self.now = self.now.after(dt);
        self.now
    }

    /// Number of arrivals in `[0, horizon)`, resetting the clock first.
    pub fn count_until(&mut self, horizon: f64) -> u64 {
        self.now = Time::ZERO;
        let mut k = 0;
        loop {
            if self.next_arrival().seconds() >= horizon {
                self.now = Time::ZERO;
                return k;
            }
            k += 1;
        }
    }
}

/// The merged system process: `(time, node)` arrivals with per-node rate
/// `node_rate` over `n` nodes.
pub struct MergedPoisson {
    n: usize,
    merged: PoissonProcess,
    rng: ChaCha8Rng,
}

impl MergedPoisson {
    /// Creates the merged stream: each of `n` nodes fires at `node_rate`.
    pub fn new(n: usize, node_rate: f64, seed: u64) -> MergedPoisson {
        assert!(n > 0);
        MergedPoisson {
            n,
            merged: PoissonProcess::new(node_rate * n as f64, seed),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
        }
    }

    /// Number of merged nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The merged (system) rate.
    pub fn system_rate(&self) -> f64 {
        self.merged.rate()
    }

    /// The next `(time, node)` arrival.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> (Time, usize) {
        let t = self.merged.next_arrival();
        let node = self.rng.gen_range(0..self.n);
        (t, node)
    }
}

/// Convenience: the first `k` arrivals of a merged stream.
pub fn merged_stream(n: usize, node_rate: f64, seed: u64, k: usize) -> Vec<(Time, usize)> {
    let mut m = MergedPoisson::new(n, node_rate, seed);
    (0..k).map(|_| m.next()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = PoissonProcess::new(2.0, 1);
        let mut prev = Time::ZERO;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = PoissonProcess::new(3.0, 2);
        let horizon = 2000.0;
        let k = p.count_until(horizon);
        let measured = k as f64 / horizon;
        assert!(
            (measured - 3.0).abs() < 0.15,
            "measured rate {measured} too far from 3.0"
        );
    }

    #[test]
    fn count_variance_is_poisson_like() {
        // For Pois(λ·h), mean ≈ variance.
        let mut counts = Vec::new();
        for seed in 0..200u64 {
            let mut p = PoissonProcess::new(1.0, seed);
            counts.push(p.count_until(10.0) as f64);
        }
        let mean: f64 = counts.iter().sum::<f64>() / counts.len() as f64;
        let var: f64 =
            counts.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (counts.len() - 1) as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean {mean}");
        assert!(
            (var / mean - 1.0).abs() < 0.5,
            "index of dispersion {}",
            var / mean
        );
    }

    #[test]
    fn merged_rate_is_sum() {
        let m = MergedPoisson::new(8, 0.5, 3);
        assert_eq!(m.system_rate(), 4.0);
        assert_eq!(m.n(), 8);
    }

    #[test]
    fn merged_nodes_roughly_uniform() {
        let arrivals = merged_stream(4, 1.0, 5, 8000);
        let mut counts = [0usize; 4];
        for (_, node) in &arrivals {
            counts[*node] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 2000.0).abs() < 250.0,
                "node counts skewed: {counts:?}"
            );
        }
        // Times ascend.
        for w in arrivals.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = merged_stream(3, 1.0, 9, 50);
        let b = merged_stream(3, 1.0, 9, 50);
        assert_eq!(a, b);
        let c = merged_stream(3, 1.0, 10, 50);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = PoissonProcess::new(0.0, 1);
    }
}
