//! A minimal discrete-event queue for the protocol runners.
//!
//! A binary heap of `(Time, seq, payload)` entries; `seq` breaks time ties
//! in insertion order so runs are deterministic.

use am_core::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// Fire time.
    pub time: Time,
    seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour in BinaryHeap (max-heap).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-time event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Time,
    obs_scheduled: am_obs::Counter,
    obs_popped: am_obs::Counter,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            obs_scheduled: am_obs::counter("poisson.des.scheduled"),
            obs_popped: am_obs::counter("poisson.des.popped"),
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `t`. Scheduling in the past is a
    /// logic error and panics.
    pub fn schedule(&mut self, t: Time, event: E) {
        assert!(t >= self.now, "cannot schedule into the past");
        self.obs_scheduled.inc();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: t,
            seq,
            event,
        });
    }

    /// Schedules `event` `dt` after now.
    pub fn schedule_after(&mut self, dt: f64, event: E) {
        let t = self.now.after(dt);
        self.schedule(t, event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.heap.pop()?;
        self.obs_popped.inc();
        self.now = s.time;
        Some(s)
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(3.0), "c");
        q.schedule(Time::new(1.0), "a");
        q.schedule(Time::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(1.0), 1);
        q.schedule(Time::new(1.0), 2);
        q.schedule(Time::new(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5.0), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::new(5.0));
        q.schedule_after(1.5, ());
        let s = q.pop().unwrap();
        assert_eq!(s.time, Time::new(6.5));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5.0), ());
        q.pop();
        q.schedule(Time::new(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::new(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
