//! A minimal discrete-event queue for the protocol runners.
//!
//! A thin wrapper over the shared slab-backed event core
//! ([`am_net::queue::EventQueue`]) keyed by `(Time, seq)`; `seq` breaks
//! time ties in insertion order so runs are deterministic, and node
//! storage is recycled in place instead of reallocated per event.

use am_core::Time;

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// Fire time.
    pub time: Time,
    #[allow(dead_code)]
    seq: u64,
    /// Payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

/// A deterministic min-time event queue.
pub struct EventQueue<E> {
    core: am_net::queue::EventQueue<Time, E>,
    now: Time,
    obs_scheduled: am_obs::Counter,
    obs_popped: am_obs::Counter,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            core: am_net::queue::EventQueue::new(),
            now: Time::ZERO,
            obs_scheduled: am_obs::counter("poisson.des.scheduled"),
            obs_popped: am_obs::counter("poisson.des.popped"),
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` at absolute time `t`. Scheduling in the past is a
    /// logic error and panics.
    pub fn schedule(&mut self, t: Time, event: E) {
        assert!(t >= self.now, "cannot schedule into the past");
        self.obs_scheduled.inc();
        self.core.schedule(t, event);
    }

    /// Schedules `event` `dt` after now.
    pub fn schedule_after(&mut self, dt: f64, event: E) {
        let t = self.now.after(dt);
        self.schedule(t, event);
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let (time, seq, event) = self.core.pop()?;
        self.obs_popped.inc();
        self.now = time;
        Some(Scheduled { time, seq, event })
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(3.0), "c");
        q.schedule(Time::new(1.0), "a");
        q.schedule(Time::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(1.0), 1);
        q.schedule(Time::new(1.0), 2);
        q.schedule(Time::new(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5.0), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::new(5.0));
        q.schedule_after(1.5, ());
        let s = q.pop().unwrap();
        assert_eq!(s.time, Time::new(6.5));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(Time::new(5.0), ());
        q.pop();
        q.schedule(Time::new(1.0), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::new(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
