//! The token authority: randomized append access.
//!
//! "An append operation … will require a token that is given to the node
//! by some authority who controls the access." The authority samples the
//! merged Poisson stream and hands out [`Grant`]s. Correct nodes must
//! spend a grant immediately (synchronous nodes, Section 5: the access
//! rate is tied to Δ); Byzantine nodes may *bank* grants and spend them in
//! a burst later — the withholding power behind Lemma 5.5.

use crate::process::MergedPoisson;
use am_core::{NodeId, Time};

/// One append token: `node` may append at `time`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grant {
    /// The granted node.
    pub node: NodeId,
    /// The grant (and, for correct nodes, spend) time.
    pub time: Time,
}

/// A seeded, replayable stream of grants with Byzantine banking.
///
/// ```
/// use am_poisson::TokenAuthority;
/// use am_core::NodeId;
/// let mut auth = TokenAuthority::new(4, 1.0, 1.0, &[NodeId(3)], 7);
/// let g = auth.next_grant();
/// assert!(g.time.seconds() > 0.0);
/// assert!(g.node.index() < 4);
/// ```
pub struct TokenAuthority {
    stream: MergedPoisson,
    byz: Vec<bool>,
    banked: Vec<Grant>,
    granted: u64,
    granted_byz: u64,
    prev_grant: Time,
    obs_grants: am_obs::Counter,
    obs_banked: am_obs::Counter,
    obs_interarrival: am_obs::Histogram,
}

impl TokenAuthority {
    /// Creates the authority: `n` nodes, per-node rate `lambda / delta`
    /// (so that a node receives `Pois(λ)` tokens per interval Δ, as the
    /// model prescribes), with `byz` marking Byzantine nodes.
    pub fn new(n: usize, lambda: f64, delta: f64, byz: &[NodeId], seed: u64) -> TokenAuthority {
        assert!(lambda > 0.0 && delta > 0.0);
        let mut flags = vec![false; n];
        for b in byz {
            flags[b.index()] = true;
        }
        TokenAuthority {
            stream: MergedPoisson::new(n, lambda / delta, seed),
            byz: flags,
            banked: Vec::new(),
            granted: 0,
            granted_byz: 0,
            prev_grant: Time::ZERO,
            obs_grants: am_obs::counter("poisson.grants"),
            obs_banked: am_obs::counter("poisson.grants_banked"),
            obs_interarrival: am_obs::histogram("poisson.interarrival_ns"),
        }
    }

    /// Whether `node` is Byzantine.
    pub fn is_byz(&self, node: NodeId) -> bool {
        self.byz[node.index()]
    }

    /// Draws the next grant from the Poisson stream.
    pub fn next_grant(&mut self) -> Grant {
        let (time, node) = self.stream.next();
        self.granted += 1;
        let node = NodeId(node as u32);
        if self.is_byz(node) {
            self.granted_byz += 1;
        }
        self.obs_grants.inc();
        let prev_ns = (self.prev_grant.seconds() * 1e9) as u64;
        let now_ns = (time.seconds() * 1e9) as u64;
        self.obs_interarrival.record(now_ns.saturating_sub(prev_ns));
        // The wait between consecutive system-wide grants, on the node
        // that received the token.
        am_obs::record_sim_span("poisson/grant", node.index(), prev_ns, now_ns);
        self.prev_grant = time;
        Grant { node, time }
    }

    /// Draws the next grant; if it belongs to a Byzantine node, banks it
    /// and keeps drawing until a correct node's grant appears. Returns the
    /// correct grant. (The adversary's "withhold everything" mode.)
    pub fn next_correct_grant_banking_byz(&mut self) -> Grant {
        loop {
            let g = self.next_grant();
            if self.is_byz(g.node) {
                self.obs_banked.inc();
                self.banked.push(g);
            } else {
                return g;
            }
        }
    }

    /// Takes all banked Byzantine grants (the adversary spends its burst).
    pub fn drain_banked(&mut self) -> Vec<Grant> {
        std::mem::take(&mut self.banked)
    }

    /// Banked grants currently held.
    pub fn banked_count(&self) -> usize {
        self.banked.len()
    }

    /// Total grants drawn.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Grants drawn for Byzantine nodes.
    pub fn granted_byz(&self) -> u64 {
        self.granted_byz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_ascend_in_time() {
        let mut auth = TokenAuthority::new(4, 1.0, 1.0, &[], 11);
        let mut prev = Time::ZERO;
        for _ in 0..100 {
            let g = auth.next_grant();
            assert!(g.time > prev);
            prev = g.time;
            assert!(g.node.index() < 4);
        }
        assert_eq!(auth.granted(), 100);
        assert_eq!(auth.granted_byz(), 0);
    }

    #[test]
    fn byzantine_fraction_of_grants_matches_t_over_n() {
        let byz: Vec<NodeId> = (6..8).map(NodeId).collect(); // t=2, n=8
        let mut auth = TokenAuthority::new(8, 0.5, 1.0, &byz, 13);
        for _ in 0..8000 {
            auth.next_grant();
        }
        let frac = auth.granted_byz() as f64 / auth.granted() as f64;
        assert!(
            (frac - 0.25).abs() < 0.03,
            "byz token share {frac} should be ≈ t/n = 0.25"
        );
    }

    #[test]
    fn banking_accumulates_and_drains() {
        let byz = vec![NodeId(3)];
        let mut auth = TokenAuthority::new(4, 1.0, 1.0, &byz, 17);
        let mut correct_seen = 0;
        while correct_seen < 50 {
            let g = auth.next_correct_grant_banking_byz();
            assert!(!auth.is_byz(g.node));
            correct_seen += 1;
        }
        let banked = auth.banked_count();
        assert!(
            banked > 5,
            "≈1/4 of grants should have banked, got {banked}"
        );
        let drained = auth.drain_banked();
        assert_eq!(drained.len(), banked);
        assert!(drained.iter().all(|g| auth.is_byz(g.node)));
        assert_eq!(auth.banked_count(), 0);
    }

    #[test]
    fn per_node_rate_is_lambda_per_delta() {
        // λ=2, Δ=4 → per-node rate 0.5/unit; 4 nodes → system rate 2.
        let mut auth = TokenAuthority::new(4, 2.0, 4.0, &[], 23);
        let mut last = Time::ZERO;
        let k = 4000;
        for _ in 0..k {
            last = auth.next_grant().time;
        }
        let measured = k as f64 / last.seconds();
        assert!(
            (measured - 2.0).abs() < 0.15,
            "system rate {measured} should be ≈ 2"
        );
    }
}
