//! The finality oracle: a Casper-CBC-style safety criterion over the
//! interpreted DAG.
//!
//! A chain block `X` at height `h` becomes **final** when the oracle's
//! view contains a quorum `V` (default `⌊2n/3⌋ + 1` authors, none caught
//! equivocating) such that
//!
//! 1. every member's latest block votes for `X` (its selected chain
//!    passes through `X`), and
//! 2. the members have *pairwise mutual visibility of those votes*: for
//!    every `u, v ∈ V`, the highest-round block of `v` inside `u`'s
//!    latest block's past cone also votes for `X`.
//!
//! Condition 2 is the clique condition of the Casper-CBC safety oracle:
//! each member has justified evidence that every other member is
//! committed to `X`, so no member can abandon `X` without either seeing
//! a heavier opposing quorum (impossible while fewer than `2q − n`
//! authors equivocate) or equivocating itself — and equivocators are
//! excluded from all later quorums the moment two blocks share an
//! (author, round) slot. All the evidence lives in the DAG: any observer
//! whose view covers the members' latest blocks reaches the same
//! verdict, which is what makes per-node oracles agree (the nonforking
//! invariant checked exhaustively in `am-sched` and statistically by the
//! 300-seed suite).
//!
//! The watermark only advances: heights are finalized in order, each new
//! candidate must extend the previously finalized block (a quorum
//! candidate that fails this raises [`conflict_detected`]
//! (FinalityOracle::conflict_detected) instead of forking), and per
//! advance the oracle maintains
//!
//! * a rolling **finalized-prefix digest** mixed over the newly
//!   finalized chain blocks only — O(new tail), and
//! * the finalized **past cone** via a [`ConeCoverTracker`] pinned to the
//!   finalized head — successive heads descend from one another, so the
//!   marks extend in place (the PR5 fast path) and
//!   [`is_final`](FinalityOracle::is_final) is an O(1) membership probe.

use crate::interpret::{DagInterpreter, Role, NONE};
use am_core::{ConeCoverTracker, MsgId, GENESIS};

/// Splitmix64-style mixer for the finalized-prefix digest (same family
/// as the archive digest chain in `am-node`).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic BFT finality over an observed block DAG.
///
/// Feed every block exactly once via [`observe`](FinalityOracle::observe),
/// parents first (any ancestor-closed order works — per-node oracles feed
/// blocks in their own admission order). Global ids need not be dense:
/// the oracle remaps them to local interpretation ids internally.
///
/// ```
/// use am_bft::FinalityOracle;
/// use am_core::MsgId;
/// let mut o = FinalityOracle::new(3); // quorum 3
/// let mut tip = MsgId(0);
/// for i in 1..=8u64 {
///     let id = MsgId(i);
///     o.observe(id, (i % 3) as usize, &[tip]);
///     tip = id;
/// }
/// // All three authors vote and see each other's votes: the prefix
/// // behind the mutual-visibility frontier is final.
/// assert!(o.finalized_height() >= 1);
/// assert!(o.is_final(MsgId(1)));
/// assert!(!o.conflict_detected());
/// ```
#[derive(Clone, Debug)]
pub struct FinalityOracle {
    interp: DagInterpreter,
    quorum: usize,
    /// Local id → global `MsgId` raw value.
    global: Vec<u64>,
    /// Global id index → local id (`NONE` = unobserved).
    local_of: Vec<u32>,
    /// Closed past cone of the finalized head (local ids).
    cone: ConeCoverTracker,
    /// Finalized chain blocks, height order (local ids; genesis omitted).
    final_chain: Vec<u32>,
    digest: u64,
    /// Chain blocks finalized since the last drain (global ids).
    newly_final: Vec<MsgId>,
    conflict: bool,
    // Scratch (reused across observes).
    pbuf: Vec<u32>,
    pbuf_ids: Vec<MsgId>,
    tally: Vec<(u32, u32)>,
    supporters: Vec<u32>,
}

impl FinalityOracle {
    /// An oracle over `n` authors with the default quorum `⌊2n/3⌋ + 1`.
    pub fn new(n: usize) -> FinalityOracle {
        FinalityOracle::with_quorum(n, 2 * n / 3 + 1)
    }

    /// An oracle with an explicit quorum (clamped to `1..=n`).
    pub fn with_quorum(n: usize, quorum: usize) -> FinalityOracle {
        FinalityOracle {
            interp: DagInterpreter::new(n),
            quorum: quorum.clamp(1, n),
            global: vec![GENESIS.0],
            local_of: vec![0],
            cone: ConeCoverTracker::new(),
            final_chain: Vec::new(),
            digest: 0,
            newly_final: Vec::new(),
            conflict: false,
            pbuf: Vec::new(),
            pbuf_ids: Vec::new(),
            tally: Vec::new(),
            supporters: Vec::new(),
        }
    }

    /// The quorum size in force.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Number of blocks observed (genesis included).
    pub fn blocks_observed(&self) -> usize {
        self.interp.len()
    }

    /// Observes one appended block: `id` is its global id (any sparse
    /// id space; genesis is pre-observed as `MsgId(0)`), `parents` must
    /// all have been observed, `parents[0]` is the selected chain tip.
    /// Advances the finality watermark as far as the new evidence allows.
    pub fn observe(&mut self, id: MsgId, author: usize, parents: &[MsgId]) {
        let gi = id.index();
        if gi >= self.local_of.len() {
            self.local_of.resize(gi + 1, NONE);
        }
        assert!(self.local_of[gi] == NONE, "block observed twice");
        self.pbuf.clear();
        for p in parents {
            let l = self.local_of[p.index()];
            assert!(l != NONE, "parents must be observed before their child");
            self.pbuf.push(l);
        }
        let idx = self.interp.push(author, &self.pbuf);
        self.local_of[gi] = idx;
        self.global.push(id.0);
        self.pbuf_ids.clear();
        self.pbuf_ids
            .extend(self.pbuf.iter().map(|&l| MsgId(l as u64)));
        self.cone
            .on_append(MsgId(idx as u64), &self.pbuf_ids, author < self.interp.n());
        self.try_advance();
    }

    /// Attempts to extend the finalized chain height by height; stops at
    /// the first height whose candidate lacks a mutually-visible quorum.
    fn try_advance(&mut self) {
        let n = self.interp.n();
        loop {
            let h = self.final_chain.len() as u32 + 1;
            // Tally the selected-chain ancestor at height h of every
            // eligible author's latest block.
            self.tally.clear();
            for a in 0..n {
                if self.interp.is_equivocator(a) {
                    continue;
                }
                let Some(l) = self.interp.latest(a) else {
                    continue;
                };
                if self.interp.height_of(l) < h {
                    continue;
                }
                let c = self.interp.ancestor_at(l, h);
                match self.tally.iter_mut().find(|e| e.0 == c) {
                    Some(e) => e.1 += 1,
                    None => self.tally.push((c, 1)),
                }
            }
            // Votes are one-per-author, so at most one candidate can
            // reach a quorum > n/2.
            let Some(&(cand, _)) = self.tally.iter().find(|e| e.1 as usize >= self.quorum) else {
                return;
            };
            // The candidate must extend the finalized prefix; a quorum
            // behind a conflicting branch is a detected safety breach,
            // never a fork.
            let prev = if h == 1 {
                0
            } else {
                self.final_chain[h as usize - 2]
            };
            if self.interp.ancestor_at(cand, h - 1) != prev {
                self.conflict = true;
                return;
            }
            self.supporters.clear();
            for a in 0..n {
                if self.interp.is_equivocator(a) {
                    continue;
                }
                let Some(l) = self.interp.latest(a) else {
                    continue;
                };
                if self.interp.height_of(l) >= h && self.interp.ancestor_at(l, h) == cand {
                    self.supporters.push(a as u32);
                }
            }
            // Clique condition: every member's latest block must witness
            // every other member voting for the candidate.
            let mut clique = true;
            'outer: for &u in &self.supporters {
                let lu = self
                    .interp
                    .latest(u as usize)
                    .expect("supporter has blocks");
                for &v in &self.supporters {
                    if v == u {
                        continue;
                    }
                    let r = self.interp.high_water(lu, v as usize);
                    if r == 0 {
                        clique = false;
                        break 'outer;
                    }
                    let m = self.interp.block_at(v as usize, r);
                    if !self.interp.votes_for(m, cand) {
                        clique = false;
                        break 'outer;
                    }
                }
            }
            if !clique {
                return;
            }
            // Finalize: extend the chain, the rolling digest, and the
            // finalized cone (head descends → marks extend in place).
            self.final_chain.push(cand);
            let a = self.interp.author_of(cand).expect("non-genesis") as u64;
            let r = self.interp.round_of(cand) as u64;
            self.digest = mix(self.digest, (a << 32) | r);
            self.digest = mix(self.digest, self.global[cand as usize]);
            self.cone.cover_of(MsgId(cand as u64));
            self.newly_final.push(MsgId(self.global[cand as usize]));
        }
    }

    /// Height of the finalized chain (number of finalized non-genesis
    /// chain blocks). Monotone.
    pub fn finalized_height(&self) -> usize {
        self.final_chain.len()
    }

    /// Global id of the highest finalized chain block (genesis if none).
    pub fn finalized_head(&self) -> MsgId {
        self.final_chain
            .last()
            .map(|&l| MsgId(self.global[l as usize]))
            .unwrap_or(GENESIS)
    }

    /// Whether the block has been fed to [`observe`](FinalityOracle::observe)
    /// (genesis counts as observed).
    pub fn is_observed(&self, id: MsgId) -> bool {
        let gi = id.index();
        gi < self.local_of.len() && self.local_of[gi] != NONE
    }

    /// Whether the block is final: inside the closed past cone of the
    /// finalized head (its position in every future linearization is
    /// fixed). Genesis is trivially final; unobserved ids are not final.
    pub fn is_final(&self, id: MsgId) -> bool {
        let gi = id.index();
        gi < self.local_of.len() && self.local_of[gi] != NONE && {
            self.cone.in_cone(MsgId(self.local_of[gi] as u64))
        }
    }

    /// Rolling digest over the finalized chain, mixed in height order
    /// from (author, round, global id) — O(new tail) per advance and
    /// equal on any two oracles that finalized the same chain.
    pub fn finalized_digest(&self) -> u64 {
        self.digest
    }

    /// Number of blocks in the closed past cone of the finalized head
    /// (genesis excluded) — the finalized *prefix* of the DAG, which
    /// grows faster than the finalized chain itself.
    pub fn finalized_cone_blocks(&self) -> usize {
        self.cone.covered()
    }

    /// The finalized chain as global ids, height order.
    pub fn finalized_chain(&self) -> Vec<MsgId> {
        self.final_chain
            .iter()
            .map(|&l| MsgId(self.global[l as usize]))
            .collect()
    }

    /// Moves the chain blocks finalized since the last drain (global
    /// ids, height order) into `out`.
    pub fn drain_newly_final(&mut self, out: &mut Vec<MsgId>) {
        out.append(&mut self.newly_final);
    }

    /// Whether the observed block's selected chain passes through the
    /// current finalized head — the fork-choice filter an honest driver
    /// applies before voting (never extend a chain that abandons your
    /// own finalized prefix). Genesis-rooted trivially true while
    /// nothing is final; false for unobserved ids.
    pub fn extends_finalized(&self, id: MsgId) -> bool {
        let gi = id.index();
        if gi >= self.local_of.len() || self.local_of[gi] == NONE {
            return false;
        }
        let head = self.final_chain.last().copied().unwrap_or(0);
        self.interp.votes_for(self.local_of[gi], head)
    }

    /// True if a quorum ever backed a candidate conflicting with the
    /// finalized prefix — a safety breach (only reachable beyond the
    /// tolerated Byzantine fraction), reported instead of forking.
    pub fn conflict_detected(&self) -> bool {
        self.conflict
    }

    /// Number of authors caught equivocating so far.
    pub fn equivocator_count(&self) -> usize {
        self.interp.equivocator_count()
    }

    /// Whether an author has been caught equivocating.
    pub fn is_equivocator(&self, author: usize) -> bool {
        self.interp.is_equivocator(author)
    }

    /// The embedded protocol message carried by an observed block.
    pub fn role_of(&self, id: MsgId) -> Option<Role> {
        let gi = id.index();
        (gi < self.local_of.len() && self.local_of[gi] != NONE)
            .then(|| self.interp.role_of(self.local_of[gi]))
    }

    /// Counts of (proposals, votes, echoes) over the observed blocks,
    /// genesis excluded.
    pub fn role_counts(&self) -> (usize, usize, usize) {
        let (mut p, mut v, mut e) = (0, 0, 0);
        for b in 1..self.interp.len() as u32 {
            match self.interp.role_of(b) {
                Role::Proposal => p += 1,
                Role::Vote => v += 1,
                Role::Echo => e += 1,
            }
        }
        (p, v, e)
    }

    /// Read-only access to the interpretation layer.
    pub fn interpreter(&self) -> &DagInterpreter {
        &self.interp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Round-robin chain over n authors, length `len`; returns the ids.
    fn round_robin(o: &mut FinalityOracle, n: usize, len: u64) -> Vec<MsgId> {
        let mut ids = vec![GENESIS];
        for i in 1..=len {
            let id = MsgId(i);
            o.observe(id, ((i - 1) % n as u64) as usize, &[*ids.last().unwrap()]);
            ids.push(id);
        }
        ids
    }

    #[test]
    fn unanimous_chain_finalizes_behind_the_frontier() {
        let mut o = FinalityOracle::new(4); // quorum 3
        let ids = round_robin(&mut o, 4, 20);
        let h = o.finalized_height();
        assert!(h >= 10, "deep prefix finalizes, got {h}");
        assert!(h < 20, "the frontier itself lacks mutual visibility");
        // Finalized chain is the exact prefix of the single chain.
        assert_eq!(o.finalized_chain(), ids[1..=h].to_vec());
        assert!(o.is_final(ids[1]) && o.is_final(ids[h]));
        assert!(!o.is_final(ids[20]));
        assert!(o.is_final(GENESIS));
        assert!(!o.conflict_detected());
        assert_eq!(o.finalized_head(), ids[h]);
        assert_eq!(o.finalized_cone_blocks(), h);
    }

    #[test]
    fn watermark_is_monotone_and_newly_final_drains_in_order() {
        let mut o = FinalityOracle::new(4);
        let mut tip = GENESIS;
        let mut drained = Vec::new();
        let mut last = 0;
        for i in 1..=30u64 {
            let id = MsgId(i);
            o.observe(id, ((i - 1) % 4) as usize, &[tip]);
            tip = id;
            let h = o.finalized_height();
            assert!(h >= last, "watermark never regresses");
            last = h;
            o.drain_newly_final(&mut drained);
        }
        assert_eq!(drained, o.finalized_chain());
    }

    #[test]
    fn withheld_votes_stall_finality() {
        // n = 4, quorum 3: with two authors silent only 2 vote.
        let mut o = FinalityOracle::new(4);
        let mut tip = GENESIS;
        for i in 1..=30u64 {
            let id = MsgId(i);
            o.observe(id, (i % 2) as usize, &[tip]);
            tip = id;
        }
        assert_eq!(o.finalized_height(), 0, "2 < quorum 3: nothing final");
    }

    #[test]
    fn equivocators_are_excluded_from_quorums() {
        // n = 3, quorum 3: all three must vote. Author 2 equivocates —
        // after detection its votes no longer count, so the watermark
        // freezes at what was finalized before.
        let mut o = FinalityOracle::new(3);
        let ids = round_robin(&mut o, 3, 12);
        let before = o.finalized_height();
        assert!(before >= 1);
        // Author 2 forks its own history: round collision.
        o.observe(MsgId(100), 2, &[ids[3]]);
        assert_eq!(o.equivocator_count(), 1);
        assert!(o.is_equivocator(2));
        for i in 0..20u64 {
            let id = MsgId(200 + i);
            let tip = if i == 0 { ids[12] } else { MsgId(200 + i - 1) };
            o.observe(id, (i % 2) as usize, &[tip]);
        }
        assert_eq!(
            o.finalized_height(),
            before,
            "two non-equivocators cannot reach quorum 3"
        );
        assert!(!o.conflict_detected());
    }

    #[test]
    fn digest_and_chain_agree_across_observation_orders() {
        // Build a random DAG, then feed it to two oracles in different
        // ancestor-closed orders: identical finalized state.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for case in 0..30 {
            let n = 4;
            // Honest authors on one chain (selected parent = previous
            // block, so nobody equivocates), with random merge parents.
            let mut blocks: Vec<(MsgId, usize, Vec<MsgId>)> = Vec::new();
            for i in 1..=60u64 {
                let author = rng.gen_range(0..n);
                let sel = MsgId(i - 1);
                let mut parents = vec![sel];
                if rng.gen_bool(0.4) {
                    let extra = MsgId(rng.gen_range(0..i));
                    if extra != sel {
                        parents.push(extra);
                    }
                }
                blocks.push((MsgId(i), author, parents));
            }
            let mut a = FinalityOracle::new(n);
            for (id, author, parents) in &blocks {
                a.observe(*id, *author, parents);
            }
            // Second order: repeatedly pick a random block whose parents
            // are already observed.
            let mut b = FinalityOracle::new(n);
            let mut pending = blocks.clone();
            let mut seen = vec![GENESIS];
            while !pending.is_empty() {
                let ready: Vec<usize> = (0..pending.len())
                    .filter(|&i| pending[i].2.iter().all(|p| seen.contains(p)))
                    .collect();
                let pick = ready[rng.gen_range(0..ready.len())];
                let (id, author, parents) = pending.remove(pick);
                b.observe(id, author, &parents);
                seen.push(id);
            }
            assert_eq!(
                a.finalized_chain(),
                b.finalized_chain(),
                "case {case}: same block set must finalize the same chain"
            );
            assert_eq!(a.finalized_digest(), b.finalized_digest());
            assert_eq!(a.conflict_detected(), b.conflict_detected());
        }
    }

    #[test]
    fn sparse_global_ids_are_remapped() {
        let mut o = FinalityOracle::new(3);
        o.observe(MsgId(17), 0, &[GENESIS]);
        o.observe(MsgId(400), 1, &[MsgId(17)]);
        o.observe(MsgId(401), 2, &[MsgId(400)]);
        o.observe(MsgId(1000), 0, &[MsgId(401)]);
        o.observe(MsgId(1001), 1, &[MsgId(1000)]);
        o.observe(MsgId(1002), 2, &[MsgId(1001)]);
        assert!(o.finalized_height() >= 1);
        assert_eq!(o.finalized_chain()[0], MsgId(17));
        assert!(o.is_final(MsgId(17)));
        assert!(!o.is_final(MsgId(999)), "unknown ids are not final");
    }

    #[test]
    fn role_counts_cover_all_blocks() {
        let mut o = FinalityOracle::new(3);
        // author == height mod 3 → every block lands in its proposer slot.
        for i in 1..=6u64 {
            o.observe(MsgId(i), (i % 3) as usize, &[MsgId(i - 1)]);
        }
        assert_eq!(o.role_counts(), (6, 0, 0));
        // Off-slot single-parent extension → vote; off-slot merge → echo.
        o.observe(MsgId(7), 0, &[MsgId(6)]);
        o.observe(MsgId(8), 0, &[MsgId(7), MsgId(3)]);
        let (p, v, e) = o.role_counts();
        assert_eq!((p, v, e), (6, 1, 1));
        assert_eq!(o.role_of(MsgId(7)), Some(Role::Vote));
        assert_eq!(o.role_of(MsgId(8)), Some(Role::Echo));
        assert!(o.role_of(GENESIS).is_some());
        assert!(o.role_of(MsgId(7777)).is_none());
    }

    #[test]
    #[should_panic(expected = "observed before")]
    fn rejects_unobserved_parents() {
        let mut o = FinalityOracle::new(3);
        o.observe(MsgId(2), 0, &[MsgId(1)]);
    }

    #[test]
    #[should_panic(expected = "observed twice")]
    fn rejects_duplicate_observation() {
        let mut o = FinalityOracle::new(3);
        o.observe(MsgId(1), 0, &[GENESIS]);
        o.observe(MsgId(1), 1, &[GENESIS]);
    }
}
