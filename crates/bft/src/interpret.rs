//! The DAG → protocol-message interpreter.
//!
//! Schett & Danezis observe that a block DAG already *is* the message
//! history of a BFT protocol: every block an author appends doubles as a
//! protocol message, its parent references are the justification (the
//! author vouches for having seen the referenced past cone), and the
//! author's position in its own chain of blocks is the round number. No
//! separate vote traffic exists — agreement rounds are read back out of
//! the append/gossip machinery the Section 5 protocols already run on.
//!
//! [`DagInterpreter`] maintains that reading incrementally, O(parents·n)
//! per appended block:
//!
//! * **round** — the block's 1-based sequence number within its author's
//!   own blocks *as witnessed by its past cone* (an author that builds on
//!   a stale prefix of its own history re-uses a round — equivocation);
//! * **high-water visibility** — for each block `b` and author `a`, the
//!   highest round of `a` present in `b`'s closed past cone (the
//!   justification weight the finality oracle quorum-checks);
//! * **selected chain** — `parents[0]` is the block's explicit vote: the
//!   chain tip its author endorses. Chains are trees, and a jump-pointer
//!   (binary-lifting) ancestor structure answers "does block `b` vote for
//!   `x`?" in O(log height);
//! * **equivocation** — two distinct blocks by one author at one round
//!   mark the author as an equivocator, permanently (the oracle excludes
//!   flagged authors from every later quorum);
//! * **role** — each block is classified as the proposal, vote, or echo
//!   message of the embedded protocol (rotating proposer slots by chain
//!   height; multi-parent merges act as echoes relaying concurrent
//!   messages).
//!
//! Indices are dense local ids in observation order (genesis = 0), the
//! same convention as `am_core::IncrementalDag`; the owner (the
//! [`FinalityOracle`](crate::FinalityOracle)) remaps global `MsgId`s.

/// Sentinel for "no block" / "no author" in the packed index vectors.
pub(crate) const NONE: u32 = u32::MAX;

/// The protocol message a block carries under the embedded reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The rotating slot leader's block for its chain height
    /// (`height mod n == author`): it proposes the next chain extension.
    Proposal,
    /// A single-parent extension by a non-leader: a vote for its selected
    /// chain (every ancestor of `parents[0]`, implicitly).
    Vote,
    /// A multi-parent merge: it acknowledges and relays concurrent
    /// messages from other authors (the echo broadcast of the embedded
    /// protocol) while still voting through `parents[0]`.
    Echo,
}

/// Incremental interpretation of a growing block DAG as BFT messages.
///
/// ```
/// use am_bft::DagInterpreter;
/// let mut it = DagInterpreter::new(3);
/// let a = it.push(0, &[0]); // author 0 builds on genesis
/// let b = it.push(1, &[a]); // author 1 votes for a's block
/// assert_eq!(it.round_of(b), 1);
/// assert_eq!(it.height_of(b), 2);
/// assert!(it.votes_for(b, a));
/// assert_eq!(it.equivocator_count(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct DagInterpreter {
    n: usize,
    /// Author per block (`NONE` for genesis).
    author: Vec<u32>,
    /// 1-based own-sequence round per block (genesis 0).
    round: Vec<u32>,
    /// Selected-parent chain height (genesis 0).
    height: Vec<u32>,
    /// Selected parent = `parents[0]` (genesis points at itself).
    sel: Vec<u32>,
    /// Level-ancestor jump pointer over the selected-parent tree.
    jump: Vec<u32>,
    /// Parent count per block (genesis 0), for role classification.
    nparents: Vec<u8>,
    /// Per block: for each author, the max round present in the closed
    /// past cone (0 = none). The justification high-water vector.
    hw: Vec<Box<[u32]>>,
    /// Per author: first block observed at each round (index `r - 1`).
    by_round: Vec<Vec<u32>>,
    /// Sticky equivocator flags.
    equiv: Vec<bool>,
    equivocators: usize,
}

impl DagInterpreter {
    /// A fresh interpreter over `n` authors, holding only genesis.
    pub fn new(n: usize) -> DagInterpreter {
        assert!(n >= 1, "need at least one author");
        DagInterpreter {
            n,
            author: vec![NONE],
            round: vec![0],
            height: vec![0],
            sel: vec![0],
            jump: vec![0],
            nparents: vec![0],
            hw: vec![vec![0; n].into_boxed_slice()],
            by_round: vec![Vec::new(); n],
            equiv: vec![false; n],
            equivocators: 0,
        }
    }

    /// Number of blocks interpreted (genesis included).
    pub fn len(&self) -> usize {
        self.author.len()
    }

    /// Whether only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Number of authors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Interprets the next block: `parents` are prior local ids,
    /// `parents[0]` is the selected chain tip (the vote). Returns the
    /// block's local id. O(parents · n).
    pub fn push(&mut self, author: usize, parents: &[u32]) -> u32 {
        assert!(author < self.n, "author out of range");
        assert!(!parents.is_empty(), "blocks reference at least genesis");
        let idx = self.author.len() as u32;

        // Justification high water: elementwise max over parents, then
        // the block itself advances its author's entry by one round.
        let mut hw = self.hw[parents[0] as usize].clone();
        for &p in &parents[1..] {
            assert!(p < idx, "parents must precede the block");
            for (h, &ph) in hw.iter_mut().zip(self.hw[p as usize].iter()) {
                *h = (*h).max(ph);
            }
        }
        let r = hw[author] + 1;
        hw[author] = r;

        let sel = parents[0];
        assert!(sel < idx, "parents must precede the block");
        let height = self.height[sel as usize] + 1;
        // Jump pointer: point at jump[jump[sel]] when the two hops below
        // span equal height gaps (the classic O(1)-space level-ancestor
        // scheme), else at the parent.
        let jp = self.jump[sel as usize];
        let jj = self.jump[jp as usize];
        let jump = if self.height[sel as usize] + self.height[jj as usize]
            == 2 * self.height[jp as usize]
        {
            jj
        } else {
            sel
        };

        // Round bookkeeping + equivocation: rounds per author grow
        // contiguously (a block at round r witnesses one at r - 1), so a
        // collision means two blocks share (author, round).
        let slots = &mut self.by_round[author];
        debug_assert!(r as usize <= slots.len() + 1, "rounds grow contiguously");
        if r as usize == slots.len() + 1 {
            slots.push(idx);
        } else if !self.equiv[author] {
            self.equiv[author] = true;
            self.equivocators += 1;
        }

        self.author.push(author as u32);
        self.round.push(r);
        self.height.push(height);
        self.sel.push(sel);
        self.jump.push(jump);
        self.nparents
            .push(parents.len().min(u8::MAX as usize) as u8);
        self.hw.push(hw);
        idx
    }

    /// The selected-chain ancestor of `v` at chain height `h` (requires
    /// `height_of(v) >= h`). O(log height) via the jump pointers.
    pub fn ancestor_at(&self, mut v: u32, h: u32) -> u32 {
        debug_assert!(self.height[v as usize] >= h, "no ancestor above the block");
        while self.height[v as usize] > h {
            v = if self.height[self.jump[v as usize] as usize] >= h {
                self.jump[v as usize]
            } else {
                self.sel[v as usize]
            };
        }
        v
    }

    /// Whether block `b`'s selected chain contains `x` — `b` (transitively)
    /// votes for `x`.
    pub fn votes_for(&self, b: u32, x: u32) -> bool {
        self.height[b as usize] >= self.height[x as usize]
            && self.ancestor_at(b, self.height[x as usize]) == x
    }

    /// The embedded protocol message the block carries.
    pub fn role_of(&self, b: u32) -> Role {
        let i = b as usize;
        if self.author[i] == NONE {
            return Role::Proposal; // genesis proposes height 0
        }
        if self.height[i] as usize % self.n == self.author[i] as usize {
            Role::Proposal
        } else if self.nparents[i] >= 2 {
            Role::Echo
        } else {
            Role::Vote
        }
    }

    /// Author of a block (`None` for genesis).
    pub fn author_of(&self, b: u32) -> Option<usize> {
        let a = self.author[b as usize];
        (a != NONE).then_some(a as usize)
    }

    /// 1-based own-sequence round of a block (genesis 0).
    pub fn round_of(&self, b: u32) -> u32 {
        self.round[b as usize]
    }

    /// Selected-parent chain height of a block (genesis 0).
    pub fn height_of(&self, b: u32) -> u32 {
        self.height[b as usize]
    }

    /// Highest round of `author` witnessed inside `b`'s closed past cone
    /// (0 = none).
    pub fn high_water(&self, b: u32, author: usize) -> u32 {
        self.hw[b as usize][author]
    }

    /// The first block observed for `(author, round)`; `round` is 1-based
    /// and must have been reached.
    pub fn block_at(&self, author: usize, round: u32) -> u32 {
        self.by_round[author][round as usize - 1]
    }

    /// The author's highest-round block, if any (first-observed at that
    /// round when equivocating).
    pub fn latest(&self, author: usize) -> Option<u32> {
        self.by_round[author].last().copied()
    }

    /// Whether the author has been caught equivocating.
    pub fn is_equivocator(&self, author: usize) -> bool {
        self.equiv[author]
    }

    /// Number of authors caught equivocating.
    pub fn equivocator_count(&self) -> usize {
        self.equivocators
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chain_rounds_heights_and_votes() {
        let mut it = DagInterpreter::new(2);
        let mut tip = 0u32;
        for i in 0..10u32 {
            tip = it.push((i % 2) as usize, &[tip]);
            assert_eq!(it.height_of(tip), i + 1);
            assert_eq!(it.round_of(tip), i / 2 + 1);
        }
        // Every block votes for every selected ancestor.
        for h in 0..=10u32 {
            let anc = it.ancestor_at(tip, h);
            assert_eq!(it.height_of(anc), h);
            assert!(it.votes_for(tip, anc));
        }
        assert!(!it.votes_for(5, tip), "votes never point forward");
        assert_eq!(it.equivocator_count(), 0);
    }

    #[test]
    fn high_water_tracks_the_cone() {
        let mut it = DagInterpreter::new(3);
        let a1 = it.push(0, &[0]);
        let b1 = it.push(1, &[0]); // concurrent with a1
        let a2 = it.push(0, &[a1, b1]); // merges both
        assert_eq!(it.high_water(a1, 1), 0, "a1 has not seen author 1");
        assert_eq!(it.high_water(a2, 0), 2);
        assert_eq!(it.high_water(a2, 1), 1);
        assert_eq!(it.high_water(a2, 2), 0);
        assert_eq!(it.block_at(1, 1), b1);
    }

    #[test]
    fn stale_prefix_reuse_is_equivocation() {
        let mut it = DagInterpreter::new(2);
        let a1 = it.push(0, &[0]);
        let _a2 = it.push(0, &[a1]);
        assert_eq!(it.equivocator_count(), 0);
        // Author 0 builds on genesis again, pretending a1 never happened:
        // round 1 collides with a1.
        let fork = it.push(0, &[0]);
        assert_eq!(it.round_of(fork), 1);
        assert!(it.is_equivocator(0));
        assert!(!it.is_equivocator(1));
        assert_eq!(it.equivocator_count(), 1);
        // latest stays the first-observed top-round block.
        assert_eq!(it.latest(0), Some(2));
    }

    #[test]
    fn roles_follow_slots_and_merges() {
        let mut it = DagInterpreter::new(3);
        let b1 = it.push(1, &[0]); // height 1, slot 1 → proposal
        assert_eq!(it.role_of(b1), Role::Proposal);
        let v = it.push(0, &[b1]); // height 2, slot 2 ≠ 0 → vote
        assert_eq!(it.role_of(v), Role::Vote);
        let c = it.push(1, &[0]); // height 1 again (same author forks: echoes aside)
        let e = it.push(0, &[v, c]); // height 3, slot 0 = 0 → proposal wins over echo
        assert_eq!(it.role_of(e), Role::Proposal);
        let e2 = it.push(2, &[e, c]); // height 4, slot 1 ≠ 2, two parents → echo
        assert_eq!(it.role_of(e2), Role::Echo);
        assert_eq!(it.role_of(0), Role::Proposal, "genesis proposes height 0");
    }

    #[test]
    fn jump_ancestors_match_naive_walk_on_random_trees() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let mut it = DagInterpreter::new(4);
            let mut ids: Vec<u32> = vec![0];
            for _ in 0..200 {
                let sel = ids[rng.gen_range(0..ids.len())];
                let author = rng.gen_range(0..4);
                let mut parents = vec![sel];
                if rng.gen_bool(0.3) {
                    parents.push(ids[rng.gen_range(0..ids.len())]);
                }
                ids.push(it.push(author, &parents));
            }
            for _ in 0..100 {
                let v = ids[rng.gen_range(0..ids.len())];
                let h = rng.gen_range(0..=it.height_of(v));
                // Naive: walk sel pointers down to height h.
                let mut w = v;
                while it.height_of(w) > h {
                    w = it.sel[w as usize];
                }
                assert_eq!(it.ancestor_at(v, h), w);
            }
        }
    }
}
