//! # am-bft — deterministic BFT finality embedded in the block DAG
//!
//! The paper's Section 5 protocols decide a *one-shot* agreement and the
//! ordering layer (`am-core::linearize`) totally orders the DAG — but
//! nothing ever makes a prefix *final*. This crate layers finality on
//! top, without adding a single message to the network: following Schett
//! & Danezis, the block DAG itself is read as the message history of a
//! deterministic BFT protocol, and a Casper-CBC-style oracle decides
//! which chain prefix can no longer be displaced.
//!
//! Two layers, both incremental per appended block (no rescans — the
//! same discipline as the PR5 decision-path engine, and built on the
//! same `am-core` structures):
//!
//! * [`DagInterpreter`] — maps each block's parent references to a
//!   protocol message: round = the author's own sequence in its past
//!   cone, justification = the high-water visibility vector over the
//!   cone, vote = the selected-parent chain (`parents[0]`), role =
//!   proposal / vote / echo under rotating slots. Detects equivocation
//!   (two blocks, one (author, round)) and answers chain-ancestor
//!   queries in O(log) via jump pointers.
//! * [`FinalityOracle`] — advances a monotone finalized watermark: a
//!   chain block is final once a quorum of non-equivocating authors vote
//!   for it *with pairwise mutual visibility of those votes* (the CBC
//!   clique condition). Maintains an O(new-tail) finalized-prefix digest
//!   and the finalized past cone (a `ConeCoverTracker` pinned to the
//!   finalized head) for O(1) [`is_final`](FinalityOracle::is_final)
//!   probes.
//!
//! The Byzantine drivers that feed these (equivocating authors, vote
//! withholding, stale-parent miners) live in `am-protocols::bft`; the
//! nonforking invariant is checked exhaustively in `am-sched::nonforking`
//! and end-to-end by the 300-seed agreement suite.

#![forbid(unsafe_code)]

mod interpret;
mod oracle;

pub use interpret::{DagInterpreter, Role};
pub use oracle::FinalityOracle;
