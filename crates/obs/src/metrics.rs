//! Named counters and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s into the registry:
//! fetch once (e.g. in a constructor), then increment on the hot path.
//! Every mutation is gated on [`crate::enabled`], so a disabled registry
//! costs one relaxed atomic load per call.

use crate::registry::registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named monotonic counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fetches (creating on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    Counter(Arc::clone(map.entry(name.to_string()).or_default()))
}

/// A snapshot of every counter, name-sorted.
pub fn counter_values() -> Vec<(String, u64)> {
    registry()
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect()
}

/// The shared histogram storage: 64 log₂ buckets (bucket `i` counts
/// values `v` with `2^(i-1) ≤ v < 2^i`; bucket 0 counts zeroes) plus
/// running count/total for exact means.
pub struct HistInner {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    total: AtomicU64,
}

impl HistInner {
    fn new() -> HistInner {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub(crate) fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// Index of the log₂ bucket covering `v`.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(63)
    }
}

/// Upper bound of bucket `i` — the value reported for quantiles.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// Approximate quantile over log₂ buckets: the upper bound of the first
/// bucket whose cumulative count reaches `q * count`.
pub(crate) fn bucket_quantile(buckets: &[u64; 64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= target {
            return bucket_upper(i);
        }
    }
    bucket_upper(63)
}

/// A named log₂-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.total.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// A consistent-enough snapshot of the aggregates.
    pub fn stats(&self) -> HistogramStats {
        let buckets: [u64; 64] = std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed));
        let count = self.0.count.load(Ordering::Relaxed);
        let total = self.0.total.load(Ordering::Relaxed);
        HistogramStats {
            count,
            total,
            mean: if count == 0 {
                0.0
            } else {
                total as f64 / count as f64
            },
            p50: bucket_quantile(&buckets, count, 0.50),
            p99: bucket_quantile(&buckets, count, 0.99),
            p999: bucket_quantile(&buckets, count, 0.999),
        }
    }
}

/// Aggregate view of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramStats {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub total: u64,
    /// Exact mean.
    pub mean: f64,
    /// Approximate median (log₂ bucket upper bound).
    pub p50: u64,
    /// Approximate 99th percentile (log₂ bucket upper bound).
    pub p99: u64,
    /// Approximate 99.9th percentile (log₂ bucket upper bound).
    pub p999: u64,
}

/// Fetches (creating on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut map = registry().hists.lock().unwrap_or_else(|e| e.into_inner());
    Histogram(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(HistInner::new())),
    ))
}

/// A snapshot of every histogram's aggregates, name-sorted.
pub fn histogram_values() -> Vec<(String, HistogramStats)> {
    let names: Vec<String> = registry()
        .hists
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .keys()
        .cloned()
        .collect();
    names
        .into_iter()
        .map(|n| {
            let s = histogram(&n).stats();
            (n, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        let a = counter("m.test");
        let b = counter("m.test");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert!(counter_values().contains(&("m.test".to_string(), 5)));
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        let h = histogram("m.hist");
        for v in [0u64, 1, 2, 3, 1000, 1000, 1000, 1000, 1000, 1000] {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 10);
        assert_eq!(s.total, 6 + 6000);
        // 6 of 10 samples are 1000 → p50 lands in the [512, 1024) bucket.
        assert_eq!(s.p50, 1023);
        assert_eq!(s.p99, 1023);
        assert_eq!(s.p999, 1023);
        crate::set_enabled(false);
    }

    #[test]
    fn p999_separates_the_extreme_tail() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        let h = histogram("m.tail");
        // 998 fast samples and two 100x outliers: p99 stays in the fast
        // bucket, p999 must surface the outlier's bucket.
        for _ in 0..998 {
            h.record(100);
        }
        h.record(10_000);
        h.record(10_000);
        let s = h.stats();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p99, 127, "p99 stays in the bulk bucket");
        assert_eq!(s.p999, 16_383, "p999 reaches the outlier bucket");
        crate::set_enabled(false);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        let mut buckets = [0u64; 64];
        buckets[2] = 10;
        assert_eq!(bucket_quantile(&buckets, 10, 0.5), 3);
        assert_eq!(bucket_quantile(&buckets, 0, 0.5), 0);
    }
}
