//! # am-obs — zero-dependency observability for the simulators
//!
//! Every experiment in this repo is a discrete-event Monte-Carlo run, and
//! until this crate existed the only window into one was its final JSON
//! table. `am-obs` is the measurement layer the ROADMAP's "as fast as the
//! hardware allows" goal needs: before a perf PR can prove anything, the
//! baseline has to be measurable.
//!
//! Four facilities, all behind one global registry:
//!
//! * **Spans** ([`span`], [`record_sim_span`]) — hierarchical RAII timers.
//!   Wall-clock spans nest through a thread-local stack (`"mp/append"`
//!   inside `"experiment/e4"` aggregates as `"experiment/e4/mp/append"`);
//!   simulated-time spans are recorded explicitly with their sim-clock
//!   endpoints. Both aggregate into per-path count/total/min/max/p50/p99
//!   ([`SpanStats`]).
//! * **Counters and histograms** ([`counter`], [`histogram`]) — named
//!   atomics behind a registry; handles are cheap to clone and cache.
//!   Log₂-bucketed histograms give approximate quantiles without storing
//!   samples.
//! * **Events** ([`event`]) — a bounded ring buffer of structured
//!   `(sim-time, node, kind, detail)` records. The ring drops oldest
//!   entries past its capacity, so long runs stay bounded.
//! * **Trace + manifest export** — the ring and span records render as
//!   Chrome-trace JSON ([`chrome_trace_json`], [`export_chrome_trace`])
//!   loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//!   and [`RunManifest`] writes a per-run `manifest.json` (seed,
//!   experiment ids, durations, event counts, output paths).
//!
//! ## Cost model
//!
//! The whole crate is gated on one `AtomicBool`: when disabled (the
//! default for library consumers; the experiment binary enables it unless
//! `--no-obs` is passed) every instrumentation call is a single relaxed
//! atomic load and an early return — the `bench_obs` benchmark pins the
//! overhead on the E4 hot loop below 5%. When enabled, counters are one
//! atomic add; spans and events take a short mutex critical section.
//!
//! ```
//! am_obs::set_enabled(true);
//! am_obs::reset();
//! {
//!     let _outer = am_obs::span("demo");
//!     let _inner = am_obs::span("step"); // aggregates as "demo/step"
//! }
//! am_obs::counter("demo.widgets").add(3);
//! am_obs::record_sim_span("net/flight", 2, 1_000, 5_000);
//! let stats = am_obs::span_stats();
//! assert!(stats.iter().any(|(path, s)| path == "demo/step" && s.count == 1));
//! let trace = am_obs::chrome_trace_json();
//! assert!(trace.contains("\"traceEvents\""));
//! am_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod manifest;
pub mod metrics;
mod registry;
pub mod span;
pub mod trace;

pub use events::{event, event_counts, events_dropped, events_recorded, set_ring_capacity};
pub use manifest::{ExperimentRecord, RunManifest};
pub use metrics::{counter, counter_values, histogram, Counter, Histogram, HistogramStats};
pub use span::{record_sim_span, span, span_stats, SpanGuard, SpanStats};
pub use trace::{chrome_trace_json, export_chrome_trace};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the whole subsystem on or off. Off (the default) reduces every
/// instrumentation call to one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every aggregate: span stats, counter values (handles stay
/// live and simply read zero), histograms, event counts, and the trace
/// ring. Also restarts the wall-clock epoch that trace timestamps are
/// relative to. Call between runs that must not see each other's data.
pub fn reset() {
    registry::reset();
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// The registry is global, so tests that enable/reset it must not
    /// interleave. Every obs test takes this lock first.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let _l = test_lock::hold();
        set_enabled(false);
        reset();
        {
            let _g = span("never");
        }
        counter("never.counter").inc();
        histogram("never.hist").record(10);
        event("never/event", 0, 100, || "detail".into());
        record_sim_span("never/sim", 0, 0, 10);
        assert!(span_stats().is_empty());
        assert!(counter_values().iter().all(|(_, v)| *v == 0));
        assert_eq!(events_recorded(), 0);
    }

    #[test]
    fn enabled_records_and_reset_clears() {
        let _l = test_lock::hold();
        set_enabled(true);
        reset();
        {
            let _g = span("outer");
            let _h = span("inner");
        }
        counter("t.count").add(2);
        event("t/ev", 1, 50, || "x".into());
        assert!(span_stats().iter().any(|(p, _)| p == "outer/inner"));
        assert!(counter_values().contains(&("t.count".to_string(), 2)));
        assert_eq!(events_recorded(), 1);
        reset();
        assert!(span_stats().is_empty());
        assert!(counter_values().iter().all(|(_, v)| *v == 0));
        assert_eq!(events_recorded(), 0);
        set_enabled(false);
    }
}
