//! The bounded structured-event ring buffer.
//!
//! Events are `(sim-time, node, kind, detail)` records. The ring holds
//! the most recent `capacity` trace entries (spans share the same ring);
//! per-kind totals keep counting even after eviction, so the manifest can
//! report true event counts for arbitrarily long runs.

use crate::registry::registry;
use std::collections::VecDeque;

/// One entry of the trace ring: either a completed span or an instant
/// event, on the wall or sim timeline.
#[derive(Clone, Debug)]
pub(crate) enum TraceEvent {
    Span {
        path: String,
        /// Sim-clock (true) or wall-clock (false) timeline.
        sim: bool,
        ts_us: f64,
        dur_us: f64,
        tid: u64,
    },
    Instant {
        name: String,
        ts_us: f64,
        tid: u64,
        detail: String,
    },
}

pub(crate) struct Ring {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    pub(crate) fn new(cap: usize) -> Ring {
        Ring {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }

    pub(crate) fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.buf.len() > self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    pub(crate) fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        (self.buf.iter().cloned().collect(), self.dropped)
    }
}

/// Emits a structured instant event at `sim_ns` on the sim timeline,
/// attributed to `node`. The `detail` closure only runs when obs is
/// enabled, so format costs vanish with the subsystem.
pub fn event<D: FnOnce() -> String>(kind: &str, node: usize, sim_ns: u64, detail: D) {
    if !crate::enabled() {
        return;
    }
    let reg = registry();
    *reg.event_counts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(kind.to_string())
        .or_insert(0) += 1;
    reg.ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(TraceEvent::Instant {
            name: kind.to_string(),
            ts_us: sim_ns as f64 / 1e3,
            tid: node as u64,
            detail: detail(),
        });
}

/// Resizes the trace ring (evicting oldest entries if shrinking).
pub fn set_ring_capacity(cap: usize) {
    registry()
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .set_cap(cap);
}

/// Total instant events emitted since the last reset (evicted included).
pub fn events_recorded() -> u64 {
    registry()
        .event_counts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .sum()
}

/// Trace-ring entries evicted by the capacity bound since the last reset.
pub fn events_dropped() -> u64 {
    registry()
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .snapshot()
        .1
}

/// Per-kind event totals, kind-sorted (evicted events still counted).
pub fn event_counts() -> Vec<(String, u64)> {
    registry()
        .event_counts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn ring_bounds_but_counts_everything() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        set_ring_capacity(4);
        for i in 0..10u64 {
            event("e/tick", 0, i * 100, || format!("tick {i}"));
        }
        assert_eq!(events_recorded(), 10);
        assert_eq!(events_dropped(), 6);
        assert_eq!(event_counts(), vec![("e/tick".to_string(), 10)]);
        // Restore a sane capacity for sibling tests.
        set_ring_capacity(131_072);
        crate::set_enabled(false);
    }

    #[test]
    fn detail_closure_is_lazy_when_disabled() {
        let _l = test_lock::hold();
        crate::set_enabled(false);
        crate::reset();
        let mut ran = false;
        event("e/lazy", 0, 0, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "detail must not be built while disabled");
    }
}
