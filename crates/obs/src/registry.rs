//! The process-global registry behind every am-obs facility.

use crate::events::Ring;
use crate::metrics::HistInner;
use crate::span::SpanAgg;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default trace-ring capacity: bounded memory (~10 MB worst case) while
/// still holding the tail of a large run.
const DEFAULT_RING_CAP: usize = 131_072;

pub(crate) struct Registry {
    /// Wall-clock base for trace timestamps; restarted by [`reset`].
    pub epoch: Mutex<Instant>,
    pub counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub hists: Mutex<BTreeMap<String, Arc<HistInner>>>,
    pub spans: Mutex<BTreeMap<String, SpanAgg>>,
    /// Total events emitted per kind (including ones the ring evicted).
    pub event_counts: Mutex<BTreeMap<String, u64>>,
    pub ring: Mutex<Ring>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        epoch: Mutex::new(Instant::now()),
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
        event_counts: Mutex::new(BTreeMap::new()),
        ring: Mutex::new(Ring::new(DEFAULT_RING_CAP)),
    })
}

/// Microseconds since the epoch (the timestamp base of wall trace events).
pub(crate) fn wall_us() -> f64 {
    let reg = registry();
    let epoch = *reg.epoch.lock().unwrap_or_else(|e| e.into_inner());
    epoch.elapsed().as_secs_f64() * 1e6
}

pub(crate) fn reset() {
    let reg = registry();
    *reg.epoch.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    // Counter/histogram handles may be cached by callers, so zero the
    // shared cells in place instead of dropping the entries.
    for c in reg
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        c.store(0, Ordering::Relaxed);
    }
    for h in reg.hists.lock().unwrap_or_else(|e| e.into_inner()).values() {
        h.clear();
    }
    reg.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    reg.event_counts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    reg.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
}
