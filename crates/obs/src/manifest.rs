//! The per-run manifest: one JSON document answering "what did this run
//! do, how long did each part take, and where did the outputs go".

use crate::trace::{esc, us};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// One executed experiment.
#[derive(Clone, Debug)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. "e14".
    pub id: String,
    /// Wall-clock duration.
    pub duration_ms: f64,
    /// Where the experiment's JSON landed, if it was written.
    pub output: Option<String>,
}

/// A run's manifest, written to `<out_dir>/manifest.json`. The document
/// embeds a snapshot of the obs registry (span stats, counters, event
/// counts) taken at [`RunManifest::write`] time.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// The base Monte-Carlo seed of the run.
    pub seed: u64,
    /// Output directory every path in the manifest is relative to.
    pub out_dir: String,
    /// Trace file path, when `--trace` exported one.
    pub trace: Option<String>,
    /// Executed experiments, in run order.
    pub experiments: Vec<ExperimentRecord>,
}

impl RunManifest {
    /// An empty manifest for a run with `seed` writing under `out_dir`.
    pub fn new(seed: u64, out_dir: impl Into<String>) -> RunManifest {
        RunManifest {
            seed,
            out_dir: out_dir.into(),
            trace: None,
            experiments: Vec::new(),
        }
    }

    /// Appends one experiment record.
    pub fn record(&mut self, rec: ExperimentRecord) {
        self.experiments.push(rec);
    }

    /// Notes the exported trace path.
    pub fn set_trace(&mut self, path: impl Into<String>) {
        self.trace = Some(path.into());
    }

    /// Renders the manifest (plus a registry snapshot) as JSON.
    pub fn to_json(&self) -> String {
        let unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"written_unix\": {unix},\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"out_dir\": \"{}\",\n", esc(&self.out_dir)));
        match &self.trace {
            Some(t) => out.push_str(&format!("  \"trace\": \"{}\",\n", esc(t))),
            None => out.push_str("  \"trace\": null,\n"),
        }
        out.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let output = match &e.output {
                Some(p) => format!("\"{}\"", esc(p)),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"duration_ms\": {}, \"output\": {output}}}{}\n",
                esc(&e.id),
                us(e.duration_ms),
                if i + 1 < self.experiments.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ],\n");

        // Registry snapshot: spans, counters, events.
        out.push_str("  \"spans\": {\n");
        let spans = crate::span_stats();
        for (i, (path, s)) in spans.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                esc(path),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                s.p50_ns,
                s.p99_ns,
                if i + 1 < spans.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"counters\": {\n");
        let counters: Vec<(String, u64)> = crate::counter_values()
            .into_iter()
            .filter(|(_, v)| *v > 0)
            .collect();
        for (i, (name, v)) in counters.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {v}{}\n",
                esc(name),
                if i + 1 < counters.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str("  \"events\": {\n");
        let events = crate::event_counts();
        for (i, (name, v)) in events.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {v}{}\n",
                esc(name),
                if i + 1 < events.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"events_total\": {},\n  \"trace_ring_evicted\": {}\n}}\n",
            crate::events_recorded(),
            crate::events_dropped(),
        ));
        out
    }

    /// Writes `manifest.json` under [`RunManifest::out_dir`].
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = Path::new(&self.out_dir);
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn manifest_renders_and_writes() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        crate::counter("man.count").add(7);
        crate::record_sim_span("man/span", 0, 0, 1_000);
        crate::event("man/ev", 1, 10, || "d".into());

        let dir = std::env::temp_dir().join("am_obs_manifest_test");
        let mut m = RunManifest::new(42, dir.to_string_lossy().to_string());
        m.record(ExperimentRecord {
            id: "e4".into(),
            duration_ms: 12.5,
            output: Some("e4.json".into()),
        });
        m.record(ExperimentRecord {
            id: "e14".into(),
            duration_ms: 99.0,
            output: None,
        });
        m.set_trace("trace.json");

        let body = m.to_json();
        assert!(body.contains("\"seed\": 42"));
        assert!(body.contains("\"id\": \"e4\""));
        assert!(body.contains("\"man.count\": 7"));
        assert!(body.contains("\"man/span\""));
        assert!(body.contains("\"man/ev\": 1"));
        assert!(body.contains("\"events_total\": 1"));

        let path = m.write().expect("manifest writes");
        assert!(path.ends_with("manifest.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), m.to_json());
        let _ = std::fs::remove_dir_all(&dir);
        crate::set_enabled(false);
    }

    #[test]
    fn empty_manifest_is_valid() {
        let _l = test_lock::hold();
        crate::set_enabled(false);
        crate::reset();
        let m = RunManifest::new(0, "results");
        let body = m.to_json();
        assert!(body.contains("\"experiments\": [\n  ]"));
        assert!(body.contains("\"trace\": null"));
    }
}
