//! Hierarchical span timers: RAII wall-clock spans and explicit
//! simulated-time spans, aggregated per path.

use crate::events::TraceEvent;
use crate::metrics::{bucket_of, bucket_quantile};
use crate::registry::{registry, wall_us};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Stack of full span paths active on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Small dense thread id for trace `tid` fields (`ThreadId` has no
    /// stable integer form).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Per-path aggregate: count/total/min/max plus log₂ buckets for
/// approximate quantiles, all in nanoseconds.
#[derive(Clone)]
pub(crate) struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; 64],
}

impl Default for SpanAgg {
    fn default() -> Self {
        SpanAgg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; 64],
        }
    }
}

impl SpanAgg {
    pub(crate) fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns += dur_ns;
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.buckets[bucket_of(dur_ns)] += 1;
    }

    pub(crate) fn snapshot(&self) -> SpanStats {
        SpanStats {
            count: self.count,
            total_ns: self.total_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            // Quantiles are log₂-bucket upper bounds, clamped into the
            // observed range so tiny counts stay sensible.
            p50_ns: bucket_quantile(&self.buckets, self.count, 0.50).min(self.max_ns),
            p99_ns: bucket_quantile(&self.buckets, self.count, 0.99).min(self.max_ns),
        }
    }
}

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed instances.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Shortest instance.
    pub min_ns: u64,
    /// Longest instance.
    pub max_ns: u64,
    /// Approximate median duration.
    pub p50_ns: u64,
    /// Approximate 99th-percentile duration.
    pub p99_ns: u64,
}

impl SpanStats {
    /// Mean duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A live wall-clock span; records its duration when dropped.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    path: String,
    start: Instant,
    ts_us: f64,
}

/// Opens a wall-clock span. The aggregation path is the name prefixed by
/// the innermost span already open on this thread, joined with `/` —
/// `span("e4")` then `span("mp/append")` aggregates under
/// `"e4/mp/append"`. A no-op (and no stack entry) when obs is disabled.
pub fn span(name: impl AsRef<str>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    let name = name.as_ref();
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        s.push(path.clone());
        path
    });
    SpanGuard(Some(ActiveSpan {
        path,
        start: Instant::now(),
        ts_us: wall_us(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally drop in LIFO order; be tolerant if one was
            // leaked across an unwind.
            if s.last() == Some(&active.path) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|p| p == &active.path) {
                s.remove(pos);
            }
        });
        let reg = registry();
        reg.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(active.path.clone())
            .or_default()
            .record(dur_ns);
        reg.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceEvent::Span {
                path: active.path,
                sim: false,
                ts_us: active.ts_us,
                dur_us: dur_ns as f64 / 1e3,
                tid: current_tid(),
            });
    }
}

/// Records a completed simulated-time span: `[start_ns, end_ns]` on the
/// sim clock, attributed to `node` (the trace row it renders on). Unlike
/// wall spans, sim spans don't nest through the thread stack — the path
/// is exactly `name`.
pub fn record_sim_span(name: &str, node: usize, start_ns: u64, end_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let dur_ns = end_ns.saturating_sub(start_ns);
    let reg = registry();
    reg.spans
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(name.to_string())
        .or_default()
        .record(dur_ns);
    reg.ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(TraceEvent::Span {
            path: name.to_string(),
            sim: true,
            ts_us: start_ns as f64 / 1e3,
            dur_us: dur_ns as f64 / 1e3,
            tid: node as u64,
        });
}

/// A snapshot of every span aggregate, path-sorted.
pub fn span_stats() -> Vec<(String, SpanStats)> {
    registry()
        .spans
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.snapshot()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn nesting_builds_paths() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
            let _d = span("b"); // same name again, same path
        }
        let stats = span_stats();
        let paths: Vec<&str> = stats.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a", "a/b", "a/b/c"]);
        let ab = &stats.iter().find(|(p, _)| p == "a/b").unwrap().1;
        assert_eq!(ab.count, 2);
        crate::set_enabled(false);
    }

    #[test]
    fn sim_spans_aggregate_exactly() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        record_sim_span("s", 0, 100, 200); // 100 ns
        record_sim_span("s", 1, 0, 50); // 50 ns
        record_sim_span("s", 2, 1000, 5000); // 4000 ns
        let stats = span_stats();
        let s = &stats.iter().find(|(p, _)| p == "s").unwrap().1;
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 4150);
        assert_eq!(s.min_ns, 50);
        assert_eq!(s.max_ns, 4000);
        // p50 is the upper bound of 100's bucket [64, 128).
        assert_eq!(s.p50_ns, 127);
        // p99 falls in 4000's bucket but clamps to the observed max.
        assert_eq!(s.p99_ns, 4000);
        assert!((s.mean_ns() - 4150.0 / 3.0).abs() < 1e-9);
        crate::set_enabled(false);
    }

    #[test]
    fn backwards_sim_span_clamps_to_zero() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        record_sim_span("back", 3, 500, 100);
        let stats = span_stats();
        let s = &stats.iter().find(|(p, _)| p == "back").unwrap().1;
        assert_eq!((s.count, s.total_ns, s.max_ns), (1, 0, 0));
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_spans_do_not_disturb_the_stack() {
        let _l = test_lock::hold();
        crate::set_enabled(false);
        crate::reset();
        let outer = span("ghost");
        crate::set_enabled(true);
        {
            let _inner = span("real");
        }
        drop(outer); // was never pushed; must not pop "real"'s frame
        let stats = span_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "real");
        crate::set_enabled(false);
    }
}
