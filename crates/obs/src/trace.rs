//! Chrome-trace (Trace Event Format) JSON export.
//!
//! The exported document loads directly in `chrome://tracing` and in
//! [Perfetto](https://ui.perfetto.dev). Two process rows separate the
//! clocks: pid 1 is wall-clock spans (tid = dense thread id), pid 2 is
//! the simulated timeline (tid = node id). All timestamps are
//! microseconds, per the format.

use crate::events::TraceEvent;
use crate::registry::registry;
use std::io;
use std::path::{Path, PathBuf};

pub(crate) const WALL_PID: u64 = 1;
pub(crate) const SIM_PID: u64 = 2;

/// JSON string escaping (the subset a trace needs; mirrors RFC 8259).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a non-negative microsecond value with fixed sub-µs precision
/// (Chrome's parser accepts decimals; `{:?}` floats are overkill here).
pub(crate) fn us(v: f64) -> String {
    format!("{v:.3}")
}

fn render_event(ev: &TraceEvent, out: &mut String) {
    match ev {
        TraceEvent::Span {
            path,
            sim,
            ts_us,
            dur_us,
            tid,
        } => {
            let pid = if *sim { SIM_PID } else { WALL_PID };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
                esc(path),
                us(*ts_us),
                us(*dur_us),
            ));
        }
        TraceEvent::Instant {
            name,
            ts_us,
            tid,
            detail,
        } => {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{SIM_PID},\"tid\":{tid},\"args\":{{\"detail\":\"{}\"}}}}",
                esc(name),
                us(*ts_us),
                esc(detail),
            ));
        }
    }
}

/// Renders the current trace ring as a Chrome-trace JSON document.
pub fn chrome_trace_json() -> String {
    let (events, _) = registry()
        .ring
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .snapshot();
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"args\":{{\"name\":\"wall clock\"}}}},\n"
    ));
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{SIM_PID},\"args\":{{\"name\":\"simulated time\"}}}}"
    ));
    for ev in &events {
        out.push_str(",\n");
        render_event(ev, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`, creating parent directories.
pub fn export_chrome_trace<P: AsRef<Path>>(path: P) -> io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json())?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn trace_document_shape() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        {
            let _g = crate::span("trace/wall");
        }
        crate::record_sim_span("trace/sim", 4, 2_000, 9_000);
        crate::event("trace/ev", 2, 5_000, || "x=\"1\"".into());
        let doc = chrome_trace_json();
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"trace/wall\""));
        // Sim span: starts at 2 µs, lasts 7 µs, node row 4, sim pid.
        assert!(doc.contains(
            "{\"name\":\"trace/sim\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":2.000,\"dur\":7.000,\"pid\":2,\"tid\":4}"
        ));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("x=\\\"1\\\""), "details must be escaped");
        assert!(doc.trim_end().ends_with("]}"));
        crate::set_enabled(false);
    }

    #[test]
    fn export_writes_file() {
        let _l = test_lock::hold();
        crate::set_enabled(true);
        crate::reset();
        crate::record_sim_span("trace/file", 0, 0, 10);
        let dir = std::env::temp_dir().join("am_obs_trace_test");
        let path = dir.join("nested").join("trace.json");
        let written = export_chrome_trace(&path).expect("export");
        let body = std::fs::read_to_string(&written).unwrap();
        assert!(body.contains("trace/file"));
        let _ = std::fs::remove_dir_all(&dir);
        crate::set_enabled(false);
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(us(1234.5678), "1234.568");
    }
}
