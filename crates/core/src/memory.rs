//! The authoritative append memory.
//!
//! [`AppendMemory`] is the single-register view `M` of the model: an
//! unordered pool of appended messages. Internally the authority keeps the
//! arrival log (it hands out ids in arrival order), but protocols only see
//! arrival order where the model grants it (the Section 5.1 timestamp
//! baseline); everywhere else they must order through references.
//!
//! Reads return [`MemoryView`] snapshots. Because the memory is append-only,
//! a snapshot is a *prefix* of the arrival log; the implementation shares
//! one `Arc`'d prefix across all readers and only rebuilds it when appends
//! happened since the last read (copy-on-read). The ablation benchmark A1
//! compares this against the naive deep-clone strategy exposed as
//! [`AppendMemory::read_deep_clone`].

use crate::error::AppendError;
use crate::ids::{MsgId, NodeId, Time, GENESIS};
use crate::message::{Message, MessageBuilder};
use crate::value::Value;
use crate::view::MemoryView;
use parking_lot::RwLock;
use std::sync::Arc;

struct Inner {
    n: usize,
    /// Arrival log; `log\[0\]` is always the genesis dummy append.
    log: Vec<Arc<Message>>,
    /// Next per-author sequence number.
    next_seq: Vec<u64>,
    /// Cached snapshot shared across readers (copy-on-read).
    snapshot: Arc<Vec<Arc<Message>>>,
    /// Simulated wall clock used to stamp arrivals.
    now: Time,
    /// When sealed, all appends are rejected (used at decision points).
    sealed: bool,
}

/// The append memory `M` for a system of `n` nodes.
///
/// Thread-safe: the Section 4 message-passing simulation and the parallel
/// Monte-Carlo runners read and append concurrently. All synchronisation is
/// internal (a `parking_lot::RwLock`); methods take `&self`.
pub struct AppendMemory {
    inner: RwLock<Inner>,
}

impl AppendMemory {
    /// Creates an append memory for `n` nodes containing only the genesis
    /// dummy append (Section 5.3: "The DAG ... starts at some dummy append,
    /// e.g. at the empty state of the memory").
    pub fn new(n: usize) -> AppendMemory {
        let genesis = Arc::new(Message {
            id: GENESIS,
            author: None,
            seq: 0,
            value: Value::Unit,
            parents: Vec::new(),
            arrival: Time::ZERO,
            round: None,
        });
        let log = vec![genesis];
        AppendMemory {
            inner: RwLock::new(Inner {
                n,
                snapshot: Arc::new(log.clone()),
                log,
                next_seq: vec![0; n],
                now: Time::ZERO,
                sealed: false,
            }),
        }
    }

    /// Number of nodes this memory serves.
    pub fn n(&self) -> usize {
        self.inner.read().n
    }

    /// The id of the genesis dummy append (always [`GENESIS`]).
    #[inline]
    pub fn genesis_id(&self) -> MsgId {
        GENESIS
    }

    /// Total number of messages in the memory, genesis included.
    pub fn len(&self) -> usize {
        self.inner.read().log.len()
    }

    /// Whether the memory holds only genesis.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Advances the simulated clock used to stamp arrivals. The clock is
    /// monotone; attempts to move it backwards are ignored (concurrent
    /// drivers may race benignly).
    pub fn set_now(&self, t: Time) {
        let mut g = self.inner.write();
        if t > g.now {
            g.now = t;
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.inner.read().now
    }

    /// Seals the memory: every further append fails with
    /// [`AppendError::Sealed`]. Round runners seal at the decision point so
    /// that stragglers cannot mutate the history a decision was based on.
    pub fn seal(&self) {
        self.inner.write().sealed = true;
    }

    /// `M.append(msg)`: appends the built message, enforcing the model's
    /// construction rules, and returns the assigned id.
    ///
    /// Rules enforced (Section 2.1, rule (c)):
    /// * the author must be one of the `n` nodes;
    /// * every parent reference must point to an existing message (a node
    ///   may reference an *obsolete* state — any prior message — but never
    ///   a nonexistent one);
    /// * the author's own appends are totally ordered by the assigned `seq`.
    pub fn append(&self, b: MessageBuilder) -> Result<MsgId, AppendError> {
        self.append_at_internal(b, None)
    }

    /// Appends with an explicit arrival time (used by the discrete-event
    /// simulator, which knows the token time). Also advances the clock.
    pub fn append_at(&self, b: MessageBuilder, at: Time) -> Result<MsgId, AppendError> {
        self.append_at_internal(b, Some(at))
    }

    fn append_at_internal(
        &self,
        b: MessageBuilder,
        at: Option<Time>,
    ) -> Result<MsgId, AppendError> {
        let mut g = self.inner.write();
        if g.sealed {
            return Err(AppendError::Sealed);
        }
        if b.author.index() >= g.n {
            return Err(AppendError::UnknownAuthor {
                author: b.author,
                n: g.n,
            });
        }
        let id = MsgId(g.log.len() as u64);
        for &p in &b.parents {
            if p >= id {
                return Err(if p == id {
                    AppendError::ForwardReference { parent: p }
                } else {
                    AppendError::UnknownParent { parent: p }
                });
            }
        }
        if let Some(t) = at {
            if t > g.now {
                g.now = t;
            }
        }
        let seq = g.next_seq[b.author.index()];
        g.next_seq[b.author.index()] += 1;
        let arrival = g.now;
        g.log.push(Arc::new(Message {
            id,
            author: Some(b.author),
            seq,
            value: b.value,
            parents: b.parents,
            arrival,
            round: b.round,
        }));
        Ok(id)
    }

    /// `M.read()`: returns a complete snapshot view of the memory.
    ///
    /// Cheap when no append happened since the previous read (the cached
    /// `Arc` is shared); otherwise rebuilds the shared prefix with pointer
    /// copies only.
    pub fn read(&self) -> MemoryView {
        {
            let g = self.inner.read();
            if g.snapshot.len() == g.log.len() {
                return MemoryView::from_arc(Arc::clone(&g.snapshot));
            }
        }
        let mut g = self.inner.write();
        let inner = &mut *g;
        let snap_len = inner.snapshot.len();
        if snap_len != inner.log.len() {
            // Copy-on-write: when no reader still holds the old snapshot the
            // Arc is unique and the prefix extends in place — O(appends
            // since last read) instead of O(history). Shared snapshots fall
            // back to a pointer-copy clone of the prefix, as before.
            Arc::make_mut(&mut inner.snapshot).extend_from_slice(&inner.log[snap_len..]);
        }
        MemoryView::from_arc(Arc::clone(&inner.snapshot))
    }

    /// Reads a snapshot restricted to the first `len` arrivals. Runners use
    /// this to replay what a node saw at an earlier read without storing
    /// every view. `len` is clamped to at least 1 (genesis) and at most the
    /// current length.
    pub fn read_prefix(&self, len: usize) -> MemoryView {
        let g = self.inner.read();
        let len = len.clamp(1, g.log.len());
        if len == g.log.len() && g.snapshot.len() == len {
            return MemoryView::from_arc(Arc::clone(&g.snapshot));
        }
        MemoryView::from_arc(Arc::new(g.log[..len].to_vec()))
    }

    /// Pre-PR4 [`AppendMemory::read`] kept verbatim as the benchmark
    /// baseline: a stale snapshot is replaced wholesale by a fresh
    /// pointer-copy clone of the log — O(history) per stale read instead of
    /// O(appends since last read). Semantically identical to `read`.
    pub fn read_rebuild(&self) -> MemoryView {
        {
            let g = self.inner.read();
            if g.snapshot.len() == g.log.len() {
                return MemoryView::from_arc(Arc::clone(&g.snapshot));
            }
        }
        let mut g = self.inner.write();
        if g.snapshot.len() != g.log.len() {
            g.snapshot = Arc::new(g.log.clone());
        }
        MemoryView::from_arc(Arc::clone(&g.snapshot))
    }

    /// Naive snapshot that deep-clones every message (ablation A1 baseline;
    /// semantically identical to [`AppendMemory::read`]).
    pub fn read_deep_clone(&self) -> MemoryView {
        let g = self.inner.read();
        let cloned: Vec<Arc<Message>> = g.log.iter().map(|m| Arc::new(Message::clone(m))).collect();
        MemoryView::from_arc(Arc::new(cloned))
    }

    /// `R_i.read()`: the register view of node `i` — that node's appends in
    /// its own total order.
    pub fn read_register(&self, author: NodeId) -> Vec<Arc<Message>> {
        let g = self.inner.read();
        let out: Vec<Arc<Message>> = g
            .log
            .iter()
            .filter(|m| m.author == Some(author))
            .cloned()
            .collect();
        // seq is assigned in arrival order under the same lock as the id,
        // so filtering the id-ordered log already yields seq order.
        debug_assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
        out
    }
}

impl std::fmt::Debug for AppendMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.read();
        write!(
            f,
            "AppendMemory(n={}, len={}, now={:?}, sealed={})",
            g.n,
            g.log.len(),
            g.now,
            g.sealed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(author: u32, v: Value) -> MessageBuilder {
        MessageBuilder::new(NodeId(author), v).parent(GENESIS)
    }

    #[test]
    fn new_memory_contains_only_genesis() {
        let m = AppendMemory::new(4);
        assert_eq!(m.len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.n(), 4);
        let v = m.read();
        assert_eq!(v.len(), 1);
        assert!(v.get(GENESIS).unwrap().is_genesis());
    }

    #[test]
    fn append_assigns_arrival_ids() {
        let m = AppendMemory::new(2);
        let a = m.append(mb(0, Value::plus())).unwrap();
        let b = m.append(mb(1, Value::minus())).unwrap();
        assert_eq!(a, MsgId(1));
        assert_eq!(b, MsgId(2));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn per_author_sequence_is_total() {
        let m = AppendMemory::new(2);
        let a = m.append(mb(0, Value::plus())).unwrap();
        m.append(mb(1, Value::plus())).unwrap();
        let c = m
            .append(MessageBuilder::new(NodeId(0), Value::minus()).parent(a))
            .unwrap();
        let reg = m.read_register(NodeId(0));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg[0].seq, 0);
        assert_eq!(reg[1].seq, 1);
        assert_eq!(reg[1].id, c);
    }

    #[test]
    fn append_rejects_unknown_parent() {
        let m = AppendMemory::new(2);
        let err = m
            .append(MessageBuilder::new(NodeId(0), Value::Unit).parent(MsgId(42)))
            .unwrap_err();
        assert_eq!(err, AppendError::UnknownParent { parent: MsgId(42) });
        // Rejected appends must not consume ids or sequence numbers.
        let ok = m.append(mb(0, Value::Unit)).unwrap();
        assert_eq!(ok, MsgId(1));
        assert_eq!(m.read_register(NodeId(0))[0].seq, 0);
    }

    #[test]
    fn append_rejects_unknown_author() {
        let m = AppendMemory::new(2);
        let err = m.append(mb(5, Value::Unit)).unwrap_err();
        assert!(matches!(err, AppendError::UnknownAuthor { .. }));
    }

    #[test]
    fn sealed_memory_rejects_appends() {
        let m = AppendMemory::new(2);
        m.append(mb(0, Value::plus())).unwrap();
        m.seal();
        assert_eq!(
            m.append(mb(1, Value::plus())).unwrap_err(),
            AppendError::Sealed
        );
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn read_snapshot_is_stable_under_later_appends() {
        let m = AppendMemory::new(2);
        m.append(mb(0, Value::plus())).unwrap();
        let v1 = m.read();
        m.append(mb(1, Value::minus())).unwrap();
        assert_eq!(v1.len(), 2, "snapshot must not see later appends");
        let v2 = m.read();
        assert_eq!(v2.len(), 3);
    }

    #[test]
    fn repeated_reads_share_the_snapshot() {
        let m = AppendMemory::new(2);
        m.append(mb(0, Value::plus())).unwrap();
        let v1 = m.read();
        let v2 = m.read();
        assert!(v1.ptr_eq(&v2), "no-append reads must share the Arc");
        m.append(mb(1, Value::plus())).unwrap();
        let v3 = m.read();
        assert!(!v1.ptr_eq(&v3));
    }

    #[test]
    fn read_prefix_clamps_and_matches() {
        let m = AppendMemory::new(2);
        m.append(mb(0, Value::plus())).unwrap();
        m.append(mb(1, Value::minus())).unwrap();
        assert_eq!(m.read_prefix(0).len(), 1); // clamped to genesis
        assert_eq!(m.read_prefix(2).len(), 2);
        assert_eq!(m.read_prefix(99).len(), 3);
        let p = m.read_prefix(2);
        assert!(p.contains(MsgId(1)));
        assert!(!p.contains(MsgId(2)));
    }

    #[test]
    fn deep_clone_read_matches_shared_read() {
        let m = AppendMemory::new(3);
        for i in 0..3 {
            m.append(mb(i, Value::plus())).unwrap();
        }
        let a = m.read();
        let b = m.read_deep_clone();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(**x, **y);
        }
    }

    #[test]
    fn clock_is_monotone() {
        let m = AppendMemory::new(1);
        m.set_now(Time::new(5.0));
        m.set_now(Time::new(3.0)); // ignored
        assert_eq!(m.now(), Time::new(5.0));
        let id = m.append_at(mb(0, Value::Unit), Time::new(7.5)).unwrap();
        assert_eq!(m.now(), Time::new(7.5));
        assert_eq!(m.read().get(id).unwrap().arrival, Time::new(7.5));
    }

    #[test]
    fn append_can_reference_obsolete_state() {
        // A node may append to an obsolete state: parents need not be tips.
        let m = AppendMemory::new(2);
        let a = m.append(mb(0, Value::plus())).unwrap();
        let _b = m
            .append(MessageBuilder::new(NodeId(1), Value::plus()).parent(a))
            .unwrap();
        // Node 0 appends again referencing genesis (obsolete) — allowed.
        let c = m
            .append(MessageBuilder::new(NodeId(0), Value::minus()).parent(GENESIS))
            .unwrap();
        assert_eq!(m.read().get(c).unwrap().parents, vec![GENESIS]);
    }

    #[test]
    fn register_seq_order_without_sorting() {
        // Regression for dropping the sort in read_register: heavy
        // interleaving across authors must still yield per-author seq order
        // straight from the id-ordered log.
        let m = AppendMemory::new(3);
        for i in 0..30u32 {
            m.append(mb(i % 3, Value::plus())).unwrap();
        }
        for a in 0..3u32 {
            let reg = m.read_register(NodeId(a));
            let seqs: Vec<u64> = reg.iter().map(|msg| msg.seq).collect();
            assert_eq!(seqs, (0..10u64).collect::<Vec<_>>());
            // Ids must also ascend (log order preserved).
            assert!(reg.windows(2).all(|w| w[0].id < w[1].id));
        }
    }

    #[test]
    fn read_extends_snapshot_in_place_when_unique() {
        let m = AppendMemory::new(2);
        m.append(mb(0, Value::plus())).unwrap();
        let _ = m.read(); // build + drop the snapshot: Arc is now unique
        m.append(mb(1, Value::minus())).unwrap();
        let v = m.read(); // extends in place
        assert_eq!(v.len(), 3);
        let ids: Vec<MsgId> = v.iter().map(|msg| msg.id).collect();
        assert_eq!(ids, vec![MsgId(0), MsgId(1), MsgId(2)]);
        // A held snapshot must still never see later appends.
        m.append(mb(0, Value::plus())).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(m.read().len(), 4);
    }

    #[test]
    fn concurrent_appends_and_reads() {
        use std::sync::Arc as StdArc;
        let m = StdArc::new(AppendMemory::new(8));
        let mut handles = Vec::new();
        for a in 0..8u32 {
            let m = StdArc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let v = m.read();
                    let tip = v.iter().last().unwrap().id;
                    m.append(MessageBuilder::new(NodeId(a), Value::plus()).parent(tip))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 1 + 8 * 100);
        // Per-author order must be intact.
        for a in 0..8u32 {
            let reg = m.read_register(NodeId(a));
            assert_eq!(reg.len(), 100);
            for (i, msg) in reg.iter().enumerate() {
                assert_eq!(msg.seq, i as u64);
            }
        }
    }
}
