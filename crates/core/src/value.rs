//! Input and decision values.
//!
//! Sections 2–4 of the paper use binary inputs `{0, 1}`; Section 5 switches
//! to spin inputs `{-1, +1}` so the decision can be expressed as "the sign
//! of the sum of the first k appends". [`Value`] covers both, and [`Sign`]
//! is the spin form with the arithmetic the Section 5 protocols need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Neg;

/// A spin value `-1` or `+1` (Section 5 input domain).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// The value `-1`.
    Minus,
    /// The value `+1`.
    Plus,
}

impl Sign {
    /// Numeric value, `-1` or `+1`.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Sign::Minus => -1,
            Sign::Plus => 1,
        }
    }

    /// The sign of an integer sum; `None` when the sum is exactly zero
    /// (protocols avoid this by choosing odd `k`).
    #[inline]
    pub fn of_sum(sum: i64) -> Option<Sign> {
        match sum.signum() {
            1 => Some(Sign::Plus),
            -1 => Some(Sign::Minus),
            _ => None,
        }
    }

    /// `Plus` for `true`, `Minus` for `false`.
    #[inline]
    pub fn from_bool(b: bool) -> Sign {
        if b {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }
}

impl Neg for Sign {
    type Output = Sign;
    #[inline]
    fn neg(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Plus => Sign::Minus,
        }
    }
}

impl fmt::Debug for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Minus => write!(f, "-1"),
            Sign::Plus => write!(f, "+1"),
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The value carried by an appended message.
///
/// * `Bit` — binary consensus input (Sections 2–4).
/// * `Spin` — ±1 input for the sign-of-sum protocols (Section 5).
/// * `Unit` — structural appends that carry no input (e.g. genesis, or
///   round messages whose payload is entirely in the references).
/// * `Raw` — opaque payload for protocols layered on top of the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A binary consensus input.
    Bit(bool),
    /// A ±1 consensus input.
    Spin(Sign),
    /// No payload.
    Unit,
    /// An opaque 64-bit payload.
    Raw(u64),
}

impl Value {
    /// Shorthand for `Value::Spin(Sign::Plus)`.
    #[inline]
    pub fn plus() -> Value {
        Value::Spin(Sign::Plus)
    }

    /// Shorthand for `Value::Spin(Sign::Minus)`.
    #[inline]
    pub fn minus() -> Value {
        Value::Spin(Sign::Minus)
    }

    /// Shorthand for `Value::Bit(b)`.
    #[inline]
    pub fn bit(b: bool) -> Value {
        Value::Bit(b)
    }

    /// The spin payload, if this value is a spin.
    #[inline]
    pub fn as_sign(self) -> Option<Sign> {
        match self {
            Value::Spin(s) => Some(s),
            _ => None,
        }
    }

    /// The bit payload, if this value is a bit.
    #[inline]
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(b),
            _ => None,
        }
    }

    /// Contribution of this value to a sign-of-sum decision: ±1 for spins,
    /// 0 for everything else (non-spin appends never influence Section 5
    /// decisions).
    #[inline]
    pub fn spin_contribution(self) -> i64 {
        self.as_sign().map_or(0, Sign::as_i64)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bit(b) => write!(f, "bit({})", u8::from(*b)),
            Value::Spin(s) => write!(f, "{s:?}"),
            Value::Unit => write!(f, "()"),
            Value::Raw(x) => write!(f, "raw({x:#x})"),
        }
    }
}

impl From<Sign> for Value {
    #[inline]
    fn from(s: Sign) -> Value {
        Value::Spin(s)
    }
}

impl From<bool> for Value {
    #[inline]
    fn from(b: bool) -> Value {
        Value::Bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_arithmetic() {
        assert_eq!(Sign::Plus.as_i64(), 1);
        assert_eq!(Sign::Minus.as_i64(), -1);
        assert_eq!(-Sign::Plus, Sign::Minus);
        assert_eq!(-Sign::Minus, Sign::Plus);
    }

    #[test]
    fn sign_of_sum() {
        assert_eq!(Sign::of_sum(5), Some(Sign::Plus));
        assert_eq!(Sign::of_sum(-2), Some(Sign::Minus));
        assert_eq!(Sign::of_sum(0), None);
    }

    #[test]
    fn sign_from_bool() {
        assert_eq!(Sign::from_bool(true), Sign::Plus);
        assert_eq!(Sign::from_bool(false), Sign::Minus);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::plus().as_sign(), Some(Sign::Plus));
        assert_eq!(Value::minus().as_sign(), Some(Sign::Minus));
        assert_eq!(Value::bit(true).as_bit(), Some(true));
        assert_eq!(Value::bit(true).as_sign(), None);
        assert_eq!(Value::Unit.as_bit(), None);
    }

    #[test]
    fn spin_contribution_zero_for_non_spin() {
        assert_eq!(Value::plus().spin_contribution(), 1);
        assert_eq!(Value::minus().spin_contribution(), -1);
        assert_eq!(Value::Unit.spin_contribution(), 0);
        assert_eq!(Value::bit(true).spin_contribution(), 0);
        assert_eq!(Value::Raw(99).spin_contribution(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(Sign::Plus), Value::plus());
        assert_eq!(Value::from(false), Value::bit(false));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Value::bit(true)), "bit(1)");
        assert_eq!(format!("{:?}", Value::plus()), "+1");
        assert_eq!(format!("{:?}", Value::Unit), "()");
    }
}
