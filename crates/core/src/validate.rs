//! Structural invariant checking for memory views.
//!
//! Used by tests, property tests, and the model checker to assert that
//! every view produced anywhere in the workspace is a well-formed append
//! memory state: references point backwards, per-author sequences are
//! gap-free and totally ordered, and the genesis dummy append (when
//! present) is unique and parentless.

use crate::ids::MsgId;
use crate::view::MemoryView;
use std::collections::HashMap;
use std::fmt;

/// A violated invariant found in a view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A message references an id greater than or equal to its own —
    /// impossible in a genuine append history.
    NonMonotoneReference {
        /// The offending message.
        msg: MsgId,
        /// Its bad parent reference.
        parent: MsgId,
    },
    /// An author's sequence numbers have gaps or duplicates within the view
    /// of that author's full register.
    BrokenAuthorSequence {
        /// Author index.
        author: u32,
        /// Expected next sequence number.
        expected: u64,
        /// Found sequence number.
        found: u64,
    },
    /// A non-genesis message has no author.
    AnonymousMessage {
        /// The offending message.
        msg: MsgId,
    },
    /// The genesis message has parents or an author.
    MalformedGenesis,
    /// Duplicate message ids in the view.
    DuplicateId {
        /// The duplicated id.
        msg: MsgId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NonMonotoneReference { msg, parent } => {
                write!(f, "{msg:?} references non-prior {parent:?}")
            }
            Violation::BrokenAuthorSequence {
                author,
                expected,
                found,
            } => write!(
                f,
                "author v{author} sequence broken: expected {expected}, found {found}"
            ),
            Violation::AnonymousMessage { msg } => {
                write!(f, "non-genesis {msg:?} has no author")
            }
            Violation::MalformedGenesis => write!(f, "genesis has parents or an author"),
            Violation::DuplicateId { msg } => write!(f, "duplicate id {msg:?}"),
        }
    }
}

/// Checks every structural invariant of a view; returns all violations.
///
/// Note on author sequences: a *sparse* view (e.g. a node's local view in
/// the message-passing simulation before it has seen everything) may be
/// missing intermediate appends of an author, so sequence gaps are only a
/// violation when `full_register` is true — which it is for views read from
/// an [`AppendMemory`](crate::AppendMemory), where reads are complete.
pub fn check_view(view: &MemoryView, full_register: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut last_id: Option<MsgId> = None;
    let mut seqs: HashMap<u32, Vec<u64>> = HashMap::new();

    for m in view.iter() {
        if Some(m.id) == last_id {
            out.push(Violation::DuplicateId { msg: m.id });
        }
        last_id = Some(m.id);

        if m.is_genesis() {
            if !m.parents.is_empty() || m.author.is_some() {
                out.push(Violation::MalformedGenesis);
            }
            continue;
        }
        match m.author {
            None => out.push(Violation::AnonymousMessage { msg: m.id }),
            Some(a) => seqs.entry(a.0).or_default().push(m.seq),
        }
        for &p in &m.parents {
            if p >= m.id {
                out.push(Violation::NonMonotoneReference {
                    msg: m.id,
                    parent: p,
                });
            }
        }
    }

    if full_register {
        for (author, mut s) in seqs {
            s.sort_unstable();
            for (expected, &found) in s.iter().enumerate() {
                if found != expected as u64 {
                    out.push(Violation::BrokenAuthorSequence {
                        author,
                        expected: expected as u64,
                        found,
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, Time, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::{Message, MessageBuilder};
    use crate::value::Value;
    use std::sync::Arc;

    #[test]
    fn real_memory_views_are_clean() {
        let m = AppendMemory::new(3);
        let mut prev = GENESIS;
        for i in 0..9u32 {
            prev = m
                .append(MessageBuilder::new(NodeId(i % 3), Value::plus()).parent(prev))
                .unwrap();
        }
        assert!(check_view(&m.read(), true).is_empty());
        assert!(check_view(&m.read_prefix(4), false).is_empty());
    }

    fn raw(id: u64, author: Option<u32>, seq: u64, parents: Vec<MsgId>) -> Arc<Message> {
        Arc::new(Message {
            id: MsgId(id),
            author: author.map(NodeId),
            seq,
            value: Value::Unit,
            parents,
            arrival: Time::ZERO,
            round: None,
        })
    }

    #[test]
    fn detects_forward_reference() {
        let v = MemoryView::from_messages([
            raw(0, None, 0, vec![]),
            raw(1, Some(0), 0, vec![MsgId(2)]),
            raw(2, Some(1), 0, vec![MsgId(0)]),
        ]);
        let viol = check_view(&v, true);
        assert!(viol.contains(&Violation::NonMonotoneReference {
            msg: MsgId(1),
            parent: MsgId(2)
        }));
    }

    #[test]
    fn detects_broken_sequence() {
        let v = MemoryView::from_messages([
            raw(0, None, 0, vec![]),
            raw(1, Some(0), 0, vec![MsgId(0)]),
            raw(2, Some(0), 2, vec![MsgId(1)]), // seq 1 missing
        ]);
        let viol = check_view(&v, true);
        assert!(viol
            .iter()
            .any(|x| matches!(x, Violation::BrokenAuthorSequence { author: 0, .. })));
        // Sparse views tolerate the gap.
        assert!(check_view(&v, false).is_empty());
    }

    #[test]
    fn detects_anonymous_and_malformed_genesis() {
        let v = MemoryView::from_messages([
            raw(0, Some(1), 0, vec![]),      // genesis with an author
            raw(1, None, 0, vec![MsgId(0)]), // anonymous non-genesis
        ]);
        let viol = check_view(&v, false);
        assert!(viol.contains(&Violation::MalformedGenesis));
        assert!(viol.contains(&Violation::AnonymousMessage { msg: MsgId(1) }));
    }

    #[test]
    fn violation_display() {
        let s = Violation::NonMonotoneReference {
            msg: MsgId(3),
            parent: MsgId(5),
        }
        .to_string();
        assert!(s.contains("m3") && s.contains("m5"));
    }
}
