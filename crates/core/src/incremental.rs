//! Incremental DAG bookkeeping for append-by-append simulations.
//!
//! [`DagIndex`](crate::DagIndex) rebuilds adjacency from a snapshot —
//! right for analysis, wasteful inside a simulation loop that appends one
//! message at a time. [`IncrementalDag`] maintains the quantities the
//! Section 5 runners actually poll — longest-path depth, the prefix-tips
//! needed for interval views, and arrival-time prefixes for lagged views —
//! in O(parents) per append.

use crate::ids::{MsgId, Time};

/// Incrementally-maintained structural facts about an append history.
///
/// Indices are message ids (dense, arrival order, genesis = 0). The owner
/// must call [`on_append`](IncrementalDag::on_append) for every append, in
/// order.
///
/// ```
/// use am_core::{IncrementalDag, MsgId, Time};
/// let mut inc = IncrementalDag::new();
/// inc.on_append(MsgId(1), &[MsgId(0)], Time::new(0.5));
/// inc.on_append(MsgId(2), &[MsgId(0)], Time::new(0.9));
/// assert_eq!(inc.max_depth(), 1);
/// assert_eq!(inc.tips_of_prefix(3).len(), 2);     // a fork
/// assert_eq!(inc.prefix_at_time(Time::new(0.7)), 2); // genesis + m1
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalDag {
    /// Longest-path depth per message (genesis 0).
    depth: Vec<u32>,
    /// Smallest child id per message (`None` = tip of the full history).
    first_child: Vec<Option<u64>>,
    /// Arrival time per message, non-decreasing.
    arrivals: Vec<Time>,
    /// Deepest message so far, ties to the smallest id (maintained on
    /// append so the per-grant decision gate never rescans the history).
    deepest: u64,
}

impl Default for IncrementalDag {
    fn default() -> Self {
        IncrementalDag::new()
    }
}

impl IncrementalDag {
    /// A fresh tracker containing only genesis (depth 0, time 0).
    pub fn new() -> IncrementalDag {
        IncrementalDag {
            depth: vec![0],
            first_child: vec![None],
            arrivals: vec![Time::ZERO],
            deepest: 0,
        }
    }

    /// Number of messages tracked (genesis included).
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Whether only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Records an append. `id` must be the next dense id; `parents` must
    /// be prior ids; `at` must be ≥ the previous arrival.
    pub fn on_append(&mut self, id: MsgId, parents: &[MsgId], at: Time) {
        assert_eq!(id.index(), self.len(), "ids must be dense and in order");
        assert!(
            at >= *self.arrivals.last().expect("genesis present"),
            "arrivals must be non-decreasing"
        );
        let d = parents
            .iter()
            .map(|p| self.depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        if d > self.depth[self.deepest as usize] {
            self.deepest = id.0;
        }
        self.depth.push(d);
        self.first_child.push(None);
        self.arrivals.push(at);
        for p in parents {
            let slot = &mut self.first_child[p.index()];
            if slot.is_none() {
                *slot = Some(id.0);
            }
        }
    }

    /// Longest-path depth of a message.
    pub fn depth_of(&self, id: MsgId) -> u32 {
        self.depth[id.index()]
    }

    /// Maximum depth over the whole history.
    pub fn max_depth(&self) -> u32 {
        *self.depth.iter().max().expect("genesis present")
    }

    /// The deepest message (ties to the smallest id), maintained on append.
    pub fn deepest(&self) -> MsgId {
        MsgId(self.deepest)
    }

    /// Deepest message ids *within the first `prefix` messages* — the
    /// longest-chain tip candidates of a prefix view.
    pub fn deepest_in_prefix(&self, prefix: usize) -> Vec<MsgId> {
        let prefix = prefix.clamp(1, self.len());
        let max = self.depth[..prefix].iter().copied().max().unwrap_or(0);
        (0..prefix)
            .filter(|&i| self.depth[i] == max)
            .map(|i| MsgId(i as u64))
            .collect()
    }

    /// Tips of the prefix view of length `prefix`: messages whose first
    /// child (if any) lies beyond the prefix.
    pub fn tips_of_prefix(&self, prefix: usize) -> Vec<MsgId> {
        let mut out = Vec::new();
        self.tips_of_prefix_into(prefix, &mut out);
        out
    }

    /// [`tips_of_prefix`](IncrementalDag::tips_of_prefix) into a caller
    /// buffer (cleared first) — the per-grant hot loops reuse one buffer
    /// instead of allocating a tip list per token.
    pub fn tips_of_prefix_into(&self, prefix: usize, out: &mut Vec<MsgId>) {
        out.clear();
        let prefix = prefix.clamp(1, self.len());
        out.extend(
            (0..prefix)
                .filter(|&i| match self.first_child[i] {
                    None => true,
                    Some(c) => c >= prefix as u64,
                })
                .map(|i| MsgId(i as u64)),
        );
    }

    /// Number of messages that had arrived strictly before `t` — the
    /// prefix a node whose view lags to time `t` can see. At least 1
    /// (genesis is always visible).
    pub fn prefix_at_time(&self, t: Time) -> usize {
        self.arrivals.partition_point(|&a| a < t).max(1)
    }
}

/// Incrementally-maintained covered-value count of a tip's closed past
/// cone — the "selected chain contains at least k values" gate of
/// Algorithm 6, answered without re-walking the history.
///
/// The tracker keeps a persistent visited bitmap (epoch-stamped, so a
/// full invalidation is one counter bump) that always equals the closed
/// past cone of one *tracked tip*, together with the number of
/// value-carrying messages in it. A query for a new tip first probes
/// whether the old cone is contained in the new one (true exactly when
/// the tracked tip is an ancestor of — or equal to — the queried tip);
/// if so, only the *fresh* region is walked and the marks extend in
/// place, which costs amortized O(parents) per append along a growing
/// history. Otherwise (the deepest tip jumped to a different branch, or
/// the query moved backwards) it falls back to a full DFS under a new
/// epoch.
///
/// Containment is detected during the probe itself: the DFS from the
/// queried tip expands only unmarked nodes, and on every marked boundary
/// node checks whether it is the tracked tip. On any downward path from
/// the queried tip to the tracked tip, an intermediate marked node `m ≠
/// tracked` would have to be both an ancestor of the tracked tip (it is
/// marked) and its descendant (it precedes the tracked tip on the path) —
/// impossible in a DAG — so the first marked node on every such path *is*
/// the tracked tip, and the probe reaches it whenever it is contained.
///
/// Ids are dense arrival-order ids (genesis = 0), as everywhere in the
/// incremental layer; the owner must call
/// [`on_append`](ConeCoverTracker::on_append) for every append, in order.
///
/// ```
/// use am_core::{ConeCoverTracker, MsgId};
/// let mut t = ConeCoverTracker::new();
/// t.on_append(MsgId(1), &[MsgId(0)], true);
/// t.on_append(MsgId(2), &[MsgId(1)], true);
/// t.on_append(MsgId(3), &[MsgId(0)], true); // fork off genesis
/// assert_eq!(t.cover_of(MsgId(2)), 2); // {m1, m2}; genesis carries none
/// assert_eq!(t.cover_of(MsgId(3)), 1); // branch switch → fallback
/// ```
#[derive(Clone, Debug)]
pub struct ConeCoverTracker {
    /// CSR parent adjacency: parents of `i` are
    /// `par[par_off[i]..par_off[i+1]]`.
    par_off: Vec<u32>,
    par: Vec<u32>,
    /// Whether message `i` carries a decision value.
    carries_value: Vec<bool>,
    /// Persistent cone marks: `mark[i] == epoch` ⇔ `i` is in the closed
    /// past cone of `tracked`.
    mark: Vec<u32>,
    epoch: u32,
    /// Probe stamps for the containment test (separate from `mark` so a
    /// failed probe leaves the cone intact).
    probe: Vec<u32>,
    probe_epoch: u32,
    /// The tip whose closed cone the marks currently describe.
    tracked: u64,
    /// Value-carrying messages in the tracked cone.
    covered: usize,
    /// Reusable DFS stack.
    stack: Vec<u32>,
    /// Fresh nodes collected by the probe pass.
    fresh: Vec<u32>,
}

impl Default for ConeCoverTracker {
    fn default() -> Self {
        ConeCoverTracker::new()
    }
}

impl ConeCoverTracker {
    /// A fresh tracker containing only genesis; the tracked cone is
    /// genesis's own (empty of values — genesis carries none).
    pub fn new() -> ConeCoverTracker {
        ConeCoverTracker {
            par_off: vec![0, 0],
            par: Vec::new(),
            carries_value: vec![false],
            mark: vec![1],
            epoch: 1,
            probe: vec![0],
            probe_epoch: 0,
            tracked: 0,
            covered: 0,
            stack: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// Number of messages tracked (genesis included).
    pub fn len(&self) -> usize {
        self.carries_value.len()
    }

    /// Whether only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Records an append. `id` must be the next dense id; `parents` must
    /// be prior ids; `counts_value` says whether the message carries a
    /// decision value (`Value::as_sign().is_some()` in the protocols).
    pub fn on_append(&mut self, id: MsgId, parents: &[MsgId], counts_value: bool) {
        assert_eq!(id.index(), self.len(), "ids must be dense and in order");
        for p in parents {
            self.par.push(p.0 as u32);
        }
        self.par_off.push(self.par.len() as u32);
        self.carries_value.push(counts_value);
        self.mark.push(0);
        self.probe.push(0);
    }

    /// The covered-value count of the tracked tip, without re-querying.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// The tip whose cone the tracker currently holds.
    pub fn tracked_tip(&self) -> MsgId {
        MsgId(self.tracked)
    }

    /// Whether `id` lies in the closed past cone of the tracked tip — an
    /// O(1) membership probe against the maintained marks. `am-bft` keeps
    /// a tracker pinned to the finalized head and answers `is_final` with
    /// exactly this query.
    pub fn in_cone(&self, id: MsgId) -> bool {
        let i = id.index();
        i < self.len() && self.mark[i] == self.epoch
    }

    /// Number of value-carrying messages in the closed past cone of
    /// `tip`, maintained incrementally. Amortized O(parents) per append
    /// when queried tips descend from one another (the growing-deepest
    /// pattern of the simulation loops); O(cone) on branch switches.
    pub fn cover_of(&mut self, tip: MsgId) -> usize {
        let t = tip.index();
        assert!(t < self.len(), "queried tip must have been appended");
        if t as u64 == self.tracked {
            return self.covered;
        }
        if self.mark[t] == self.epoch {
            // The queried tip lies inside the tracked cone: the cone
            // shrinks, which in-place marks cannot express. Recount.
            return self.recount(t);
        }
        // Fast path for the growing-chain query: every parent already in
        // the tracked cone and the tracked tip among them means the new
        // cone is exactly the old one plus `t` — extend without probing.
        let (ps, pe) = (self.par_off[t] as usize, self.par_off[t + 1] as usize);
        let parents = &self.par[ps..pe];
        if parents.iter().any(|&p| p as u64 == self.tracked)
            && parents.iter().all(|&p| self.mark[p as usize] == self.epoch)
        {
            self.mark[t] = self.epoch;
            if self.carries_value[t] {
                self.covered += 1;
            }
            self.tracked = t as u64;
            return self.covered;
        }
        // Probe DFS from the new tip over unmarked nodes; collect the
        // fresh region and watch for the tracked tip on the boundary.
        self.probe_epoch += 1;
        if self.probe_epoch == u32::MAX {
            self.probe.fill(0);
            self.probe_epoch = 1;
        }
        let pe = self.probe_epoch;
        self.fresh.clear();
        self.stack.clear();
        self.stack.push(t as u32);
        self.probe[t] = pe;
        let mut saw_tracked = false;
        while let Some(i) = self.stack.pop() {
            let i = i as usize;
            self.fresh.push(i as u32);
            let (s, e) = (self.par_off[i] as usize, self.par_off[i + 1] as usize);
            for k in s..e {
                let p = self.par[k] as usize;
                if self.mark[p] == self.epoch {
                    // Boundary: already inside the tracked cone.
                    if p as u64 == self.tracked {
                        saw_tracked = true;
                    }
                } else if self.probe[p] != pe {
                    self.probe[p] = pe;
                    self.stack.push(p as u32);
                }
            }
        }
        if saw_tracked {
            // Old cone ⊆ new cone: extend the marks in place.
            for idx in 0..self.fresh.len() {
                let f = self.fresh[idx] as usize;
                self.mark[f] = self.epoch;
                if self.carries_value[f] {
                    self.covered += 1;
                }
            }
            self.tracked = t as u64;
            self.covered
        } else {
            self.recount(t)
        }
    }

    /// Full DFS fallback: invalidate every mark (one epoch bump) and
    /// rebuild the cone of `tip` from scratch.
    fn recount(&mut self, tip: usize) -> usize {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 1;
        }
        let e = self.epoch;
        self.covered = 0;
        self.stack.clear();
        self.stack.push(tip as u32);
        self.mark[tip] = e;
        while let Some(i) = self.stack.pop() {
            let i = i as usize;
            if self.carries_value[i] {
                self.covered += 1;
            }
            let (s, en) = (self.par_off[i] as usize, self.par_off[i + 1] as usize);
            for k in s..en {
                let p = self.par[k] as usize;
                if self.mark[p] != e {
                    self.mark[p] = e;
                    self.stack.push(p as u32);
                }
            }
        }
        self.tracked = tip as u64;
        self.covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    fn tracker_chain(len: usize) -> IncrementalDag {
        let mut d = IncrementalDag::new();
        for i in 1..=len {
            d.on_append(MsgId(i as u64), &[MsgId(i as u64 - 1)], t(i as f64));
        }
        d
    }

    #[test]
    fn chain_depths_and_tips() {
        let d = tracker_chain(5);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.max_depth(), 5);
        assert_eq!(d.deepest(), MsgId(5));
        assert_eq!(d.tips_of_prefix(6), vec![MsgId(5)]);
        assert_eq!(d.tips_of_prefix(3), vec![MsgId(2)]);
        assert_eq!(d.deepest_in_prefix(3), vec![MsgId(2)]);
    }

    #[test]
    fn fork_gives_multiple_prefix_tips() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(1), &[MsgId(0)], t(1.0));
        d.on_append(MsgId(2), &[MsgId(0)], t(2.0));
        assert_eq!(d.tips_of_prefix(3), vec![MsgId(1), MsgId(2)]);
        assert_eq!(d.deepest_in_prefix(3), vec![MsgId(1), MsgId(2)]);
        // Merge closes both.
        d.on_append(MsgId(3), &[MsgId(1), MsgId(2)], t(3.0));
        assert_eq!(d.tips_of_prefix(4), vec![MsgId(3)]);
        assert_eq!(d.depth_of(MsgId(3)), 2);
    }

    #[test]
    fn prefix_at_time_is_strict_and_clamped() {
        let d = tracker_chain(4); // arrivals 0,1,2,3,4
        assert_eq!(d.prefix_at_time(t(0.0)), 1, "genesis always visible");
        assert_eq!(d.prefix_at_time(t(1.0)), 1, "strictly-before semantics");
        assert_eq!(d.prefix_at_time(t(1.5)), 2);
        assert_eq!(d.prefix_at_time(t(100.0)), 5);
    }

    #[test]
    fn matches_dag_index_on_random_history() {
        use crate::ids::{NodeId, GENESIS};
        use crate::memory::AppendMemory;
        use crate::message::MessageBuilder;
        use crate::value::Value;
        let mem = AppendMemory::new(3);
        let mut inc = IncrementalDag::new();
        let picks: [u64; 10] = [0, 0, 1, 2, 0, 4, 3, 6, 2, 8];
        for (i, &p) in picks.iter().enumerate() {
            let parents = [MsgId(p), GENESIS];
            let id = mem
                .append_at(
                    MessageBuilder::new(NodeId((i % 3) as u32), Value::plus())
                        .parents(parents.iter().copied()),
                    t(i as f64 + 1.0),
                )
                .unwrap();
            inc.on_append(id, &[MsgId(p), GENESIS], t(i as f64 + 1.0));
        }
        let dag = crate::dag::DagIndex::new(&mem.read());
        assert_eq!(inc.max_depth(), dag.max_depth());
        let full_tips: Vec<MsgId> = inc.tips_of_prefix(inc.len());
        assert_eq!(full_tips, dag.tip_ids());
        for pos in 0..dag.len() {
            assert_eq!(inc.depth_of(dag.id_at(pos)), dag.depth_of(pos));
        }
    }

    /// Naive reference: value count of the closed past cone by plain DFS.
    fn naive_cover(parents: &[Vec<u64>], values: &[bool], tip: u64) -> usize {
        let mut seen = vec![false; parents.len()];
        let mut stack = vec![tip as usize];
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            if values[i] {
                count += 1;
            }
            stack.extend(parents[i].iter().map(|&p| p as usize));
        }
        count
    }

    #[test]
    fn cover_tracker_chain_growth_is_incremental_and_exact() {
        let mut t = ConeCoverTracker::new();
        assert_eq!(t.cover_of(MsgId(0)), 0);
        for i in 1..=50u64 {
            t.on_append(MsgId(i), &[MsgId(i - 1)], i % 3 != 0);
            let expect = (1..=i).filter(|x| x % 3 != 0).count();
            assert_eq!(t.cover_of(MsgId(i)), expect, "at append {i}");
            assert_eq!(t.covered(), expect);
            assert_eq!(t.tracked_tip(), MsgId(i));
        }
    }

    #[test]
    fn cover_tracker_handles_branch_switches() {
        // Two competing branches off genesis; the deepest tip alternates.
        let mut t = ConeCoverTracker::new();
        t.on_append(MsgId(1), &[MsgId(0)], true); // branch A
        t.on_append(MsgId(2), &[MsgId(1)], true);
        t.on_append(MsgId(3), &[MsgId(0)], true); // branch B
        t.on_append(MsgId(4), &[MsgId(3)], true);
        t.on_append(MsgId(5), &[MsgId(4)], true);
        assert_eq!(t.cover_of(MsgId(2)), 2); // A: {1,2}
        assert_eq!(t.cover_of(MsgId(5)), 3); // fallback to B: {3,4,5}
        assert_eq!(t.cover_of(MsgId(2)), 2); // and back again
                                             // A merge referencing both tips extends whichever cone is held.
        t.on_append(MsgId(6), &[MsgId(2), MsgId(5)], true);
        assert_eq!(t.cover_of(MsgId(6)), 6);
    }

    #[test]
    fn in_cone_tracks_the_held_cone() {
        let mut t = ConeCoverTracker::new();
        t.on_append(MsgId(1), &[MsgId(0)], true); // branch A
        t.on_append(MsgId(2), &[MsgId(1)], true);
        t.on_append(MsgId(3), &[MsgId(0)], true); // branch B
        t.cover_of(MsgId(2));
        assert!(t.in_cone(MsgId(0)) && t.in_cone(MsgId(1)) && t.in_cone(MsgId(2)));
        assert!(!t.in_cone(MsgId(3)));
        assert!(!t.in_cone(MsgId(99)), "unknown ids are outside");
        t.cover_of(MsgId(3)); // branch switch: cone is now {0, 3}
        assert!(t.in_cone(MsgId(3)) && !t.in_cone(MsgId(2)));
    }

    #[test]
    fn cover_tracker_query_inside_cone_falls_back() {
        let mut t = ConeCoverTracker::new();
        for i in 1..=10u64 {
            t.on_append(MsgId(i), &[MsgId(i - 1)], true);
        }
        assert_eq!(t.cover_of(MsgId(10)), 10);
        // Query an ancestor of the tracked tip: cone shrinks.
        assert_eq!(t.cover_of(MsgId(4)), 4);
        assert_eq!(t.cover_of(MsgId(10)), 10);
    }

    #[test]
    fn cover_tracker_matches_naive_on_random_history() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut t = ConeCoverTracker::new();
        let mut parents: Vec<Vec<u64>> = vec![Vec::new()];
        let mut values: Vec<bool> = vec![false];
        for i in 1..300u64 {
            let np = rng.gen_range(1..=3.min(i as usize));
            let ps: Vec<MsgId> = (0..np).map(|_| MsgId(rng.gen_range(0..i))).collect();
            let v = rng.gen_bool(0.8);
            t.on_append(MsgId(i), &ps, v);
            parents.push(ps.iter().map(|p| p.0).collect());
            values.push(v);
            // Query a random prior tip every few appends plus the newest.
            let q = rng.gen_range(0..=i);
            assert_eq!(t.cover_of(MsgId(q)), naive_cover(&parents, &values, q));
            assert_eq!(t.cover_of(MsgId(i)), naive_cover(&parents, &values, i));
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_gapped_ids() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(5), &[MsgId(0)], t(1.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(1), &[MsgId(0)], t(2.0));
        d.on_append(MsgId(2), &[MsgId(1)], t(1.0));
    }
}
