//! Incremental DAG bookkeeping for append-by-append simulations.
//!
//! [`DagIndex`](crate::DagIndex) rebuilds adjacency from a snapshot —
//! right for analysis, wasteful inside a simulation loop that appends one
//! message at a time. [`IncrementalDag`] maintains the quantities the
//! Section 5 runners actually poll — longest-path depth, the prefix-tips
//! needed for interval views, and arrival-time prefixes for lagged views —
//! in O(parents) per append.

use crate::ids::{MsgId, Time};

/// Incrementally-maintained structural facts about an append history.
///
/// Indices are message ids (dense, arrival order, genesis = 0). The owner
/// must call [`on_append`](IncrementalDag::on_append) for every append, in
/// order.
///
/// ```
/// use am_core::{IncrementalDag, MsgId, Time};
/// let mut inc = IncrementalDag::new();
/// inc.on_append(MsgId(1), &[MsgId(0)], Time::new(0.5));
/// inc.on_append(MsgId(2), &[MsgId(0)], Time::new(0.9));
/// assert_eq!(inc.max_depth(), 1);
/// assert_eq!(inc.tips_of_prefix(3).len(), 2);     // a fork
/// assert_eq!(inc.prefix_at_time(Time::new(0.7)), 2); // genesis + m1
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalDag {
    /// Longest-path depth per message (genesis 0).
    depth: Vec<u32>,
    /// Smallest child id per message (`None` = tip of the full history).
    first_child: Vec<Option<u64>>,
    /// Arrival time per message, non-decreasing.
    arrivals: Vec<Time>,
}

impl Default for IncrementalDag {
    fn default() -> Self {
        IncrementalDag::new()
    }
}

impl IncrementalDag {
    /// A fresh tracker containing only genesis (depth 0, time 0).
    pub fn new() -> IncrementalDag {
        IncrementalDag {
            depth: vec![0],
            first_child: vec![None],
            arrivals: vec![Time::ZERO],
        }
    }

    /// Number of messages tracked (genesis included).
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// Whether only genesis is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Records an append. `id` must be the next dense id; `parents` must
    /// be prior ids; `at` must be ≥ the previous arrival.
    pub fn on_append(&mut self, id: MsgId, parents: &[MsgId], at: Time) {
        assert_eq!(id.index(), self.len(), "ids must be dense and in order");
        assert!(
            at >= *self.arrivals.last().expect("genesis present"),
            "arrivals must be non-decreasing"
        );
        let d = parents
            .iter()
            .map(|p| self.depth[p.index()] + 1)
            .max()
            .unwrap_or(0);
        self.depth.push(d);
        self.first_child.push(None);
        self.arrivals.push(at);
        for p in parents {
            let slot = &mut self.first_child[p.index()];
            if slot.is_none() {
                *slot = Some(id.0);
            }
        }
    }

    /// Longest-path depth of a message.
    pub fn depth_of(&self, id: MsgId) -> u32 {
        self.depth[id.index()]
    }

    /// Maximum depth over the whole history.
    pub fn max_depth(&self) -> u32 {
        *self.depth.iter().max().expect("genesis present")
    }

    /// The deepest message (ties to the smallest id).
    pub fn deepest(&self) -> MsgId {
        let mut best = 0usize;
        for i in 1..self.len() {
            if self.depth[i] > self.depth[best] {
                best = i;
            }
        }
        MsgId(best as u64)
    }

    /// Deepest message ids *within the first `prefix` messages* — the
    /// longest-chain tip candidates of a prefix view.
    pub fn deepest_in_prefix(&self, prefix: usize) -> Vec<MsgId> {
        let prefix = prefix.clamp(1, self.len());
        let max = self.depth[..prefix].iter().copied().max().unwrap_or(0);
        (0..prefix)
            .filter(|&i| self.depth[i] == max)
            .map(|i| MsgId(i as u64))
            .collect()
    }

    /// Tips of the prefix view of length `prefix`: messages whose first
    /// child (if any) lies beyond the prefix.
    pub fn tips_of_prefix(&self, prefix: usize) -> Vec<MsgId> {
        let prefix = prefix.clamp(1, self.len());
        (0..prefix)
            .filter(|&i| match self.first_child[i] {
                None => true,
                Some(c) => c >= prefix as u64,
            })
            .map(|i| MsgId(i as u64))
            .collect()
    }

    /// Number of messages that had arrived strictly before `t` — the
    /// prefix a node whose view lags to time `t` can see. At least 1
    /// (genesis is always visible).
    pub fn prefix_at_time(&self, t: Time) -> usize {
        self.arrivals.partition_point(|&a| a < t).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    fn tracker_chain(len: usize) -> IncrementalDag {
        let mut d = IncrementalDag::new();
        for i in 1..=len {
            d.on_append(MsgId(i as u64), &[MsgId(i as u64 - 1)], t(i as f64));
        }
        d
    }

    #[test]
    fn chain_depths_and_tips() {
        let d = tracker_chain(5);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.max_depth(), 5);
        assert_eq!(d.deepest(), MsgId(5));
        assert_eq!(d.tips_of_prefix(6), vec![MsgId(5)]);
        assert_eq!(d.tips_of_prefix(3), vec![MsgId(2)]);
        assert_eq!(d.deepest_in_prefix(3), vec![MsgId(2)]);
    }

    #[test]
    fn fork_gives_multiple_prefix_tips() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(1), &[MsgId(0)], t(1.0));
        d.on_append(MsgId(2), &[MsgId(0)], t(2.0));
        assert_eq!(d.tips_of_prefix(3), vec![MsgId(1), MsgId(2)]);
        assert_eq!(d.deepest_in_prefix(3), vec![MsgId(1), MsgId(2)]);
        // Merge closes both.
        d.on_append(MsgId(3), &[MsgId(1), MsgId(2)], t(3.0));
        assert_eq!(d.tips_of_prefix(4), vec![MsgId(3)]);
        assert_eq!(d.depth_of(MsgId(3)), 2);
    }

    #[test]
    fn prefix_at_time_is_strict_and_clamped() {
        let d = tracker_chain(4); // arrivals 0,1,2,3,4
        assert_eq!(d.prefix_at_time(t(0.0)), 1, "genesis always visible");
        assert_eq!(d.prefix_at_time(t(1.0)), 1, "strictly-before semantics");
        assert_eq!(d.prefix_at_time(t(1.5)), 2);
        assert_eq!(d.prefix_at_time(t(100.0)), 5);
    }

    #[test]
    fn matches_dag_index_on_random_history() {
        use crate::ids::{NodeId, GENESIS};
        use crate::memory::AppendMemory;
        use crate::message::MessageBuilder;
        use crate::value::Value;
        let mem = AppendMemory::new(3);
        let mut inc = IncrementalDag::new();
        let picks: [u64; 10] = [0, 0, 1, 2, 0, 4, 3, 6, 2, 8];
        for (i, &p) in picks.iter().enumerate() {
            let parents = [MsgId(p), GENESIS];
            let id = mem
                .append_at(
                    MessageBuilder::new(NodeId((i % 3) as u32), Value::plus())
                        .parents(parents.iter().copied()),
                    t(i as f64 + 1.0),
                )
                .unwrap();
            inc.on_append(id, &[MsgId(p), GENESIS], t(i as f64 + 1.0));
        }
        let dag = crate::dag::DagIndex::new(&mem.read());
        assert_eq!(inc.max_depth(), dag.max_depth());
        let full_tips: Vec<MsgId> = inc.tips_of_prefix(inc.len());
        assert_eq!(full_tips, dag.tip_ids());
        for pos in 0..dag.len() {
            assert_eq!(inc.depth_of(dag.id_at(pos)), dag.depth_of(pos));
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_gapped_ids() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(5), &[MsgId(0)], t(1.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut d = IncrementalDag::new();
        d.on_append(MsgId(1), &[MsgId(0)], t(2.0));
        d.on_append(MsgId(2), &[MsgId(1)], t(1.0));
    }
}
