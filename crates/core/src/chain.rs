//! Longest-chain selection (Algorithm 5's structure).
//!
//! The chain protocol appends to "the last states in the longest chains of
//! M" and, when several longest chains exist, resolves the tie with a
//! tie-breaking rule (deterministic — first in the memory — or uniformly at
//! random). This module computes the longest-chain tips and extracts chains;
//! the tie-breaking *policy* lives with the protocols, which own the RNG.

use crate::dag::DagIndex;
use crate::ids::MsgId;
use crate::view::MemoryView;

/// Positions of all deepest messages — the candidate set `C` of Algorithm 5
/// line 5 ("the set of the last states in the longest chains of M").
/// Returned in id (arrival) order, so index 0 is the deterministic
/// "first longest chain in the memory" choice of Theorem 5.3.
pub fn longest_chain_tips(dag: &DagIndex) -> Vec<usize> {
    let d = dag.max_depth();
    (0..dag.len()).filter(|&i| dag.depth_of(i) == d).collect()
}

/// The chain from `tip` back to a root, returned root-first. When a message
/// has several parents (DAG merges), the deepest parent is followed, ties
/// broken towards the smallest id — this is the canonical chain
/// decomposition used to order a DAG by its longest chain.
pub fn chain_to_genesis(dag: &DagIndex, tip: usize) -> Vec<usize> {
    let mut chain = vec![tip];
    let mut cur = tip;
    loop {
        let parents = dag.parents_of(cur);
        if parents.is_empty() {
            break;
        }
        let mut best = parents[0] as usize;
        for &p in &parents[1..] {
            let p = p as usize;
            let better_depth = dag.depth_of(p) > dag.depth_of(best);
            let equal_depth_smaller_id = dag.depth_of(p) == dag.depth_of(best) && p < best;
            if better_depth || equal_depth_smaller_id {
                best = p;
            }
        }
        chain.push(best);
        cur = best;
    }
    chain.reverse();
    chain
}

/// Convenience: the longest chain of a view as message ids (root first),
/// using the deterministic first-tip rule for ties.
pub fn longest_chain(view: &MemoryView) -> Vec<MsgId> {
    let dag = DagIndex::new(view);
    longest_chain_with(&dag)
}

/// [`longest_chain`] on an existing index — decision paths that also
/// linearize build the index once and share it.
pub fn longest_chain_with(dag: &DagIndex) -> Vec<MsgId> {
    let tips = longest_chain_tips(dag);
    let Some(&tip) = tips.first() else {
        return Vec::new();
    };
    chain_to_genesis(dag, tip)
        .into_iter()
        .map(|p| dag.id_at(p))
        .collect()
}

/// Number of messages that are *not* on the chain through `tip` — the forks
/// ("wasted" correct appends in the Theorem 5.4 analysis).
pub fn off_chain_count(dag: &DagIndex, tip: usize) -> usize {
    dag.len() - chain_to_genesis(dag, tip).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn append(m: &AppendMemory, a: u32, parents: &[MsgId]) -> MsgId {
        m.append(MessageBuilder::new(NodeId(a), Value::plus()).parents(parents.iter().copied()))
            .unwrap()
    }

    #[test]
    fn single_chain() {
        let m = AppendMemory::new(1);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 0, &[a]);
        let c = append(&m, 0, &[b]);
        let chain = longest_chain(&m.read());
        assert_eq!(chain, vec![GENESIS, a, b, c]);
    }

    #[test]
    fn fork_produces_two_tips() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, &[GENESIS]);
        let b1 = append(&m, 0, &[a]);
        let b2 = append(&m, 1, &[a]);
        let dag = DagIndex::new(&m.read());
        let tips = longest_chain_tips(&dag);
        assert_eq!(tips.len(), 2);
        assert_eq!(dag.id_at(tips[0]), b1);
        assert_eq!(dag.id_at(tips[1]), b2);
        // Deterministic rule picks the first (b1).
        assert_eq!(longest_chain(&m.read()).last(), Some(&b1));
    }

    #[test]
    fn deeper_branch_wins_regardless_of_arrival() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, &[GENESIS]); // branch 1, early
        let c = append(&m, 1, &[GENESIS]); // branch 2
        let d = append(&m, 1, &[c]); // branch 2 is deeper
        let chain = longest_chain(&m.read());
        assert_eq!(chain, vec![GENESIS, c, d]);
        let _ = a;
    }

    #[test]
    fn merge_follows_deepest_parent() {
        let m = AppendMemory::new(3);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 0, &[a]); // depth 2
        let c = append(&m, 1, &[GENESIS]); // depth 1
        let d = append(&m, 2, &[b, c]); // merge; chain must route via b
        let chain = longest_chain(&m.read());
        assert_eq!(chain, vec![GENESIS, a, b, d]);
    }

    #[test]
    fn merge_tie_breaks_to_smaller_id() {
        let m = AppendMemory::new(3);
        let a = append(&m, 0, &[GENESIS]); // depth 1
        let b = append(&m, 1, &[GENESIS]); // depth 1
        let c = append(&m, 2, &[a, b]); // both parents depth 1
        let dag = DagIndex::new(&m.read());
        let pos_c = dag.position(c).unwrap();
        let chain = chain_to_genesis(&dag, pos_c);
        let ids: Vec<MsgId> = chain.iter().map(|&p| dag.id_at(p)).collect();
        assert_eq!(ids, vec![GENESIS, a, c]);
    }

    #[test]
    fn off_chain_counts_forks() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, &[GENESIS]);
        let _fork = append(&m, 1, &[GENESIS]);
        let b = append(&m, 0, &[a]);
        let dag = DagIndex::new(&m.read());
        let tip = dag.position(b).unwrap();
        // 4 messages total, chain genesis→a→b has 3 → 1 off-chain.
        assert_eq!(off_chain_count(&dag, tip), 1);
    }

    #[test]
    fn genesis_only_chain() {
        let m = AppendMemory::new(1);
        assert_eq!(longest_chain(&m.read()), vec![GENESIS]);
    }
}
