//! Ordering rules: the pluggable chain-selection policies of Algorithm 6.
//!
//! "The correctness of Algorithm 6 is based on one of the tie-breaking
//! rules in Line 2, such as the heaviest chain defined in the Ghost
//! protocol \[22\] or simply the longest chain \[14\]." [`OrderingRule`]
//! abstracts the two so protocols and experiments can sweep over them.

use crate::chain::longest_chain;
use crate::ghost::ghost_pivot;
use crate::ids::MsgId;
use crate::linearize::{linearize, Linearization};
use crate::view::MemoryView;

/// A rule that selects a chain from a view and linearizes the DAG along it.
pub trait OrderingRule: Send + Sync {
    /// Human-readable rule name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The selected chain, root-first.
    fn select_chain(&self, view: &MemoryView) -> Vec<MsgId>;

    /// Full linearization of the view along the selected chain.
    fn order(&self, view: &MemoryView) -> Linearization {
        linearize(view, &self.select_chain(view))
    }

    /// The chain length in messages (genesis included) — what Algorithm 5/6
    /// gate their decision on ("longest chain of length at least k").
    fn chain_len(&self, view: &MemoryView) -> usize {
        self.select_chain(view).len()
    }
}

/// The longest-chain rule (pivot chain of \[14\], deterministic ties).
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestChainRule;

impl OrderingRule for LongestChainRule {
    fn name(&self) -> &'static str {
        "longest-chain"
    }
    fn select_chain(&self, view: &MemoryView) -> Vec<MsgId> {
        longest_chain(view)
    }
}

/// The GHOST heaviest-subtree rule \[22\].
#[derive(Clone, Copy, Debug, Default)]
pub struct GhostRule;

impl OrderingRule for GhostRule {
    fn name(&self) -> &'static str {
        "ghost"
    }
    fn select_chain(&self, view: &MemoryView) -> Vec<MsgId> {
        ghost_pivot(view)
    }
}

/// The Conflux-style pivot-chain rule \[14\]: heaviest first-parent subtree.
#[derive(Clone, Copy, Debug, Default)]
pub struct PivotRule;

impl OrderingRule for PivotRule {
    fn name(&self) -> &'static str {
        "pivot"
    }
    fn select_chain(&self, view: &MemoryView) -> Vec<MsgId> {
        crate::pivot::pivot_chain(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn append(m: &AppendMemory, a: u32, parents: &[MsgId]) -> MsgId {
        m.append(MessageBuilder::new(NodeId(a), Value::plus()).parents(parents.iter().copied()))
            .unwrap()
    }

    #[test]
    fn rules_agree_on_a_chain() {
        let m = AppendMemory::new(1);
        let mut prev = GENESIS;
        for _ in 0..5 {
            prev = append(&m, 0, &[prev]);
        }
        let v = m.read();
        let lc = LongestChainRule.select_chain(&v);
        let gh = GhostRule.select_chain(&v);
        assert_eq!(lc, gh);
        assert_eq!(LongestChainRule.chain_len(&v), 6);
        assert_eq!(GhostRule.chain_len(&v), 6);
    }

    #[test]
    fn rules_diverge_on_bushy_fork() {
        let m = AppendMemory::new(8);
        // Long thin branch A.
        let a1 = append(&m, 0, &[GENESIS]);
        let a2 = append(&m, 0, &[a1]);
        let a3 = append(&m, 0, &[a2]);
        // Short bushy branch B.
        let b1 = append(&m, 1, &[GENESIS]);
        for i in 2..6 {
            append(&m, i, &[b1]);
        }
        let v = m.read();
        assert_eq!(LongestChainRule.select_chain(&v).last(), Some(&a3));
        assert_eq!(GhostRule.select_chain(&v)[1], b1);
        assert_eq!(LongestChainRule.name(), "longest-chain");
        assert_eq!(GhostRule.name(), "ghost");
    }

    #[test]
    fn order_covers_chain() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 1, &[a]);
        let v = m.read();
        for rule in [&LongestChainRule as &dyn OrderingRule, &GhostRule] {
            let lin = rule.order(&v);
            assert_eq!(lin.order, vec![GENESIS, a, b], "rule {}", rule.name());
        }
    }

    #[test]
    fn rules_are_object_safe() {
        let rules: Vec<Box<dyn OrderingRule>> =
            vec![Box::new(LongestChainRule), Box::new(GhostRule)];
        let m = AppendMemory::new(1);
        let v = m.read();
        for r in &rules {
            assert_eq!(r.chain_len(&v), 1);
        }
    }
}
