//! DAG linearization with respect to a selected chain.
//!
//! Algorithm 6, line 9: "Order the values of the DAG with respect to the
//! longest chain." Following the inclusive-blockchain construction, each
//! chain block defines an *epoch*: the messages in its past cone that no
//! earlier chain block covered. Epochs are emitted chain-order; inside an
//! epoch, messages are emitted in a topological order with deterministic
//! content-derived tie-breaking by `(author, seq)` — nodes may not use the
//! memory's arrival order, which the model explicitly withholds from them.

use crate::dag::DagIndex;
use crate::ids::MsgId;
use crate::message::Message;
use crate::view::MemoryView;
use std::collections::BinaryHeap;

/// The result of linearizing a DAG along a chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Linearization {
    /// All covered messages, in decision order (genesis included, first).
    pub order: Vec<MsgId>,
    /// Messages of the view not covered by the chain's past cone (appeared
    /// after / besides the chain and unreferenced by it).
    pub uncovered: Vec<MsgId>,
}

impl Linearization {
    /// The first `k` *value-carrying* entries of the order — the prefix the
    /// sign-of-sum decisions of Section 5 operate on. Genesis and other
    /// unit appends are skipped (they carry no input value).
    pub fn first_k_values(&self, view: &MemoryView, k: usize) -> Vec<MsgId> {
        self.order
            .iter()
            .copied()
            .filter(|&id| {
                view.get(id)
                    .map(|m| m.value.as_sign().is_some())
                    .unwrap_or(false)
            })
            .take(k)
            .collect()
    }
}

/// Content-derived sort key: epochs order their members by `(author, seq)`,
/// never by the memory's private arrival order.
fn content_key(m: &Message) -> (u32, u64) {
    (m.author.map_or(0, |a| a.0), m.seq)
}

/// Linearizes `view` along `chain` (a root-first list of message ids, as
/// produced by [`longest_chain`](crate::chain::longest_chain) or
/// [`ghost_pivot`](crate::ghost::ghost_pivot)).
pub fn linearize(view: &MemoryView, chain: &[MsgId]) -> Linearization {
    let dag = DagIndex::new(view);
    linearize_with(&dag, chain)
}

/// [`linearize`] on an existing index — decision paths build the index once
/// and share it between chain selection and linearization. Epoch membership
/// and pending parent counts live in dense stamp arrays instead of per-epoch
/// hash maps.
pub fn linearize_with(dag: &DagIndex, chain: &[MsgId]) -> Linearization {
    use std::cmp::Reverse;
    let n = dag.len();
    let mut emitted = vec![false; n];
    let mut order: Vec<MsgId> = Vec::with_capacity(n);
    // `stamp[p] == cur` marks p as a member of the epoch currently being
    // emitted; `pending[p]` is only meaningful under a matching stamp.
    let mut stamp: Vec<u32> = vec![0; n];
    let mut pending: Vec<u32> = vec![0; n];
    let mut cur: u32 = 0;
    let mut epoch: Vec<usize> = Vec::new();
    let mut ready: BinaryHeap<Reverse<((u32, u64), usize)>> = BinaryHeap::new();

    for &block in chain {
        let Some(bpos) = dag.position(block) else {
            continue;
        };
        if emitted[bpos] {
            continue;
        }
        // The epoch: past cone of the block, minus what earlier epochs took,
        // plus the block itself. Earlier epochs each emitted a full closed
        // cone, so the emitted set is downward-closed and a traversal from
        // the block that stops at emitted nodes reaches exactly the
        // non-emitted ancestors — every message is walked once across all
        // epochs, not once per covering chain block.
        cur += 1;
        epoch.clear();
        stamp[bpos] = cur;
        epoch.push(bpos);
        let mut i = 0; // `epoch` doubles as the traversal worklist
        while i < epoch.len() {
            let p = epoch[i];
            i += 1;
            for &q in dag.parents_of(p) {
                let q = q as usize;
                if !emitted[q] && stamp[q] != cur {
                    stamp[q] = cur;
                    epoch.push(q);
                }
            }
        }
        // Remaining in-epoch parent counts; members with none are ready.
        ready.clear();
        for &p in &epoch {
            let cnt = dag
                .parents_of(p)
                .iter()
                .filter(|&&q| stamp[q as usize] == cur)
                .count() as u32;
            pending[p] = cnt;
            if cnt == 0 {
                ready.push(Reverse((content_key(dag.message(p)), p)));
            }
        }
        // Emit in topological order, min-heap on the content key.
        while let Some(Reverse((_, p))) = ready.pop() {
            if emitted[p] {
                continue;
            }
            emitted[p] = true;
            order.push(dag.id_at(p));
            for &c in dag.children_of(p) {
                let c = c as usize;
                if stamp[c] == cur && pending[c] > 0 {
                    pending[c] -= 1;
                    if pending[c] == 0 {
                        ready.push(Reverse((content_key(dag.message(c)), c)));
                    }
                }
            }
        }
    }

    let uncovered: Vec<MsgId> = (0..n)
        .filter(|&p| !emitted[p])
        .map(|p| dag.id_at(p))
        .collect();
    Linearization { order, uncovered }
}

/// Pre-PR4 [`linearize`] kept verbatim as the benchmark baseline: builds
/// its own index, re-walks each chain block's full past cone, and keeps
/// per-epoch membership in hash maps. Semantically identical to
/// [`linearize`] (asserted by the engine-equivalence suite).
pub fn linearize_naive(view: &MemoryView, chain: &[MsgId]) -> Linearization {
    let dag = DagIndex::new(view);
    let n = dag.len();
    let mut emitted = vec![false; n];
    let mut order: Vec<MsgId> = Vec::with_capacity(n);

    for &block in chain {
        let Some(bpos) = dag.position(block) else {
            continue;
        };
        if emitted[bpos] {
            continue;
        }
        let mut epoch: Vec<usize> = dag
            .past_cone(bpos)
            .into_iter()
            .filter(|&p| !emitted[p])
            .collect();
        epoch.push(bpos);
        emit_topo_naive(&dag, &mut emitted, &epoch, &mut order);
    }

    let uncovered: Vec<MsgId> = (0..n)
        .filter(|&p| !emitted[p])
        .map(|p| dag.id_at(p))
        .collect();
    Linearization { order, uncovered }
}

/// Pre-PR4 epoch emission: hash-map membership and pending counts.
fn emit_topo_naive(dag: &DagIndex, emitted: &mut [bool], epoch: &[usize], order: &mut Vec<MsgId>) {
    use std::cmp::Reverse;
    let in_epoch: std::collections::HashSet<usize> = epoch.iter().copied().collect();
    let mut pending: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &p in epoch {
        let cnt = dag
            .parents_of(p)
            .iter()
            .filter(|&&q| in_epoch.contains(&(q as usize)) && !emitted[q as usize])
            .count();
        pending.insert(p, cnt);
    }
    let mut ready: BinaryHeap<Reverse<((u32, u64), usize)>> = pending
        .iter()
        .filter(|&(_, &c)| c == 0)
        .map(|(&p, _)| Reverse((content_key(dag.message(p)), p)))
        .collect();
    while let Some(Reverse((_, p))) = ready.pop() {
        if emitted[p] {
            continue;
        }
        emitted[p] = true;
        order.push(dag.id_at(p));
        for &c in dag.children_of(p) {
            let c = c as usize;
            if let Some(cnt) = pending.get_mut(&c) {
                if *cnt > 0 {
                    *cnt -= 1;
                    if *cnt == 0 {
                        ready.push(Reverse((content_key(dag.message(c)), c)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::longest_chain;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn append(m: &AppendMemory, a: u32, v: Value, parents: &[MsgId]) -> MsgId {
        m.append(MessageBuilder::new(NodeId(a), v).parents(parents.iter().copied()))
            .unwrap()
    }

    #[test]
    fn pure_chain_linearizes_in_chain_order() {
        let m = AppendMemory::new(1);
        let a = append(&m, 0, Value::plus(), &[GENESIS]);
        let b = append(&m, 0, Value::minus(), &[a]);
        let v = m.read();
        let lin = linearize(&v, &longest_chain(&v));
        assert_eq!(lin.order, vec![GENESIS, a, b]);
        assert!(lin.uncovered.is_empty());
    }

    #[test]
    fn epoch_pulls_in_referenced_fork() {
        // genesis -> a (by v0), genesis -> b (by v1), c references both.
        // Chain goes genesis→a→c (a is deeper? no — both depth 1; chain via
        // smaller id a). Epoch of c must pull in b.
        let m = AppendMemory::new(3);
        let a = append(&m, 0, Value::plus(), &[GENESIS]);
        let b = append(&m, 1, Value::minus(), &[GENESIS]);
        let c = append(&m, 2, Value::plus(), &[a, b]);
        let v = m.read();
        let lin = linearize(&v, &longest_chain(&v));
        assert_eq!(lin.order.len(), 4);
        assert!(lin.uncovered.is_empty());
        // b appears in the order even though it is off the selected chain.
        assert!(lin.order.contains(&b));
        // c comes after both its parents.
        let pos = |id: MsgId| lin.order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(c));
        let _ = pos(GENESIS);
    }

    #[test]
    fn unreferenced_fork_stays_uncovered() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, Value::plus(), &[GENESIS]);
        let b = append(&m, 0, Value::plus(), &[a]);
        let stray = append(&m, 1, Value::minus(), &[GENESIS]);
        let v = m.read();
        let lin = linearize(&v, &longest_chain(&v));
        assert_eq!(lin.order, vec![GENESIS, a, b]);
        assert_eq!(lin.uncovered, vec![stray]);
    }

    #[test]
    fn intra_epoch_order_is_author_seq() {
        // Two forks by v2 (seq 0) and v1 (seq 0); both referenced by a merge.
        // Within the epoch, v1 must precede v2 (author order), regardless of
        // arrival order.
        let m = AppendMemory::new(3);
        let x = append(&m, 2, Value::plus(), &[GENESIS]); // arrives first
        let y = append(&m, 1, Value::minus(), &[GENESIS]); // arrives second
        let z = append(&m, 0, Value::plus(), &[x, y]);
        let v = m.read();
        // Chain that jumps straight to z: x and y land in z's epoch.
        let lin = linearize(&v, &[GENESIS, z]);
        let pos = |id: MsgId| lin.order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(y) < pos(x),
            "author v1 orders before v2 inside an epoch"
        );
        assert!(pos(x) < pos(z));
    }

    #[test]
    fn first_k_values_skips_non_spin() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, Value::plus(), &[GENESIS]);
        let b = append(&m, 1, Value::Unit, &[a]); // carries no input
        let c = append(&m, 0, Value::minus(), &[b]);
        let v = m.read();
        let lin = linearize(&v, &longest_chain(&v));
        assert_eq!(lin.first_k_values(&v, 2), vec![a, c]);
        assert_eq!(lin.first_k_values(&v, 1), vec![a]);
        assert_eq!(lin.first_k_values(&v, 10), vec![a, c]);
    }

    #[test]
    fn chain_ids_missing_from_view_are_skipped() {
        let m = AppendMemory::new(1);
        let a = append(&m, 0, Value::plus(), &[GENESIS]);
        let v = m.read();
        let lin = linearize(&v, &[GENESIS, a, MsgId(99)]);
        assert_eq!(lin.order, vec![GENESIS, a]);
    }

    #[test]
    fn linearization_is_deterministic_across_identical_views() {
        let m = AppendMemory::new(4);
        let mut tips = vec![GENESIS];
        for i in 0..12u32 {
            let t = append(&m, i % 4, Value::plus(), &tips.clone());
            tips = vec![t];
            if i % 3 == 0 {
                tips.push(append(&m, (i + 1) % 4, Value::minus(), &[GENESIS]));
            }
        }
        let v = m.read();
        let c = longest_chain(&v);
        let l1 = linearize(&v, &c);
        let l2 = linearize(&v, &c);
        assert_eq!(l1, l2);
    }
}
