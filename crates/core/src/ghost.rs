//! GHOST-style heaviest-subtree chain selection.
//!
//! Algorithm 6's correctness "is based on one of the tie-breaking rules ...
//! such as the heaviest chain defined in the GHOST protocol \[22\] or simply
//! the longest chain \[14\]". This module implements the GHOST walk on the
//! reference DAG: starting from genesis, repeatedly step to the child whose
//! *future cone* (set of descendants, the DAG generalisation of the subtree
//! weight) is heaviest, breaking residual ties towards the smaller id.

use crate::dag::DagIndex;
use crate::ids::MsgId;
use crate::view::MemoryView;

/// Reusable buffers for the GHOST weight sweep: a flat descendant-bitset
/// pool (`n × ⌈n/64⌉` words for the exact path) and the weight vector.
/// Trial loops keep one per thread and hand it to
/// [`subtree_weights_in`] / [`ghost_pivot_in`], so repeated chain
/// selections allocate nothing once the pool has grown to the working
/// history size.
#[derive(Debug, Default)]
pub struct GhostScratch {
    /// Flat bitset pool: the cone of `pos` occupies
    /// `cones[pos * words..(pos + 1) * words]`.
    cones: Vec<u64>,
    /// Weight output of the last sweep.
    weight: Vec<u64>,
}

impl GhostScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> GhostScratch {
        GhostScratch::default()
    }

    /// The weights computed by the last [`subtree_weights_in`] call.
    pub fn weights(&self) -> &[u64] {
        &self.weight
    }
}

/// Weight of every message: 1 + the size of its future cone. In a tree this
/// is exactly the GHOST subtree size; in a DAG a message may be counted in
/// several branches, which matches the inclusive interpretation.
pub fn subtree_weights(dag: &DagIndex) -> Vec<u64> {
    let mut s = GhostScratch::new();
    subtree_weights_in(dag, &mut s);
    s.weight
}

/// [`subtree_weights`] into caller-owned scratch buffers (read the result
/// from [`GhostScratch::weights`]); no allocation once the pool is warm.
pub fn subtree_weights_in(dag: &DagIndex, s: &mut GhostScratch) {
    let n = dag.len();
    s.weight.clear();
    s.weight.resize(n, 0);
    // Reverse topological order: children have larger positions, so a
    // right-to-left sweep sees all children before their parents. The DAG
    // weight counts *distinct* descendants, so we compute cone sizes via a
    // bitset sweep for correctness at O(n^2 / 64).
    if n <= 4096 {
        // Exact distinct-descendant count with bitsets.
        let words = n.div_ceil(64);
        s.cones.clear();
        s.cones.resize(n * words, 0);
        let cones = &mut s.cones;
        for pos in (0..n).rev() {
            // Mark self.
            cones[pos * words + pos / 64] |= 1u64 << (pos % 64);
            for &c in dag.children_of(pos) {
                // pos < c, so the destination range sits strictly left of
                // the source range in the flat pool.
                let (left, right) = cones.split_at_mut(c as usize * words);
                let dst = &mut left[pos * words..(pos + 1) * words];
                let src = &right[..words];
                for (d, w) in dst.iter_mut().zip(src.iter()) {
                    *d |= *w;
                }
            }
            s.weight[pos] = cones[pos * words..(pos + 1) * words]
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum();
        }
    } else {
        // Large DAGs: fall back to the tree approximation (sum of child
        // weights), which over-counts diamond merges but preserves the
        // heaviest-branch comparisons the walk needs.
        for pos in (0..n).rev() {
            let mut w = 1u64;
            for &c in dag.children_of(pos) {
                w += s.weight[c as usize];
            }
            s.weight[pos] = w;
        }
    }
}

/// The GHOST pivot chain: the heaviest-subtree walk from genesis, returned
/// root-first as positions into the index.
pub fn ghost_pivot_positions(dag: &DagIndex) -> Vec<usize> {
    let mut s = GhostScratch::new();
    ghost_pivot_positions_in(dag, &mut s)
}

/// [`ghost_pivot_positions`] through caller-owned scratch buffers.
pub fn ghost_pivot_positions_in(dag: &DagIndex, s: &mut GhostScratch) -> Vec<usize> {
    if dag.is_empty() {
        return Vec::new();
    }
    subtree_weights_in(dag, s);
    let weight = &s.weight;
    // Start at the root with the heaviest cone (genesis in full views).
    let mut cur = dag
        .roots()
        .into_iter()
        .max_by_key(|&r| (weight[r], std::cmp::Reverse(r)))
        .expect("non-empty DAG has a root");
    let mut chain = vec![cur];
    loop {
        let kids = dag.children_of(cur);
        if kids.is_empty() {
            break;
        }
        let mut best = kids[0] as usize;
        for &k in &kids[1..] {
            let k = k as usize;
            if weight[k] > weight[best] || (weight[k] == weight[best] && k < best) {
                best = k;
            }
        }
        chain.push(best);
        cur = best;
    }
    chain
}

/// The GHOST pivot chain of a view as message ids, root-first.
pub fn ghost_pivot(view: &MemoryView) -> Vec<MsgId> {
    let dag = DagIndex::new(view);
    ghost_pivot_with(&dag)
}

/// [`ghost_pivot`] on an existing index — decision paths that also
/// linearize build the index once and share it.
pub fn ghost_pivot_with(dag: &DagIndex) -> Vec<MsgId> {
    ghost_pivot_positions(dag)
        .into_iter()
        .map(|p| dag.id_at(p))
        .collect()
}

/// [`ghost_pivot_with`] through caller-owned scratch buffers.
pub fn ghost_pivot_in(dag: &DagIndex, s: &mut GhostScratch) -> Vec<MsgId> {
    ghost_pivot_positions_in(dag, s)
        .into_iter()
        .map(|p| dag.id_at(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn append(m: &AppendMemory, a: u32, parents: &[MsgId]) -> MsgId {
        m.append(MessageBuilder::new(NodeId(a), Value::plus()).parents(parents.iter().copied()))
            .unwrap()
    }

    #[test]
    fn ghost_follows_heavier_subtree_not_longer_chain() {
        // Classic GHOST scenario: branch A is longer, branch B is heavier.
        //            /- a1 - a2 - a3          (3 blocks, chain)
        //   genesis -
        //            \- b1 - b2               (bushy: b1 has kids b2,b3,b4)
        //                 \- b3
        //                 \- b4
        let m = AppendMemory::new(8);
        let a1 = append(&m, 0, &[GENESIS]);
        let a2 = append(&m, 0, &[a1]);
        let a3 = append(&m, 0, &[a2]);
        let b1 = append(&m, 1, &[GENESIS]);
        let b2 = append(&m, 2, &[b1]);
        let _b3 = append(&m, 3, &[b1]);
        let _b4 = append(&m, 4, &[b1]);
        let pivot = ghost_pivot(&m.read());
        // Branch B has 4 blocks vs branch A's 3 → pivot goes through b1.
        assert_eq!(pivot[0], GENESIS);
        assert_eq!(pivot[1], b1);
        assert_eq!(pivot[2], b2); // deepest available in B
        let _ = a3;
    }

    #[test]
    fn longest_chain_differs_from_ghost_here() {
        let m = AppendMemory::new(8);
        let a1 = append(&m, 0, &[GENESIS]);
        let a2 = append(&m, 0, &[a1]);
        let a3 = append(&m, 0, &[a2]);
        let b1 = append(&m, 1, &[GENESIS]);
        for i in 2..5 {
            append(&m, i, &[b1]);
        }
        let lc = crate::chain::longest_chain(&m.read());
        assert_eq!(lc.last(), Some(&a3), "longest chain prefers branch A");
        let gp = ghost_pivot(&m.read());
        assert_eq!(gp[1], b1, "GHOST prefers branch B");
    }

    #[test]
    fn diamond_counts_descendants_once() {
        // genesis -> x, genesis -> y, z references both x and y.
        // Exact cone weight of genesis = 4 (self,x,y,z), of x = 2, y = 2.
        let m = AppendMemory::new(4);
        let x = append(&m, 0, &[GENESIS]);
        let y = append(&m, 1, &[GENESIS]);
        let z = append(&m, 2, &[x, y]);
        let dag = crate::dag::DagIndex::new(&m.read());
        let w = subtree_weights(&dag);
        assert_eq!(w[0], 4);
        assert_eq!(w[dag.position(x).unwrap()], 2);
        assert_eq!(w[dag.position(y).unwrap()], 2);
        assert_eq!(w[dag.position(z).unwrap()], 1);
    }

    #[test]
    fn tie_breaks_to_smaller_id() {
        let m = AppendMemory::new(2);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 1, &[GENESIS]);
        let pivot = ghost_pivot(&m.read());
        assert_eq!(pivot, vec![GENESIS, a]);
        let _ = b;
    }

    #[test]
    fn genesis_only() {
        let m = AppendMemory::new(1);
        assert_eq!(ghost_pivot(&m.read()), vec![GENESIS]);
    }

    #[test]
    fn chain_equals_ghost_on_pure_chain() {
        let m = AppendMemory::new(1);
        let mut prev = GENESIS;
        for _ in 0..8 {
            prev = append(&m, 0, &[prev]);
        }
        let v = m.read();
        assert_eq!(ghost_pivot(&v), crate::chain::longest_chain(&v));
    }
}
