//! The reference DAG over a memory view.
//!
//! "Listing preceding appends can be viewed as drawing an arrow from the
//! new append to all previous ones" (Section 5.3). [`DagIndex`] materialises
//! that graph for one snapshot: parent/child adjacency, depths, tips, and
//! cone traversals. Every chain-selection and ordering rule is built on it.
//!
//! Indices are positions in the view's id-sorted slice. Because the memory
//! assigns ids in arrival order and parents always precede children, slice
//! order is already a topological order — no explicit sort is ever needed.
//!
//! Layout: adjacency is stored CSR-style (one flat `u32` edge array plus an
//! offsets array per direction) instead of a `Vec<Vec<u32>>` per node — one
//! allocation per direction regardless of node count, cache-linear sweeps.
//! Cone traversals mark nodes in an epoch-stamped scratch buffer owned by
//! the index, so repeated `past_cone`/`future_cone`/`is_ancestor` calls on
//! the same index allocate nothing (resetting the marks is a single epoch
//! increment, not an O(n) clear).

use crate::ids::MsgId;
use crate::message::Message;
use crate::view::MemoryView;
use std::cell::RefCell;
use std::sync::Arc;

/// Epoch-stamped visit marks shared by the cone traversals. A node is
/// "marked" when its stamp equals the current epoch; bumping the epoch
/// invalidates every mark at once.
struct Scratch {
    mark: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl Scratch {
    /// Starts a fresh traversal: all marks invalid, stack empty.
    fn begin(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
        self.epoch
    }
}

/// Adjacency and depth index of a view's reference DAG.
///
/// ```
/// use am_core::{AppendMemory, DagIndex, MessageBuilder, NodeId, Value, GENESIS};
/// let mem = AppendMemory::new(2);
/// let a = mem.append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS)).unwrap();
/// let _b = mem.append(MessageBuilder::new(NodeId(1), Value::minus()).parent(a)).unwrap();
/// let dag = DagIndex::new(&mem.read());
/// assert_eq!(dag.max_depth(), 2);
/// assert_eq!(dag.tips().len(), 1);
/// ```
pub struct DagIndex {
    view: MemoryView,
    /// Parent positions of `pos` live at `par[par_off[pos]..par_off[pos+1]]`
    /// (references outside the view dropped).
    par_off: Vec<u32>,
    par: Vec<u32>,
    /// Child positions, same layout.
    child_off: Vec<u32>,
    child: Vec<u32>,
    /// Longest-path depth from a root (genesis has depth 0).
    depth: Vec<u32>,
    scratch: RefCell<Scratch>,
}

impl DagIndex {
    /// Builds the index for `view`. O(V + E), three flat allocations.
    pub fn new(view: &MemoryView) -> DagIndex {
        let n = view.len();
        let mut par_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut par: Vec<u32> = Vec::new();
        let mut child_count: Vec<u32> = vec![0; n];
        let mut depth: Vec<u32> = vec![0; n];
        par_off.push(0);
        // Pass 1: resolve parent edges in position order (so `par` is
        // naturally grouped by child) and accumulate depths + child counts.
        for (pos, msg) in view.iter().enumerate() {
            for &p in &msg.parents {
                if let Some(pp) = Self::position_of(view, p) {
                    par.push(pp as u32);
                    child_count[pp] += 1;
                    depth[pos] = depth[pos].max(depth[pp] + 1);
                }
            }
            par_off.push(par.len() as u32);
        }
        // Pass 2: scatter child edges through running cursors. Iterating
        // edges in ascending child position keeps each child list sorted.
        let mut child_off: Vec<u32> = Vec::with_capacity(n + 1);
        child_off.push(0);
        for c in &child_count {
            child_off.push(child_off.last().unwrap() + c);
        }
        let mut cursor: Vec<u32> = child_off[..n].to_vec();
        let mut child: Vec<u32> = vec![0; par.len()];
        for pos in 0..n {
            let (s, e) = (par_off[pos] as usize, par_off[pos + 1] as usize);
            for &pp in &par[s..e] {
                child[cursor[pp as usize] as usize] = pos as u32;
                cursor[pp as usize] += 1;
            }
        }
        DagIndex {
            view: view.clone(),
            par_off,
            par,
            child_off,
            child,
            depth,
            scratch: RefCell::new(Scratch {
                mark: vec![0; n],
                epoch: 0,
                stack: Vec::new(),
            }),
        }
    }

    fn position_of(view: &MemoryView, id: MsgId) -> Option<usize> {
        let idx = id.index();
        let slice = view.as_slice();
        if let Some(m) = slice.get(idx) {
            if m.id == id {
                return Some(idx);
            }
        }
        slice.binary_search_by_key(&id, |m| m.id).ok()
    }

    /// The view this index was built from.
    #[inline]
    pub fn view(&self) -> &MemoryView {
        &self.view
    }

    /// Number of messages indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the DAG is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Position of a message id within this index.
    pub fn position(&self, id: MsgId) -> Option<usize> {
        Self::position_of(&self.view, id)
    }

    /// The message at a position.
    #[inline]
    pub fn message(&self, pos: usize) -> &Arc<Message> {
        &self.view.as_slice()[pos]
    }

    /// The id at a position.
    #[inline]
    pub fn id_at(&self, pos: usize) -> MsgId {
        self.view.as_slice()[pos].id
    }

    /// Parent positions of `pos`.
    #[inline]
    pub fn parents_of(&self, pos: usize) -> &[u32] {
        &self.par[self.par_off[pos] as usize..self.par_off[pos + 1] as usize]
    }

    /// Child positions of `pos`.
    #[inline]
    pub fn children_of(&self, pos: usize) -> &[u32] {
        &self.child[self.child_off[pos] as usize..self.child_off[pos + 1] as usize]
    }

    /// Longest-path depth of `pos` (roots have depth 0).
    #[inline]
    pub fn depth_of(&self, pos: usize) -> u32 {
        self.depth[pos]
    }

    /// Positions with no parents *inside the view* (genesis, plus orphans
    /// in sparse views).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents_of(i).is_empty())
            .collect()
    }

    /// Positions with no children: the tips — "the last states of M, which
    /// do not have child nodes" (Algorithm 6, line 5).
    pub fn tips(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.children_of(i).is_empty())
            .collect()
    }

    /// Tip message ids, in id order.
    pub fn tip_ids(&self) -> Vec<MsgId> {
        self.tips().into_iter().map(|p| self.id_at(p)).collect()
    }

    /// Maximum depth over all messages (the longest-chain length measured
    /// in edges from genesis).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The past cone of `pos`: every ancestor position, `pos` excluded.
    /// Returned in ascending (topological) order. O(cone) plus the sort;
    /// allocates only the output vector.
    pub fn past_cone(&self, pos: usize) -> Vec<usize> {
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin();
        let mut out: Vec<usize> = Vec::new();
        let mut stack = std::mem::take(&mut s.stack);
        stack.extend_from_slice(self.parents_of(pos));
        while let Some(p) = stack.pop() {
            let p = p as usize;
            if s.mark[p] != epoch {
                s.mark[p] = epoch;
                out.push(p);
                stack.extend_from_slice(self.parents_of(p));
            }
        }
        s.stack = stack;
        out.sort_unstable();
        out
    }

    /// The future cone of `pos`: every descendant position, `pos` excluded.
    /// Returned in ascending (topological) order.
    pub fn future_cone(&self, pos: usize) -> Vec<usize> {
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin();
        let mut out: Vec<usize> = Vec::new();
        let mut stack = std::mem::take(&mut s.stack);
        stack.extend_from_slice(self.children_of(pos));
        while let Some(c) = stack.pop() {
            let c = c as usize;
            if s.mark[c] != epoch {
                s.mark[c] = epoch;
                out.push(c);
                stack.extend_from_slice(self.children_of(c));
            }
        }
        s.stack = stack;
        out.sort_unstable();
        out
    }

    /// Whether `anc` is an ancestor of `desc` (strict; a message is not its
    /// own ancestor). O(E) worst case with early exit using the id order.
    pub fn is_ancestor(&self, anc: usize, desc: usize) -> bool {
        if anc >= desc {
            return false; // parents always precede children in the slice
        }
        let mut s = self.scratch.borrow_mut();
        let epoch = s.begin();
        let mut stack = std::mem::take(&mut s.stack);
        stack.extend_from_slice(self.parents_of(desc));
        let mut found = false;
        while let Some(p) = stack.pop() {
            let p = p as usize;
            if p == anc {
                found = true;
                break;
            }
            // Ancestors of p all have positions < p; prune below target.
            if p > anc && s.mark[p] != epoch {
                s.mark[p] = epoch;
                stack.extend_from_slice(self.parents_of(p));
            }
        }
        stack.clear();
        s.stack = stack;
        found
    }

    /// Number of distinct longest chains ending at maximal depth — the
    /// fork multiplicity the tie-breaking rules have to resolve.
    pub fn longest_chain_tip_count(&self) -> usize {
        let d = self.max_depth();
        self.depth.iter().filter(|&&x| x == d).count()
    }
}

impl std::fmt::Debug for DagIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DagIndex(len={}, max_depth={}, tips={})",
            self.len(),
            self.max_depth(),
            self.tips().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    /// genesis -> a -> b
    ///         \-> c (fork at genesis)
    /// d references both b and c (DAG merge).
    fn diamond() -> AppendMemory {
        let m = AppendMemory::new(4);
        let a = m
            .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS))
            .unwrap();
        let b = m
            .append(MessageBuilder::new(NodeId(1), Value::plus()).parent(a))
            .unwrap();
        let c = m
            .append(MessageBuilder::new(NodeId(2), Value::minus()).parent(GENESIS))
            .unwrap();
        let _d = m
            .append(MessageBuilder::new(NodeId(3), Value::plus()).parents([b, c]))
            .unwrap();
        m
    }

    #[test]
    fn adjacency_and_depth() {
        let v = diamond().read();
        let g = DagIndex::new(&v);
        assert_eq!(g.len(), 5);
        assert_eq!(g.depth_of(0), 0); // genesis
        assert_eq!(g.depth_of(1), 1); // a
        assert_eq!(g.depth_of(2), 2); // b
        assert_eq!(g.depth_of(3), 1); // c
        assert_eq!(g.depth_of(4), 3); // d (via b)
        assert_eq!(g.max_depth(), 3);
        assert_eq!(g.parents_of(4), &[2, 3]);
        assert_eq!(g.children_of(0), &[1, 3]);
    }

    #[test]
    fn roots_and_tips() {
        let v = diamond().read();
        let g = DagIndex::new(&v);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.tips(), vec![4]);
        assert_eq!(g.tip_ids(), vec![MsgId(4)]);
    }

    #[test]
    fn tips_before_merge() {
        let m = AppendMemory::new(3);
        let a = m
            .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS))
            .unwrap();
        let _b = m
            .append(MessageBuilder::new(NodeId(1), Value::plus()).parent(GENESIS))
            .unwrap();
        let g = DagIndex::new(&m.read());
        assert_eq!(g.tips().len(), 2);
        assert_eq!(g.longest_chain_tip_count(), 2);
        let _ = a;
    }

    #[test]
    fn cones() {
        let v = diamond().read();
        let g = DagIndex::new(&v);
        assert_eq!(g.past_cone(4), vec![0, 1, 2, 3]);
        assert_eq!(g.past_cone(2), vec![0, 1]);
        assert_eq!(g.past_cone(0), Vec::<usize>::new());
        assert_eq!(g.future_cone(0), vec![1, 2, 3, 4]);
        assert_eq!(g.future_cone(3), vec![4]);
        assert_eq!(g.future_cone(4), Vec::<usize>::new());
    }

    #[test]
    fn repeated_cone_queries_reuse_scratch() {
        // The epoch-stamp reset must behave exactly like fresh marks.
        let v = diamond().read();
        let g = DagIndex::new(&v);
        for _ in 0..100 {
            assert_eq!(g.past_cone(4), vec![0, 1, 2, 3]);
            assert_eq!(g.future_cone(0), vec![1, 2, 3, 4]);
            assert!(g.is_ancestor(0, 4));
            assert!(!g.is_ancestor(1, 3));
        }
    }

    #[test]
    fn ancestry() {
        let v = diamond().read();
        let g = DagIndex::new(&v);
        assert!(g.is_ancestor(0, 4));
        assert!(g.is_ancestor(1, 2));
        assert!(g.is_ancestor(3, 4));
        assert!(!g.is_ancestor(1, 3)); // a is not an ancestor of c
        assert!(!g.is_ancestor(2, 2)); // strict
        assert!(!g.is_ancestor(4, 0)); // direction matters
    }

    #[test]
    fn sparse_view_drops_dangling_refs() {
        let m = diamond();
        let v = m.read();
        // Remove `a` (m1): b's parent edge disappears; b becomes a root of
        // the sparse view.
        let sparse = MemoryView::from_messages(
            v.iter()
                .filter(|m| m.id != MsgId(1))
                .cloned()
                .collect::<Vec<_>>(),
        );
        let g = DagIndex::new(&sparse);
        assert_eq!(g.len(), 4);
        let b_pos = g.position(MsgId(2)).unwrap();
        assert!(g.parents_of(b_pos).is_empty());
        assert_eq!(g.depth_of(b_pos), 0);
        assert_eq!(g.roots().len(), 2); // genesis and b
    }

    #[test]
    fn genesis_only() {
        let m = AppendMemory::new(1);
        let g = DagIndex::new(&m.read());
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        assert_eq!(g.max_depth(), 0);
        assert_eq!(g.tips(), vec![0]);
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn chain_of_ten_depths() {
        let m = AppendMemory::new(1);
        let mut prev = GENESIS;
        for _ in 0..10 {
            prev = m
                .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(prev))
                .unwrap();
        }
        let g = DagIndex::new(&m.read());
        assert_eq!(g.max_depth(), 10);
        assert_eq!(g.tips().len(), 1);
        assert_eq!(g.longest_chain_tip_count(), 1);
        for pos in 0..g.len() {
            assert_eq!(g.depth_of(pos) as usize, pos);
        }
    }
}
