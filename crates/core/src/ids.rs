//! Identifier and time newtypes shared across the workspace.
//!
//! The paper's model has `n` nodes `v_1 .. v_n`, messages appended to the
//! memory, synchronous rounds, and (in Section 5) continuous simulated time
//! driven by a Poisson process. Each of these gets a dedicated newtype so
//! that the type system keeps node indices, message identifiers, round
//! counters, and timestamps from being mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (a "processor" in the paper), `v_i`.
///
/// Node ids are dense indices `0..n`, which lets per-node state live in
/// plain `Vec`s instead of hash maps on the hot paths.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index, usable directly for `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a message in the append memory.
///
/// Message ids are assigned by the memory in arrival order, starting at 0
/// for the genesis message (the "dummy append" of Section 5.3). Arrival
/// order is known to the *memory* but is only exposed to protocols that the
/// model says may see it (the absolute-timestamp baseline of Section 5.1);
/// the chain and DAG protocols must reconstruct order from references.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(pub u64);

/// The distinguished genesis message present in every memory: the "dummy
/// append, e.g. at the empty state of the memory" from Section 5.3.
pub const GENESIS: MsgId = MsgId(0);

impl MsgId {
    /// The id as a dense index into the arrival log.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the genesis message.
    #[inline]
    pub fn is_genesis(self) -> bool {
        self == GENESIS
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_genesis() {
            write!(f, "m⊥")
        } else {
            write!(f, "m{}", self.0)
        }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A synchronous round counter (Section 3).
///
/// Rounds are 1-based in the paper (`r = 1, ..., t+1`); `Round(0)` denotes
/// the initial configuration before any communication step.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Round(pub u32);

impl Round {
    /// The next round.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Simulated continuous time (Section 5's Poisson-access model).
///
/// Wraps an `f64` with a *total* order (`total_cmp`), so it can key the
/// discrete-event queue. Construction rejects NaN.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Time(f64);

impl Time {
    /// Time zero, the start of every simulation.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    /// Panics if `t` is NaN (negative and infinite values are allowed so
    /// that "never" sentinels can be expressed as `Time::NEVER`).
    #[inline]
    pub fn new(t: f64) -> Time {
        assert!(!t.is_nan(), "Time cannot be NaN");
        Time(t)
    }

    /// A sentinel strictly after every finite time.
    pub const NEVER: Time = Time(f64::INFINITY);

    /// The raw value in simulated seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// `self + dt`, for a non-NaN `dt`.
    #[inline]
    pub fn after(self, dt: f64) -> Time {
        Time::new(self.0 + dt)
    }

    /// Whether this time is finite (i.e. not the `NEVER` sentinel).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId(7);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "v7");
        assert_eq!(format!("{v:?}"), "v7");
    }

    #[test]
    fn genesis_is_id_zero() {
        assert!(GENESIS.is_genesis());
        assert!(!MsgId(1).is_genesis());
        assert_eq!(GENESIS.index(), 0);
        assert_eq!(format!("{GENESIS:?}"), "m⊥");
        assert_eq!(format!("{:?}", MsgId(3)), "m3");
    }

    #[test]
    fn msg_ids_order_by_arrival() {
        let a = MsgId(1);
        let b = MsgId(2);
        assert!(a < b);
        assert_eq!(b.index(), 2);
    }

    #[test]
    fn round_next_increments() {
        assert_eq!(Round(0).next(), Round(1));
        assert_eq!(Round(5).next().next(), Round(7));
        assert_eq!(format!("{:?}", Round(3)), "r3");
    }

    #[test]
    fn time_total_order() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert!(a < b);
        assert!(Time::ZERO < a);
        assert!(b < Time::NEVER);
        assert!(!Time::NEVER.is_finite());
        assert!(a.is_finite());
    }

    #[test]
    fn time_after_accumulates() {
        let t = Time::ZERO.after(0.5).after(0.25);
        assert!((t.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn time_rejects_nan() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn time_negative_allowed_and_ordered() {
        let neg = Time::new(-1.0);
        assert!(neg < Time::ZERO);
    }
}
