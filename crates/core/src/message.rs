//! Messages appended to the memory.
//!
//! A message `msg` from node `v_i` "contains some value from this node and a
//! reference to a previous state of the memory that is defined by the
//! underlying protocol" (Section 1.1). We realise the reference-to-a-state
//! as a list of parent message ids: referencing a state means referencing
//! the tips of that state, which is exactly how both the chain protocol
//! (one parent) and the DAG protocol (all tips as parents) use it.

use crate::ids::{MsgId, NodeId, Round, Time};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An immutable message stored in the append memory.
///
/// Messages are created through [`MessageBuilder`] and sealed by
/// [`AppendMemory::append`](crate::AppendMemory::append), which assigns the
/// [`MsgId`], the per-author sequence number, and the arrival timestamp.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Memory-assigned identifier (arrival order).
    pub id: MsgId,
    /// The appending node, or `None` for the genesis dummy append.
    pub author: Option<NodeId>,
    /// Position in the author's own append sequence (0-based). The memory
    /// totally orders each author's appends; this is that order.
    pub seq: u64,
    /// The value carried by the message.
    pub value: Value,
    /// References to previous messages (the protocol-defined "reference to
    /// a previous state of the memory"). Empty only for genesis.
    pub parents: Vec<MsgId>,
    /// Arrival time at the memory. For round-based protocols this encodes
    /// the round boundary; for the Poisson model it is the token time.
    pub arrival: Time,
    /// The synchronous round in which the message was appended, when the
    /// execution model is round-based (Section 3).
    pub round: Option<Round>,
}

impl Message {
    /// Whether this is the genesis dummy append.
    #[inline]
    pub fn is_genesis(&self) -> bool {
        self.id.is_genesis()
    }

    /// The author, panicking on genesis. Use in protocol code that has
    /// already filtered genesis out.
    #[inline]
    pub fn author_unchecked(&self) -> NodeId {
        self.author.expect("genesis has no author")
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.id)?;
        if let Some(a) = self.author {
            write!(f, "[{a:?}#{}]", self.seq)?;
        } else {
            write!(f, "[⊥]")?;
        }
        write!(f, "={:?}→{:?}", self.value, self.parents)
    }
}

/// Builder for a message to be appended.
///
/// The builder captures everything the *node* decides (value, parents,
/// round); the memory fills in what the *authority* decides (id, sequence
/// number, arrival time).
#[derive(Clone, Debug)]
pub struct MessageBuilder {
    pub(crate) author: NodeId,
    pub(crate) value: Value,
    pub(crate) parents: Vec<MsgId>,
    pub(crate) round: Option<Round>,
}

impl MessageBuilder {
    /// Starts a message from `author` carrying `value`, with no parents yet.
    pub fn new(author: NodeId, value: Value) -> MessageBuilder {
        MessageBuilder {
            author,
            value,
            parents: Vec::new(),
            round: None,
        }
    }

    /// Adds a single parent reference.
    #[must_use]
    pub fn parent(mut self, p: MsgId) -> MessageBuilder {
        self.parents.push(p);
        self
    }

    /// Replaces the parent set with `parents` (deduplicated, order kept).
    #[must_use]
    pub fn parents<I: IntoIterator<Item = MsgId>>(mut self, parents: I) -> MessageBuilder {
        self.parents.clear();
        for p in parents {
            if !self.parents.contains(&p) {
                self.parents.push(p);
            }
        }
        self
    }

    /// Tags the message with a synchronous round.
    #[must_use]
    pub fn round(mut self, r: Round) -> MessageBuilder {
        self.round = Some(r);
        self
    }

    /// The author this builder appends as.
    #[inline]
    pub fn author_id(&self) -> NodeId {
        self.author
    }

    /// The parents currently set on the builder.
    #[inline]
    pub fn parent_ids(&self) -> &[MsgId] {
        &self.parents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GENESIS;

    #[test]
    fn builder_accumulates_parents() {
        let b = MessageBuilder::new(NodeId(1), Value::plus())
            .parent(GENESIS)
            .parent(MsgId(3));
        assert_eq!(b.parent_ids(), &[GENESIS, MsgId(3)]);
        assert_eq!(b.author_id(), NodeId(1));
    }

    #[test]
    fn builder_parents_dedup() {
        let b = MessageBuilder::new(NodeId(0), Value::Unit).parents([
            MsgId(2),
            MsgId(2),
            MsgId(5),
            MsgId(2),
        ]);
        assert_eq!(b.parent_ids(), &[MsgId(2), MsgId(5)]);
    }

    #[test]
    fn builder_parents_replaces() {
        let b = MessageBuilder::new(NodeId(0), Value::Unit)
            .parent(MsgId(1))
            .parents([MsgId(9)]);
        assert_eq!(b.parent_ids(), &[MsgId(9)]);
    }

    #[test]
    fn message_debug_includes_author_and_refs() {
        let m = Message {
            id: MsgId(4),
            author: Some(NodeId(2)),
            seq: 1,
            value: Value::minus(),
            parents: vec![GENESIS],
            arrival: Time::ZERO,
            round: None,
        };
        let s = format!("{m:?}");
        assert!(s.contains("m4"));
        assert!(s.contains("v2"));
        assert!(!m.is_genesis());
        assert_eq!(m.author_unchecked(), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "genesis")]
    fn author_unchecked_panics_on_genesis() {
        let g = Message {
            id: GENESIS,
            author: None,
            seq: 0,
            value: Value::Unit,
            parents: vec![],
            arrival: Time::ZERO,
            round: None,
        };
        assert!(g.is_genesis());
        let _ = g.author_unchecked();
    }
}
