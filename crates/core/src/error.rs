//! Error types for the append memory.

use crate::ids::{MsgId, NodeId};
use std::fmt;

/// Why an append was rejected by the memory.
///
/// The append memory enforces exactly the construction rules of the model:
/// references must point to existing messages, and each author's appends are
/// totally ordered (a node cannot contradict "the order of messages of v in
/// the current append memory state", Section 2.1 rule (c)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppendError {
    /// A parent reference points to a message not (yet) in the memory.
    UnknownParent {
        /// The dangling reference.
        parent: MsgId,
    },
    /// The author index is out of range for this memory.
    UnknownAuthor {
        /// The offending author.
        author: NodeId,
        /// Number of nodes the memory was created with.
        n: usize,
    },
    /// A message references itself or a later message (impossible by
    /// construction through the public API, checked defensively).
    ForwardReference {
        /// The offending reference.
        parent: MsgId,
    },
    /// The memory was sealed (no further appends accepted); used by
    /// round-based runners to enforce decision points.
    Sealed,
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::UnknownParent { parent } => {
                write!(f, "append references unknown message {parent:?}")
            }
            AppendError::UnknownAuthor { author, n } => {
                write!(
                    f,
                    "append from unknown author {author:?} (memory has n={n})"
                )
            }
            AppendError::ForwardReference { parent } => {
                write!(f, "append references a non-prior message {parent:?}")
            }
            AppendError::Sealed => write!(f, "memory is sealed"),
        }
    }
}

impl std::error::Error for AppendError {}

/// Crate-wide error type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// An append was rejected.
    Append(AppendError),
    /// A view lookup addressed a message outside the view.
    OutOfView {
        /// The message that the view does not contain.
        id: MsgId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Append(e) => write!(f, "{e}"),
            CoreError::OutOfView { id } => write!(f, "message {id:?} is outside the view"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<AppendError> for CoreError {
    fn from(e: AppendError) -> CoreError {
        CoreError::Append(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AppendError::UnknownParent { parent: MsgId(9) };
        assert!(e.to_string().contains("m9"));
        let e = AppendError::UnknownAuthor {
            author: NodeId(5),
            n: 3,
        };
        assert!(e.to_string().contains("v5"));
        assert!(e.to_string().contains("n=3"));
        assert!(AppendError::Sealed.to_string().contains("sealed"));
    }

    #[test]
    fn core_error_from_append() {
        let e: CoreError = AppendError::Sealed.into();
        assert_eq!(e, CoreError::Append(AppendError::Sealed));
        let o = CoreError::OutOfView { id: MsgId(2) };
        assert!(o.to_string().contains("m2"));
    }
}
