//! Immutable snapshot views of the append memory.
//!
//! A [`MemoryView`] is what a node obtains from `M.read()`: "a complete
//! view of the register" at the moment of the read. Because the memory is
//! append-only, a view is a prefix of the arrival log and can be shared by
//! `Arc` across every reader — snapshots are O(1) to hand out and never
//! change under later appends.

use crate::error::CoreError;
use crate::ids::{MsgId, NodeId, Round};
use crate::message::Message;
use crate::value::Sign;
use std::sync::Arc;

/// An immutable snapshot of the append memory.
#[derive(Clone)]
pub struct MemoryView {
    msgs: Arc<Vec<Arc<Message>>>,
}

impl MemoryView {
    /// Wraps a shared message prefix. Internal to the crate; produced by
    /// [`AppendMemory::read`](crate::AppendMemory::read) and friends.
    pub(crate) fn from_arc(msgs: Arc<Vec<Arc<Message>>>) -> MemoryView {
        MemoryView { msgs }
    }

    /// Builds a view directly from messages — for tests and for the
    /// message-passing simulation, whose local views are not prefixes of a
    /// central log. Messages are sorted by id; ids need not be dense.
    pub fn from_messages<I: IntoIterator<Item = Arc<Message>>>(msgs: I) -> MemoryView {
        let mut v: Vec<Arc<Message>> = msgs.into_iter().collect();
        v.sort_by_key(|m| m.id);
        v.dedup_by_key(|m| m.id);
        MemoryView { msgs: Arc::new(v) }
    }

    /// Number of messages in the view (genesis included when present).
    #[inline]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the view holds no messages at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Whether two views share the same underlying snapshot allocation.
    #[inline]
    pub fn ptr_eq(&self, other: &MemoryView) -> bool {
        Arc::ptr_eq(&self.msgs, &other.msgs)
    }

    /// Looks a message up by id. O(1) for dense prefix views, O(log n)
    /// otherwise.
    pub fn get(&self, id: MsgId) -> Option<&Arc<Message>> {
        let idx = id.index();
        // Fast path: dense prefix (ids equal positions).
        if let Some(m) = self.msgs.get(idx) {
            if m.id == id {
                return Some(m);
            }
        }
        // General path: binary search (messages are sorted by id).
        self.msgs
            .binary_search_by_key(&id, |m| m.id)
            .ok()
            .map(|i| &self.msgs[i])
    }

    /// Like [`get`](Self::get) but returns a typed error.
    pub fn require(&self, id: MsgId) -> Result<&Arc<Message>, CoreError> {
        self.get(id).ok_or(CoreError::OutOfView { id })
    }

    /// Whether the view contains `id`.
    #[inline]
    pub fn contains(&self, id: MsgId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates over messages in id (arrival) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Arc<Message>> {
        self.msgs.iter()
    }

    /// The messages slice, in id order.
    pub fn as_slice(&self) -> &[Arc<Message>] {
        &self.msgs
    }

    /// All messages by a given author, in that author's sequence order.
    pub fn by_author(&self, author: NodeId) -> Vec<&Arc<Message>> {
        let out: Vec<&Arc<Message>> = self
            .msgs
            .iter()
            .filter(|m| m.author == Some(author))
            .collect();
        // An author's seq increments with its id at append time, so any
        // id-ordered subsequence (views are sorted by id) is seq-ordered.
        debug_assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
        out
    }

    /// All messages tagged with round `r` (Section 3 round-based runs).
    pub fn in_round(&self, r: Round) -> Vec<&Arc<Message>> {
        self.msgs.iter().filter(|m| m.round == Some(r)).collect()
    }

    /// Count of non-genesis messages (the "writes in the memory" that
    /// Algorithms 4–6 gate their decision on).
    pub fn append_count(&self) -> usize {
        self.msgs.iter().filter(|m| !m.is_genesis()).count()
    }

    /// Sum of spin contributions of the messages with the given ids — the
    /// "sign of the sum" decisions of Section 5. Ids absent from the view
    /// contribute 0.
    pub fn spin_sum<I: IntoIterator<Item = MsgId>>(&self, ids: I) -> i64 {
        ids.into_iter()
            .filter_map(|id| self.get(id))
            .map(|m| m.value.spin_contribution())
            .sum()
    }

    /// Sign-of-sum decision over the given ids; `None` on a tie.
    pub fn decide_sign<I: IntoIterator<Item = MsgId>>(&self, ids: I) -> Option<Sign> {
        Sign::of_sum(self.spin_sum(ids))
    }

    /// Whether `self` is a prefix of `other` (views of the same memory are
    /// always prefix-related; used by consistency checks).
    pub fn is_prefix_of(&self, other: &MemoryView) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.msgs
            .iter()
            .zip(other.msgs.iter())
            .all(|(a, b)| a.id == b.id)
    }
}

impl std::fmt::Debug for MemoryView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemoryView(len={})", self.len())
    }
}

impl<'a> IntoIterator for &'a MemoryView {
    type Item = &'a Arc<Message>;
    type IntoIter = std::slice::Iter<'a, Arc<Message>>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn sample_memory() -> AppendMemory {
        let m = AppendMemory::new(3);
        let a = m
            .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS))
            .unwrap();
        let _b = m
            .append(MessageBuilder::new(NodeId(1), Value::minus()).parent(a))
            .unwrap();
        let _c = m
            .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(a))
            .unwrap();
        m
    }

    #[test]
    fn get_and_contains() {
        let v = sample_memory().read();
        assert!(v.contains(GENESIS));
        assert!(v.contains(MsgId(3)));
        assert!(!v.contains(MsgId(4)));
        assert_eq!(v.get(MsgId(1)).unwrap().author, Some(NodeId(0)));
        assert!(v.require(MsgId(9)).is_err());
        assert!(!v.is_empty());
    }

    #[test]
    fn by_author_in_seq_order() {
        let v = sample_memory().read();
        let n0 = v.by_author(NodeId(0));
        assert_eq!(n0.len(), 2);
        assert!(n0[0].seq < n0[1].seq);
        assert_eq!(v.by_author(NodeId(2)).len(), 0);
    }

    #[test]
    fn by_author_order_without_sorting() {
        // Regression for dropping the sort in by_author: interleaved
        // appends and sparse (subsequence) views must still come out in
        // seq order straight from id order.
        let m = AppendMemory::new(2);
        for i in 0..12u32 {
            m.append(MessageBuilder::new(NodeId(i % 2), Value::plus()).parent(GENESIS))
                .unwrap();
        }
        let v = m.read();
        for a in 0..2u32 {
            let seqs: Vec<u64> = v.by_author(NodeId(a)).iter().map(|m| m.seq).collect();
            assert_eq!(seqs, (0..6u64).collect::<Vec<_>>());
        }
        // Sparse view: drop every third message; what remains must stay
        // seq-ordered per author.
        let sparse = MemoryView::from_messages(
            v.iter()
                .enumerate()
                .filter(|(i, _)| i % 3 != 0)
                .map(|(_, m)| Arc::clone(m))
                .collect::<Vec<_>>(),
        );
        for a in 0..2u32 {
            let seqs: Vec<u64> = sparse.by_author(NodeId(a)).iter().map(|m| m.seq).collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn append_count_excludes_genesis() {
        let v = sample_memory().read();
        assert_eq!(v.len(), 4);
        assert_eq!(v.append_count(), 3);
    }

    #[test]
    fn spin_sum_and_decide() {
        let v = sample_memory().read();
        let ids: Vec<MsgId> = v.iter().map(|m| m.id).collect();
        // +1 (m1) -1 (m2) +1 (m3), genesis contributes 0.
        assert_eq!(v.spin_sum(ids.iter().copied()), 1);
        assert_eq!(v.decide_sign(ids), Some(Sign::Plus));
        // Tie over a balanced subset.
        assert_eq!(v.decide_sign([MsgId(1), MsgId(2)]), None);
        // Unknown ids contribute zero.
        assert_eq!(v.spin_sum([MsgId(77)]), 0);
    }

    #[test]
    fn prefix_relation() {
        let m = sample_memory();
        let small = m.read_prefix(2);
        let big = m.read();
        assert!(small.is_prefix_of(&big));
        assert!(!big.is_prefix_of(&small));
        assert!(big.is_prefix_of(&big));
    }

    #[test]
    fn from_messages_sorts_and_dedups() {
        let m = sample_memory();
        let v = m.read();
        let shuffled: Vec<Arc<Message>> = vec![
            Arc::clone(&v.as_slice()[2]),
            Arc::clone(&v.as_slice()[0]),
            Arc::clone(&v.as_slice()[2]),
            Arc::clone(&v.as_slice()[1]),
        ];
        let rebuilt = MemoryView::from_messages(shuffled);
        assert_eq!(rebuilt.len(), 3);
        let ids: Vec<MsgId> = rebuilt.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![MsgId(0), MsgId(1), MsgId(2)]);
    }

    #[test]
    fn sparse_view_lookup_uses_binary_search() {
        let m = sample_memory();
        let v = m.read();
        // Build a sparse view missing m1.
        let sparse = MemoryView::from_messages(
            v.iter()
                .filter(|m| m.id != MsgId(1))
                .cloned()
                .collect::<Vec<_>>(),
        );
        assert!(sparse.contains(MsgId(3)));
        assert!(!sparse.contains(MsgId(1)));
        assert_eq!(sparse.get(MsgId(2)).unwrap().id, MsgId(2));
    }

    #[test]
    fn in_round_filters() {
        let m = AppendMemory::new(2);
        m.append(
            MessageBuilder::new(NodeId(0), Value::bit(true))
                .parent(GENESIS)
                .round(Round(1)),
        )
        .unwrap();
        m.append(
            MessageBuilder::new(NodeId(1), Value::bit(false))
                .parent(GENESIS)
                .round(Round(2)),
        )
        .unwrap();
        let v = m.read();
        assert_eq!(v.in_round(Round(1)).len(), 1);
        assert_eq!(v.in_round(Round(2)).len(), 1);
        assert_eq!(v.in_round(Round(3)).len(), 0);
    }

    #[test]
    fn iteration_in_arrival_order() {
        let v = sample_memory().read();
        let ids: Vec<MsgId> = (&v).into_iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![MsgId(0), MsgId(1), MsgId(2), MsgId(3)]);
    }
}
