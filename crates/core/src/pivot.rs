//! The pivot-chain rule of Li et al. \[14\] (Conflux).
//!
//! The paper cites two chain rules for ordering a DAG: GHOST \[22\] and the
//! pivot chain \[14\]. The pivot rule walks the *parental tree* — each block
//! designates one first parent, and the walk at each step enters the child
//! whose parental subtree is heaviest. It differs from [`crate::ghost`]
//! (which weighs full future cones in the DAG) exactly on blocks that are
//! referenced by many branches: the pivot rule counts them once, in the
//! subtree of their first parent.

use crate::dag::DagIndex;
use crate::ids::MsgId;
use crate::view::MemoryView;

/// First-parent tree: for each position, the parent position whose edge is
/// the message's *first* listed reference (or `None` for roots).
pub fn first_parent_tree(dag: &DagIndex) -> Vec<Option<u32>> {
    (0..dag.len())
        .map(|pos| {
            let msg = dag.message(pos);
            msg.parents
                .first()
                .and_then(|&p| dag.position(p))
                .map(|p| p as u32)
        })
        .collect()
}

/// Subtree sizes of the first-parent tree (each block counted exactly
/// once, in its first parent's subtree).
pub fn pivot_weights(dag: &DagIndex) -> Vec<u64> {
    let tree = first_parent_tree(dag);
    let mut w = vec![1u64; dag.len()];
    // Positions ascend from parents to children, so a reverse sweep
    // accumulates children before parents.
    for pos in (0..dag.len()).rev() {
        if let Some(p) = tree[pos] {
            w[p as usize] += w[pos];
        }
    }
    w
}

/// The pivot chain: heaviest-first-parent-subtree walk from the heaviest
/// root, ties to the smaller id. Returned root-first as positions.
pub fn pivot_chain_positions(dag: &DagIndex) -> Vec<usize> {
    if dag.is_empty() {
        return Vec::new();
    }
    let tree = first_parent_tree(dag);
    let w = pivot_weights(dag);
    // Tree children (first-parent edges only).
    let mut kids: Vec<Vec<u32>> = vec![Vec::new(); dag.len()];
    for (pos, parent) in tree.iter().enumerate() {
        if let Some(p) = parent {
            kids[*p as usize].push(pos as u32);
        }
    }
    let mut cur = (0..dag.len())
        .filter(|&p| tree[p].is_none())
        .max_by_key(|&p| (w[p], std::cmp::Reverse(p)))
        .expect("non-empty view has a tree root");
    let mut chain = vec![cur];
    loop {
        let c = &kids[cur];
        if c.is_empty() {
            break;
        }
        let mut best = c[0] as usize;
        for &k in &c[1..] {
            let k = k as usize;
            if w[k] > w[best] || (w[k] == w[best] && k < best) {
                best = k;
            }
        }
        chain.push(best);
        cur = best;
    }
    chain
}

/// The pivot chain of a view as message ids, root-first.
pub fn pivot_chain(view: &MemoryView) -> Vec<MsgId> {
    let dag = DagIndex::new(view);
    pivot_chain_with(&dag)
}

/// [`pivot_chain`] on an existing index — decision paths that also
/// linearize build the index once and share it.
pub fn pivot_chain_with(dag: &DagIndex) -> Vec<MsgId> {
    pivot_chain_positions(dag)
        .into_iter()
        .map(|p| dag.id_at(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, GENESIS};
    use crate::memory::AppendMemory;
    use crate::message::MessageBuilder;
    use crate::value::Value;

    fn append(m: &AppendMemory, a: u32, parents: &[MsgId]) -> MsgId {
        m.append(MessageBuilder::new(NodeId(a), Value::plus()).parents(parents.iter().copied()))
            .unwrap()
    }

    #[test]
    fn pure_chain_pivot_equals_chain() {
        let m = AppendMemory::new(1);
        let mut prev = GENESIS;
        let mut ids = vec![GENESIS];
        for _ in 0..6 {
            prev = append(&m, 0, &[prev]);
            ids.push(prev);
        }
        assert_eq!(pivot_chain(&m.read()), ids);
    }

    #[test]
    fn first_parent_tree_uses_first_reference_only() {
        let m = AppendMemory::new(3);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 1, &[GENESIS]);
        let c = append(&m, 2, &[b, a]); // first parent = b
        let v = m.read();
        let dag = DagIndex::new(&v);
        let tree = first_parent_tree(&dag);
        let cpos = dag.position(c).unwrap();
        let bpos = dag.position(b).unwrap();
        assert_eq!(tree[cpos], Some(bpos as u32));
        // Weights: a's subtree is just itself; b's carries c.
        let w = pivot_weights(&dag);
        assert_eq!(w[dag.position(a).unwrap()], 1);
        assert_eq!(w[bpos], 2);
        assert_eq!(w[0], 4); // genesis: self + a + b + c
    }

    #[test]
    fn pivot_differs_from_ghost_on_shared_descendants() {
        // Branches A and B fork at genesis; a heavy merge block m lists
        // A's tip *second* and B's tip *first*. GHOST (future cones) gives
        // both branches credit for m and its descendants; the pivot rule
        // credits only branch B. Make branch A longer so GHOST-by-cones
        // and pivot disagree.
        let m = AppendMemory::new(6);
        let a1 = append(&m, 0, &[GENESIS]);
        let a2 = append(&m, 0, &[a1]);
        let b1 = append(&m, 1, &[GENESIS]);
        let merge = append(&m, 2, &[b1, a2]); // first parent b1
        let d1 = append(&m, 3, &[merge]);
        let _d2 = append(&m, 4, &[d1]);
        let v = m.read();
        let pivot = pivot_chain(&v);
        // Pivot: genesis → b1 (subtree {b1, merge, d1, d2} = 4 vs
        // {a1, a2} = 2) → merge → d1 → d2.
        assert_eq!(pivot[1], b1);
        assert_eq!(pivot[2], merge);
        // Longest chain would route through a1/a2 (depth via a2 equals
        // depth via b1 + 1? depths: merge depth = max(b1,a2)+1 = 3).
        let lc = crate::chain::longest_chain(&v);
        assert!(
            lc.contains(&a1),
            "longest chain prefers the deeper branch A"
        );
    }

    #[test]
    fn pivot_total_weight_is_exact() {
        // Unlike DAG future cones, first-parent subtrees partition the
        // blocks: root weight == number of blocks in its tree.
        let m = AppendMemory::new(4);
        let a = append(&m, 0, &[GENESIS]);
        let b = append(&m, 1, &[GENESIS]);
        let _c = append(&m, 2, &[a, b]);
        let _d = append(&m, 3, &[b, a]);
        let dag = DagIndex::new(&m.read());
        let w = pivot_weights(&dag);
        assert_eq!(w[0] as usize, dag.len(), "tree partitions the view");
    }

    #[test]
    fn genesis_only() {
        let m = AppendMemory::new(1);
        assert_eq!(pivot_chain(&m.read()), vec![GENESIS]);
    }
}
