//! History export / import (replayable append-memory states).
//!
//! Experiments and bug reports need to move a memory state across process
//! boundaries: a [`History`] is the serde-friendly form of a view, and
//! [`History::replay`] reconstructs an equivalent [`AppendMemory`] by
//! re-appending every message in arrival order (re-validating every
//! construction rule on the way in — imports are untrusted).

use crate::error::AppendError;
use crate::ids::Time;
use crate::memory::AppendMemory;
use crate::message::{Message, MessageBuilder};
use crate::view::MemoryView;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of an append-memory history.
///
/// ```
/// use am_core::{AppendMemory, History, MessageBuilder, NodeId, Value, GENESIS};
/// let mem = AppendMemory::new(2);
/// mem.append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS)).unwrap();
/// let h = History::capture(2, &mem.read());
/// let replayed = h.replay().unwrap();
/// assert_eq!(replayed.len(), mem.len());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// Number of nodes the memory serves.
    pub n: usize,
    /// Every message in arrival order, genesis included.
    pub messages: Vec<Message>,
}

impl History {
    /// Captures a view (normally a full `mem.read()`).
    pub fn capture(n: usize, view: &MemoryView) -> History {
        History {
            n,
            messages: view.iter().map(|m| Message::clone(m)).collect(),
        }
    }

    /// Reconstructs a memory by replaying every append. Fails if the
    /// history violates any construction rule (dangling references,
    /// unknown authors, broken author sequences).
    pub fn replay(&self) -> Result<AppendMemory, AppendError> {
        let mem = AppendMemory::new(self.n);
        for m in &self.messages {
            if m.is_genesis() {
                continue;
            }
            let author = m.author.ok_or(AppendError::UnknownAuthor {
                author: crate::ids::NodeId(u32::MAX),
                n: self.n,
            })?;
            let mut b = MessageBuilder::new(author, m.value).parents(m.parents.iter().copied());
            if let Some(r) = m.round {
                b = b.round(r);
            }
            mem.append_at(b, m.arrival.max(Time::ZERO))?;
        }
        Ok(mem)
    }

    /// JSON round-trip helpers.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("history serializes")
    }

    /// Parses a JSON history (structure only; replay still re-validates).
    pub fn from_json(s: &str) -> Result<History, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MsgId, NodeId, GENESIS};
    use crate::validate::check_view;
    use crate::value::Value;

    fn sample() -> AppendMemory {
        let mem = AppendMemory::new(3);
        let a = mem
            .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS))
            .unwrap();
        let b = mem
            .append(MessageBuilder::new(NodeId(1), Value::minus()).parent(GENESIS))
            .unwrap();
        mem.append(MessageBuilder::new(NodeId(2), Value::plus()).parents([a, b]))
            .unwrap();
        mem
    }

    #[test]
    fn capture_replay_roundtrip() {
        let mem = sample();
        let h = History::capture(3, &mem.read());
        let mem2 = h.replay().unwrap();
        let (v1, v2) = (mem.read(), mem2.read());
        assert_eq!(v1.len(), v2.len());
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.author, b.author);
            assert_eq!(a.value, b.value);
            assert_eq!(a.parents, b.parents);
            assert_eq!(a.seq, b.seq);
        }
        assert!(check_view(&v2, true).is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mem = sample();
        let h = History::capture(3, &mem.read());
        let json = h.to_json();
        let h2 = History::from_json(&json).unwrap();
        assert_eq!(h, h2);
        assert!(h2.replay().is_ok());
    }

    #[test]
    fn replay_rejects_corrupt_history() {
        let mem = sample();
        let mut h = History::capture(3, &mem.read());
        // Corrupt a reference to point forward.
        h.messages[1].parents = vec![MsgId(99)];
        assert!(matches!(h.replay(), Err(AppendError::UnknownParent { .. })));
        // Corrupt an author.
        let mut h2 = History::capture(3, &mem.read());
        h2.messages[2].author = Some(NodeId(77));
        assert!(matches!(
            h2.replay(),
            Err(AppendError::UnknownAuthor { .. })
        ));
    }

    #[test]
    fn replay_preserves_ordering_semantics() {
        // The replayed memory yields the same longest chain and GHOST
        // pivot — replays are protocol-equivalent.
        let mem = sample();
        let h = History::capture(3, &mem.read());
        let mem2 = h.replay().unwrap();
        assert_eq!(
            crate::chain::longest_chain(&mem.read()),
            crate::chain::longest_chain(&mem2.read())
        );
        assert_eq!(
            crate::ghost::ghost_pivot(&mem.read()),
            crate::ghost::ghost_pivot(&mem2.read())
        );
    }
}
