//! # am-core — The Append Memory Model
//!
//! This crate implements the *append memory* model introduced by Melnyk and
//! Wattenhofer in "The Append Memory Model: Why BlockDAGs Excel Blockchains"
//! (SPAA 2020), together with the graph machinery every protocol in the
//! paper builds on top of it.
//!
//! ## The model
//!
//! The shared memory consists of `n` registers, one per node. Register `R_i`
//! supports two operations:
//!
//! * `R_i.read()` — executable by *any* node; returns a complete view of the
//!   register.
//! * `R_i.append(msg)` — executable only by node `v_i`; appends `msg` without
//!   removing any previous information.
//!
//! Equivalently, the registers can be viewed as a single unordered register
//! `M` to which all nodes append; `M` itself establishes **no order** across
//! authors (two concurrent appends cannot be tie-broken by the memory), while
//! each author's own appends are totally ordered. Messages carry *references*
//! to previous messages, which is how protocols establish a weak order.
//!
//! ## What this crate provides
//!
//! * [`AppendMemory`] — the authoritative memory with snapshot
//!   ([`MemoryView`]) reads and per-author order enforcement.
//! * [`Message`] / [`MessageBuilder`] — appended commands with values and
//!   parent references.
//! * [`DagIndex`] — the reference graph over a view: parents, children,
//!   tips, depths, past/future cones, topological orders.
//! * Chain selection rules: [`chain::longest_chain`],
//!   [`ghost::ghost_pivot`], and the
//!   [`ordering::OrderingRule`] abstraction used by the
//!   Section 5 protocols.
//! * [`fn@linearize`] — DAG linearization along a selected chain
//!   ("order the values of the DAG with respect to the longest chain",
//!   Algorithm 6 line 9).
//! * [`validate`] — structural invariant checking used by tests and by the
//!   model checker.
//!
//! ## Example
//!
//! ```
//! use am_core::{AppendMemory, MessageBuilder, NodeId, Value};
//!
//! let mem = AppendMemory::new(3);
//! // Node 0 appends its input value, referencing genesis.
//! let genesis = mem.genesis_id();
//! let m1 = mem
//!     .append(MessageBuilder::new(NodeId(0), Value::plus()).parent(genesis))
//!     .unwrap();
//! // Anyone can read; a view is an immutable snapshot.
//! let view = mem.read();
//! assert_eq!(view.len(), 2); // genesis + m1
//! assert!(view.contains(m1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod dag;
pub mod error;
pub mod ghost;
pub mod history;
pub mod ids;
pub mod incremental;
pub mod linearize;
pub mod memory;
pub mod message;
pub mod ordering;
pub mod pivot;
pub mod validate;
pub mod value;
pub mod view;

pub use chain::{chain_to_genesis, longest_chain, longest_chain_tips, longest_chain_with};
pub use dag::DagIndex;
pub use error::{AppendError, CoreError};
pub use ghost::{ghost_pivot, ghost_pivot_with, subtree_weights, GhostScratch};
pub use history::History;
pub use ids::{MsgId, NodeId, Round, Time, GENESIS};
pub use incremental::{ConeCoverTracker, IncrementalDag};
pub use linearize::{linearize, linearize_naive, linearize_with, Linearization};
pub use memory::AppendMemory;
pub use message::{Message, MessageBuilder};
pub use ordering::{GhostRule, LongestChainRule, OrderingRule, PivotRule};
pub use pivot::{pivot_chain, pivot_chain_with};
pub use validate::{check_view, Violation};
pub use value::{Sign, Value};
pub use view::MemoryView;
