//! PR4 engine-equivalence property suite.
//!
//! The incremental decision-path engine (the `ConeCoverTracker`, the CSR
//! `DagIndex` with epoch-stamped scratch, and the shared-index
//! `*_with` chain/linearize variants) is a pure performance change: every
//! result must agree exactly with a from-scratch recomputation. This suite
//! drives all three layers over ≥1k randomized histories — random parent
//! picks, forks, value mixes, and sparse (subsequence) views.

use am_core::{
    chain, ghost, linearize, linearize_with, pivot, AppendMemory, ConeCoverTracker, DagIndex,
    MessageBuilder, MsgId, NodeId, Value,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// From-scratch covered-value count: DFS over the closed past cone of
/// `tip` in an explicit parent table.
fn naive_cover(parents: &[Vec<MsgId>], carries: &[bool], tip: MsgId) -> usize {
    let mut seen = vec![false; parents.len()];
    let mut stack = vec![tip];
    let mut count = 0usize;
    while let Some(id) = stack.pop() {
        let i = id.index();
        if seen[i] {
            continue;
        }
        seen[i] = true;
        if carries[i] {
            count += 1;
        }
        stack.extend_from_slice(&parents[i]);
    }
    count
}

/// A random history in an `AppendMemory`: every append references 1–3
/// random earlier messages (dedup'd), with a random value mix. Returns the
/// memory plus the explicit parent/value tables for naive recomputation.
fn random_history(
    rng: &mut ChaCha8Rng,
    authors: usize,
    appends: usize,
) -> (AppendMemory, Vec<Vec<MsgId>>, Vec<bool>) {
    let mem = AppendMemory::new(authors);
    let mut parents: Vec<Vec<MsgId>> = vec![Vec::new()];
    let mut carries: Vec<bool> = vec![false];
    for i in 0..appends {
        let next = (i + 1) as u64;
        let mut ps: Vec<MsgId> = (0..rng.gen_range(1..=3usize))
            .map(|_| MsgId(rng.gen_range(0..next)))
            .collect();
        ps.sort_unstable();
        ps.dedup();
        let value = match rng.gen_range(0..3u32) {
            0 => Value::plus(),
            1 => Value::minus(),
            _ => Value::Unit,
        };
        carries.push(value.as_sign().is_some());
        let author = NodeId(rng.gen_range(0..authors as u32));
        let id = mem
            .append(MessageBuilder::new(author, value).parents(ps.iter().copied()))
            .unwrap();
        assert_eq!(id.index(), parents.len());
        parents.push(ps);
    }
    (mem, parents, carries)
}

#[test]
fn cone_cover_tracker_matches_naive_over_1000_histories() {
    for seed in 0..1000u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let authors = rng.gen_range(2..=6usize);
        let appends = rng.gen_range(5..=40usize);
        let mem = AppendMemory::new(authors);
        let mut parents: Vec<Vec<MsgId>> = vec![Vec::new()];
        let mut carries: Vec<bool> = vec![false];
        let mut tracker = ConeCoverTracker::new();
        for i in 0..appends {
            let next = (i + 1) as u64;
            let mut ps: Vec<MsgId> = (0..rng.gen_range(1..=3usize))
                .map(|_| MsgId(rng.gen_range(0..next)))
                .collect();
            ps.sort_unstable();
            ps.dedup();
            let value = if rng.gen_bool(0.7) {
                Value::plus()
            } else {
                Value::Unit
            };
            let counts = value.as_sign().is_some();
            let author = NodeId(rng.gen_range(0..authors as u32));
            let id = mem
                .append(MessageBuilder::new(author, value).parents(ps.iter().copied()))
                .unwrap();
            tracker.on_append(id, &ps, counts);
            carries.push(counts);
            parents.push(ps);
            // Interleave queries mid-growth: descendants, ancestors, and
            // unrelated forks all exercise different tracker paths.
            if rng.gen_bool(0.4) {
                let tip = MsgId(rng.gen_range(0..next + 1));
                assert_eq!(
                    tracker.cover_of(tip),
                    naive_cover(&parents, &carries, tip),
                    "seed {seed} append {i} tip {tip:?}"
                );
            }
        }
        // Final sweep: every message as a query tip.
        for idx in 0..parents.len() {
            let tip = MsgId(idx as u64);
            assert_eq!(
                tracker.cover_of(tip),
                naive_cover(&parents, &carries, tip),
                "seed {seed} final tip {tip:?}"
            );
        }
    }
}

#[test]
fn csr_index_matches_bruteforce_reachability_including_sparse_views() {
    for seed in 0..150u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC5_0000 + seed);
        let authors = rng.gen_range(2..=5usize);
        let appends = rng.gen_range(4..=25usize);
        let (mem, _, _) = random_history(&mut rng, authors, appends);
        let full = mem.read();
        // A sparse view drops a random subset (genesis kept): DagIndex must
        // simply skip references to messages outside the view.
        let sparse = am_core::MemoryView::from_messages(
            full.iter()
                .filter(|m| m.is_genesis() || rng.gen_bool(0.7))
                .map(Arc::clone)
                .collect::<Vec<_>>(),
        );
        for view in [&full, &sparse] {
            let dag = DagIndex::new(view);
            let n = dag.len();
            // Brute-force ancestor matrix over the index's own edge lists
            // (positions ascend from parents to children).
            let mut reach = vec![vec![false; n]; n];
            for pos in 0..n {
                reach[pos][pos] = true;
                let mut row = std::mem::take(&mut reach[pos]);
                for &p in dag.parents_of(pos) {
                    for a in 0..n {
                        if reach[p as usize][a] {
                            row[a] = true;
                        }
                    }
                }
                reach[pos] = row;
            }
            for (pos, row) in reach.iter().enumerate() {
                let mut past: Vec<usize> = (0..n).filter(|&a| a != pos && row[a]).collect();
                past.sort_unstable();
                assert_eq!(dag.past_cone(pos), past, "seed {seed} past of {pos}");
                let mut fut: Vec<usize> = (0..n).filter(|&d| d != pos && reach[d][pos]).collect();
                fut.sort_unstable();
                assert_eq!(dag.future_cone(pos), fut, "seed {seed} future of {pos}");
                for (anc, &reachable) in row.iter().enumerate() {
                    assert_eq!(
                        dag.is_ancestor(anc, pos),
                        anc != pos && reachable,
                        "seed {seed} is_ancestor({anc},{pos})"
                    );
                }
            }
        }
    }
}

#[test]
fn shared_index_decision_path_matches_fresh_recomputation() {
    for seed in 0..300u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x11D_0000 + seed);
        let authors = rng.gen_range(2..=6usize);
        let appends = rng.gen_range(5..=35usize);
        let (mem, parents, carries) = random_history(&mut rng, authors, appends);
        let view = mem.read();
        let dag = DagIndex::new(&view);
        // Every chain rule: the index-sharing variant must equal the
        // view-taking one (which rebuilds its own index from scratch).
        let lc = chain::longest_chain(&view);
        assert_eq!(chain::longest_chain_with(&dag), lc, "seed {seed} longest");
        let gp = ghost::ghost_pivot(&view);
        assert_eq!(ghost::ghost_pivot_with(&dag), gp, "seed {seed} ghost");
        let pv = pivot::pivot_chain(&view);
        assert_eq!(pivot::pivot_chain_with(&dag), pv, "seed {seed} pivot");
        // Pooled ghost scratch across iterations must not leak state.
        let mut gs = ghost::GhostScratch::new();
        assert_eq!(ghost::ghost_pivot_in(&dag, &mut gs), gp);
        assert_eq!(ghost::ghost_pivot_in(&dag, &mut gs), gp);
        for chain in [&lc, &gp, &pv] {
            let fresh = linearize(&view, chain);
            let shared = linearize_with(&dag, chain);
            assert_eq!(fresh, shared, "seed {seed} linearize");
            // Covered-from-linearization shortcut == per-tip cone DFS.
            let covered = shared
                .order
                .iter()
                .filter(|&&id| carries[id.index()])
                .count();
            let tip = *chain.last().unwrap();
            assert_eq!(
                covered,
                naive_cover(&parents, &carries, tip),
                "seed {seed} covered"
            );
        }
    }
}
