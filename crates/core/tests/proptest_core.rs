//! Property-based tests for the append memory core.
//!
//! Strategy: generate random append histories (random authors, random
//! parent choices among existing messages, random values) and assert the
//! structural invariants the rest of the workspace relies on.

use am_core::{
    chain, check_view, ghost, linearize, AppendMemory, DagIndex, GhostRule, LongestChainRule,
    MessageBuilder, MsgId, NodeId, OrderingRule, Value, GENESIS,
};
use proptest::prelude::*;

/// A recipe for one append: author index, parent picks (as fractions of the
/// current memory size), and a spin value.
#[derive(Clone, Debug)]
struct AppendSpec {
    author: u32,
    parent_picks: Vec<u16>,
    plus: bool,
}

fn append_spec(n_nodes: u32) -> impl Strategy<Value = AppendSpec> {
    (
        0..n_nodes,
        prop::collection::vec(any::<u16>(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(author, parent_picks, plus)| AppendSpec {
            author,
            parent_picks,
            plus,
        })
}

/// Builds a memory from specs; parents are resolved modulo current length.
fn build_memory(n_nodes: u32, specs: &[AppendSpec]) -> AppendMemory {
    let mem = AppendMemory::new(n_nodes as usize);
    for s in specs {
        let len = mem.len() as u64;
        let parents: Vec<MsgId> = s
            .parent_picks
            .iter()
            .map(|&p| MsgId(p as u64 % len))
            .collect();
        let v = if s.plus {
            Value::plus()
        } else {
            Value::minus()
        };
        mem.append(MessageBuilder::new(NodeId(s.author), v).parents(parents))
            .expect("generated append is always valid");
    }
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_views_satisfy_all_invariants(
        specs in prop::collection::vec(append_spec(5), 0..60)
    ) {
        let mem = build_memory(5, &specs);
        let view = mem.read();
        prop_assert!(check_view(&view, true).is_empty());
    }

    #[test]
    fn prefix_views_are_prefixes(
        specs in prop::collection::vec(append_spec(4), 1..40),
        cut in any::<u16>(),
    ) {
        let mem = build_memory(4, &specs);
        let full = mem.read();
        let cut = 1 + (cut as usize % full.len());
        let pre = mem.read_prefix(cut);
        prop_assert!(pre.is_prefix_of(&full));
        prop_assert!(check_view(&pre, false).is_empty());
    }

    #[test]
    fn linearization_respects_topology_and_covers_past_cone(
        specs in prop::collection::vec(append_spec(5), 1..50)
    ) {
        let mem = build_memory(5, &specs);
        let view = mem.read();
        for rule in [&LongestChainRule as &dyn OrderingRule, &GhostRule] {
            let lin = rule.order(&view);
            // No duplicates; covered + uncovered == all messages.
            let mut seen = std::collections::HashSet::new();
            for &id in &lin.order {
                prop_assert!(seen.insert(id), "duplicate {id:?} in order");
            }
            for &id in &lin.uncovered {
                prop_assert!(seen.insert(id), "uncovered {id:?} also in order");
            }
            prop_assert_eq!(seen.len(), view.len());
            // Topological: every parent of an ordered message that is also
            // ordered must precede it.
            let pos: std::collections::HashMap<MsgId, usize> =
                lin.order.iter().copied().enumerate().map(|(i, id)| (id, i)).collect();
            for &id in &lin.order {
                let m = view.get(id).unwrap();
                for &p in &m.parents {
                    if let Some(&pp) = pos.get(&p) {
                        prop_assert!(pp < pos[&id],
                            "{p:?} must precede {id:?} under {}", rule.name());
                    }
                }
            }
        }
    }

    #[test]
    fn selected_chains_are_real_paths(
        specs in prop::collection::vec(append_spec(4), 1..50)
    ) {
        let mem = build_memory(4, &specs);
        let view = mem.read();
        for rule in [&LongestChainRule as &dyn OrderingRule, &GhostRule] {
            let c = rule.select_chain(&view);
            prop_assert_eq!(c[0], GENESIS, "chains start at genesis");
            // Consecutive chain elements are parent→child edges.
            for w in c.windows(2) {
                let child = view.get(w[1]).unwrap();
                prop_assert!(child.parents.contains(&w[0]),
                    "{:?} not a parent of {:?} under {}", w[0], w[1], rule.name());
            }
        }
    }

    #[test]
    fn longest_chain_has_max_depth_length(
        specs in prop::collection::vec(append_spec(4), 1..50)
    ) {
        let mem = build_memory(4, &specs);
        let view = mem.read();
        let dag = DagIndex::new(&view);
        let c = chain::longest_chain(&view);
        prop_assert_eq!(c.len() as u32, dag.max_depth() + 1);
    }

    #[test]
    fn ghost_weights_dominate_children(
        specs in prop::collection::vec(append_spec(4), 1..40)
    ) {
        let mem = build_memory(4, &specs);
        let dag = DagIndex::new(&mem.read());
        let w = ghost::subtree_weights(&dag);
        for pos in 0..dag.len() {
            for &c in dag.children_of(pos) {
                prop_assert!(w[pos] > w[c as usize],
                    "parent weight must strictly exceed any child's");
            }
            prop_assert!(w[pos] >= 1);
        }
    }

    #[test]
    fn snapshots_are_immutable_under_concurrent_growth(
        specs in prop::collection::vec(append_spec(3), 1..30)
    ) {
        let mem = build_memory(3, &specs);
        let before = mem.read();
        let len_before = before.len();
        mem.append(MessageBuilder::new(NodeId(0), Value::plus()).parent(GENESIS)).unwrap();
        prop_assert_eq!(before.len(), len_before);
        prop_assert_eq!(mem.read().len(), len_before + 1);
    }

    #[test]
    fn register_reads_are_gap_free(
        specs in prop::collection::vec(append_spec(5), 0..50)
    ) {
        let mem = build_memory(5, &specs);
        for a in 0..5u32 {
            let reg = mem.read_register(NodeId(a));
            for (i, m) in reg.iter().enumerate() {
                prop_assert_eq!(m.seq, i as u64);
                prop_assert_eq!(m.author, Some(NodeId(a)));
            }
        }
    }

    #[test]
    fn linearize_is_stable_under_view_identity(
        specs in prop::collection::vec(append_spec(4), 1..40)
    ) {
        let mem = build_memory(4, &specs);
        let v1 = mem.read();
        let v2 = mem.read();
        let c = chain::longest_chain(&v1);
        prop_assert_eq!(linearize(&v1, &c), linearize(&v2, &c));
    }
}
