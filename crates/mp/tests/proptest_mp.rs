//! Failure injection for the message-passing simulation: random operation
//! sequences (appends, reads, pauses/resumes, equivocations, forgeries,
//! delivery reordering) must preserve the append-memory semantics of
//! Lemmas 4.1/4.2 as long as a correct quorum stays reachable.

use am_mp::{Delivery, MpMsg, MpSystem};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum OpSpec {
    Append { node: u8, value: i8 },
    Read { node: u8 },
    Equivocate { byz: u8, a: i8, b: i8 },
    Forge { byz: u8, victim: u8, guess: u64 },
    Settle,
}

fn op_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (any::<u8>(), -1i8..=1).prop_map(|(node, value)| OpSpec::Append { node, value }),
        any::<u8>().prop_map(|node| OpSpec::Read { node }),
        (any::<u8>(), -1i8..=1, -1i8..=1).prop_map(|(byz, a, b)| OpSpec::Equivocate { byz, a, b }),
        (any::<u8>(), any::<u8>(), any::<u64>()).prop_map(|(byz, victim, guess)| OpSpec::Forge {
            byz,
            victim,
            guess
        }),
        Just(OpSpec::Settle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any operation sequence and any delivery order:
    /// * every *completed* correct append is visible to every *subsequent*
    ///   correct read (Lemma 4.2);
    /// * forged messages never enter any correct view;
    /// * per-author sequences of correct authors stay gap-free.
    #[test]
    fn abd_semantics_hold_under_random_ops(
        n in 4usize..8,
        t in 0usize..3,
        ops in prop::collection::vec(op_spec(), 1..25),
        delivery_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let t = t.min((n - 1) / 2);
        let byz: Vec<usize> = (n - t..n).collect();
        let n_corr = n - t;
        let mut sys = MpSystem::new(n, &byz, seed);
        sys.set_delivery(match delivery_pick {
            0 => Delivery::Fifo,
            1 => Delivery::Lifo,
            _ => Delivery::Random,
        });

        let mut completed: Vec<MpMsg> = Vec::new();
        let mut forged: HashSet<u64> = HashSet::new();

        for op in &ops {
            match *op {
                OpSpec::Append { node, value } => {
                    let v = node as usize % n_corr;
                    let m = sys.append(v, value).expect("quorum reachable");
                    // A forged guess can collide with a *later* legitimate
                    // append (content = hash(author, seq, value)); once the
                    // content is legitimately signed it is no longer a
                    // forgery.
                    forged.remove(&m.content);
                    completed.push(m);
                }
                OpSpec::Read { node } => {
                    let v = node as usize % n_corr;
                    let view = sys.read(v).expect("quorum reachable");
                    for m in &completed {
                        prop_assert!(
                            view.contains(m),
                            "completed append {m:?} missing from read at {v}"
                        );
                    }
                    for m in &view {
                        prop_assert!(!forged.contains(&m.content), "forgery accepted");
                    }
                }
                OpSpec::Equivocate { byz: b, a, b: vb } => {
                    if t > 0 {
                        let who = byz[b as usize % byz.len()];
                        let half: Vec<usize> = (0..n_corr / 2).collect();
                        let (ma, mb) = sys.byz_equivocate(who, a, vb, &half).unwrap();
                        forged.remove(&ma.content);
                        forged.remove(&mb.content);
                    }
                }
                OpSpec::Forge { byz: b, victim, guess } => {
                    if t > 0 {
                        let who = byz[b as usize % byz.len()];
                        let vic = victim as usize % n_corr;
                        let content = sys.byz_forge(who, vic, -1, guess).unwrap();
                        forged.insert(content);
                    }
                }
                OpSpec::Settle => {
                    sys.settle();
                }
            }
        }
        sys.settle();

        // No forged content ever entered a correct view.
        for v in 0..n_corr {
            for m in sys.local_view(v) {
                prop_assert!(!forged.contains(&m.content),
                    "forged content in node {}'s view", v);
            }
        }

        // Register integrity: every correct author's messages in every
        // correct view have gap-free sequence numbers starting at 0
        // (forgeries would collide with or skip sequence slots).
        for v in 0..n_corr {
            let view = sys.local_view(v);
            for author in 0..n_corr {
                let mut seqs: Vec<u64> = view
                    .iter()
                    .filter(|m| m.author == author)
                    .map(|m| m.seq)
                    .collect();
                seqs.sort_unstable();
                seqs.dedup();
                for (i, &s) in seqs.iter().enumerate() {
                    prop_assert_eq!(s, i as u64, "author {} register broken at {}", author, v);
                }
            }
        }
    }

    /// Reads are monotone: a later read by the same node never loses a
    /// value an earlier read returned.
    #[test]
    fn reads_are_monotone(
        n in 4usize..7,
        appends in prop::collection::vec((any::<u8>(), -1i8..=1), 1..8),
        seed in any::<u64>(),
    ) {
        let mut sys = MpSystem::new(n, &[], seed);
        let mut prev: HashSet<u64> = HashSet::new();
        for (node, value) in appends {
            sys.append(node as usize % n, value).unwrap();
            let view = sys.read((node as usize + 1) % n).unwrap();
            let cur: HashSet<u64> = view.iter().map(|m| m.content).collect();
            prop_assert!(prev.is_subset(&cur), "read went backwards");
            prev = cur;
        }
    }
}
