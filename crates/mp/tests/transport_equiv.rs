//! Substrate equivalence: a fault-free, zero-latency `am-net` simulator
//! is observationally identical to the reliable in-process network — the
//! property that lets Algorithms 2/3 run unchanged over either.

use am_mp::{MpMsg, MpSystem, Network, Payload};
use am_net::{LatencyModel, NetProfile, SimNet, Transport};
use proptest::prelude::*;

/// Drains every arrived/in-flight message via the Transport interface,
/// FIFO per node, lowest node first — the same schedule for any substrate.
fn drain_fifo<T: Transport<Payload>>(net: &mut T) -> Vec<(usize, usize, &'static str)> {
    use am_net::Kinded;
    let mut out = Vec::new();
    loop {
        let mut any = false;
        for node in 0..net.n() {
            while let Some(env) = net.deliver(node) {
                out.push((env.from, env.to, env.payload.kind()));
                any = true;
            }
        }
        if !net.advance() && !any {
            break;
        }
    }
    out
}

fn ideal_sim(n: usize, seed: u64) -> SimNet<Payload> {
    NetProfile::ideal(LatencyModel::Constant(0)).build(n, seed)
}

/// One scripted operation for the equivalence property.
#[derive(Clone, Debug)]
enum Op {
    Append { node: u8, value: i8 },
    Read { node: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -1i8..=1).prop_map(|(node, value)| Op::Append { node, value }),
        any::<u8>().prop_map(|node| Op::Read { node }),
    ]
}

/// Every observable outcome of a script: append results, read results,
/// settled per-node views, total messages sent.
type Observed = (
    Vec<Result<MpMsg, am_mp::MpError>>,
    Vec<Option<Vec<MpMsg>>>,
    Vec<Vec<MpMsg>>,
    u64,
);

/// Runs a script on any substrate, returning every observable outcome.
fn run_script<T: Transport<Payload>>(mut sys: MpSystem<T>, ops: &[Op]) -> Observed {
    let n = sys.n();
    let mut appends = Vec::new();
    let mut reads = Vec::new();
    for o in ops {
        match *o {
            Op::Append { node, value } => {
                appends.push(sys.append(node as usize % n, value));
            }
            Op::Read { node } => {
                reads.push(sys.read(node as usize % n).ok().map(|v| v.to_vec()));
            }
        }
    }
    sys.settle();
    let mut views: Vec<Vec<MpMsg>> = (0..n).map(|v| sys.local_view(v).to_vec()).collect();
    for v in &mut views {
        v.sort_by_key(|m| (m.author, m.seq, m.content));
    }
    (appends, reads, views, sys.total_sent())
}

#[test]
fn fifo_delivery_order_matches_reliable_network() {
    // Same scripted sends on both substrates → identical delivery order.
    let script = |net: &mut dyn Transport<Payload>| {
        for round in 0..3u64 {
            for from in 0..4 {
                net.broadcast(from, Payload::ReadReq { op: round });
            }
            net.send(
                1,
                2,
                Payload::Ack {
                    author: 0,
                    seq: round,
                    content: round * 7,
                },
            );
        }
    };
    let mut reliable = Network::new(4);
    script(&mut reliable);
    let a = drain_fifo(&mut reliable);

    let mut sim = ideal_sim(4, 99);
    script(&mut sim);
    let b = drain_fifo(&mut sim);

    assert_eq!(
        a, b,
        "zero-latency fault-free SimNet must be FIFO-identical"
    );
    assert_eq!(reliable.sent_count(), sim.sent_count());
    assert_eq!(reliable.delivered_count(), sim.delivered_count());
    assert!(reliable.quiescent() && sim.quiescent());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full ABD simulation gives identical observable outcomes over
    /// both substrates: same append results, same read views, same final
    /// views, same total message count.
    #[test]
    fn abd_outcomes_identical_over_both_substrates(
        n in 3usize..7,
        ops in prop::collection::vec(op(), 1..12),
        seed in any::<u64>(),
    ) {
        let reliable = MpSystem::new(n, &[], seed);
        let sim = MpSystem::with_transport(ideal_sim(n, seed), &[], seed);

        let (a_app, a_read, a_views, a_sent) = run_script(reliable, &ops);
        let (b_app, b_read, b_views, b_sent) = run_script(sim, &ops);

        prop_assert_eq!(&a_app, &b_app, "append outcomes diverged");
        // Read views may be merged in different pump interleavings, so
        // compare as sorted sets.
        prop_assert_eq!(a_read.len(), b_read.len());
        for (x, y) in a_read.iter().zip(b_read.iter()) {
            let norm = |v: &Option<Vec<MpMsg>>| {
                v.as_ref().map(|v| {
                    let mut v = v.clone();
                    v.sort_by_key(|m| (m.author, m.seq, m.content));
                    v
                })
            };
            prop_assert_eq!(norm(x), norm(y), "read outcomes diverged");
        }
        prop_assert_eq!(a_views, b_views, "settled views diverged");
        prop_assert_eq!(a_sent, b_sent, "message complexity diverged");
    }

    /// Safety survives lossy networks: whatever the drop rate, a
    /// completed append is visible to every later completed read
    /// (drops can only cause stalls — liveness, never safety).
    #[test]
    fn drops_never_break_safety(
        drop_pct in 0u8..60,
        seed in any::<u64>(),
    ) {
        let n = 5;
        let net: SimNet<Payload> = NetProfile::ideal(LatencyModel::Exponential { mean: 1000 })
            .with_drop(drop_pct as f64 / 100.0)
            .build(n, seed);
        let mut sys = MpSystem::with_transport(net, &[], seed);
        let mut completed: Vec<MpMsg> = Vec::new();
        for i in 0..4 {
            if let Ok(m) = sys.append(i % n, 1) {
                completed.push(m);
            }
            if let Ok(view) = sys.read((i + 1) % n) {
                for m in &completed {
                    prop_assert!(
                        view.contains(m),
                        "completed append {:?} invisible to a completed read",
                        m
                    );
                }
            }
        }
    }
}
