//! The 300-seed networked equivalence suite: the optimized engine
//! (Arc-interned broadcasts, persistent `MpView` snapshots, dense
//! `AckTally` bitmasks, tombstone inboxes) must be *bit-equal* to the
//! in-tree naive baselines (`broadcast_cloning`, `local_view_rebuild`,
//! `acks_hashmap`) on every observable: append and read outcomes, settled
//! views, total message counts, and the full `NetStats` delivery trace.
//!
//! Both runs share one seed, so any divergence — an extra RNG draw, a
//! reordered delivery, a changed seq number — fails loudly. This is the
//! acceptance gate that lets the naive paths serve as the benchmark
//! baselines: they are provably the same algorithm, differing only in
//! memory behaviour.

use am_mp::{Delivery, MpError, MpMsg, MpSystem, Payload};
use am_net::{LatencyModel, NetProfile, SimNet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Everything observable about one scripted run.
#[derive(Debug, PartialEq)]
struct Observed {
    appends: Vec<Result<MpMsg, MpError>>,
    reads: Vec<Result<Vec<MpMsg>, MpError>>,
    views: Vec<Vec<MpMsg>>,
    total_sent: u64,
    /// The full `NetStats` (trace, per-link and per-kind counters) in
    /// Debug form — any divergence in network behaviour shows up here.
    stats: String,
}

fn faulty_net(n: usize, seed: u64) -> SimNet<Payload> {
    NetProfile::ideal(LatencyModel::Exponential { mean: 1_000 })
        .with_drop(0.08)
        .with_dup(0.1)
        .with_reorder(0.3)
        .build(n, seed ^ 0x5ca1_ab1e)
}

/// One seed-derived script: appends, reads, and pause/resume churn under
/// Random delivery (the path that takes from arbitrary inbox positions).
fn run(seed: u64, naive: bool) -> Observed {
    let mut script_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
    let n = 4 + (seed % 3) as usize; // 4..=6 nodes
    let mut sys = MpSystem::with_transport(faulty_net(n, seed), &[], seed);
    sys.set_naive(naive);
    sys.set_delivery(Delivery::Random);

    let mut appends = Vec::new();
    let mut reads = Vec::new();
    let mut paused: Option<usize> = None;
    for _ in 0..14 {
        match script_rng.gen_range(0..10u32) {
            0..=4 => {
                let node = script_rng.gen_range(0..n);
                let value = script_rng.gen_range(-1..=1i8);
                appends.push(sys.append(node, value));
            }
            5..=7 => {
                let node = script_rng.gen_range(0..n);
                reads.push(sys.read(node).map(|v| v.to_vec()));
            }
            8 => {
                // Pause one node (never more: the majority quorum must
                // stay reachable so the script exercises progress, not
                // just stalls).
                if paused.is_none() {
                    let node = script_rng.gen_range(0..n);
                    sys.pause(node);
                    paused = Some(node);
                }
            }
            _ => {
                if let Some(node) = paused.take() {
                    sys.resume(node);
                }
            }
        }
    }
    if let Some(node) = paused {
        sys.resume(node);
    }
    sys.settle();

    let views = (0..n).map(|v| sys.local_view(v).to_vec()).collect();
    let total_sent = sys.total_sent();
    let stats = format!("{:?}", sys.transport().stats());
    Observed {
        appends,
        reads,
        views,
        total_sent,
        stats,
    }
}

#[test]
fn optimized_engine_is_bit_equal_to_naive_baselines_across_300_seeds() {
    for seed in 0..300u64 {
        let fast = run(seed, false);
        let naive = run(seed, true);
        assert_eq!(
            fast, naive,
            "optimized engine diverged from naive baselines at seed {seed}"
        );
    }
}
