//! The in-process simulated network.
//!
//! Point-to-point FIFO inboxes with broadcast, message counting, and
//! droppable links (a Byzantine node "not responding" is modelled by the
//! node simply not reacting; the network itself is reliable, as the
//! Section 4 model requires correct nodes to be available at all times).

use crate::sig::Signature;
use crate::view::MpView;
use am_net::{Kinded, Transport};
use std::collections::VecDeque;

/// The wire payloads of Algorithms 2 and 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// `append(val(v))_v` — a signed append announcement.
    Append {
        /// Authoring node.
        author: usize,
        /// Author's sequence number for this append.
        seq: u64,
        /// The value (opaque to the network).
        value: i8,
        /// Content hash the signature covers.
        content: u64,
        /// The author's signature.
        sig: Signature,
    },
    /// `ack(append(val(w))_w)_v` — acknowledgement of someone's append.
    Ack {
        /// Whose append is being acked.
        author: usize,
        /// Which append of theirs.
        seq: u64,
        /// Content hash of the acked append.
        content: u64,
    },
    /// `M.read()` — a read request.
    ReadReq {
        /// Requester's operation id.
        op: u64,
    },
    /// A full local view sent back to a reader.
    ViewResp {
        /// The operation id this responds to.
        op: u64,
        /// A snapshot of the responder's local view. [`MpView`] shares its
        /// chunks with the responder's live view, so building and cloning
        /// this payload is O(history / chunk), not O(history).
        view: MpView,
    },
}

impl Kinded for Payload {
    fn kind(&self) -> &'static str {
        match self {
            Payload::Append { .. } => "append",
            Payload::Ack { .. } => "ack",
            Payload::ReadReq { .. } => "read_req",
            Payload::ViewResp { .. } => "view_resp",
        }
    }
}

/// A message in flight.
pub type Envelope = am_net::Envelope<Payload>;

/// The simulated network: per-node FIFO inboxes plus counters.
pub struct Network {
    n: usize,
    inboxes: Vec<VecDeque<Envelope>>,
    sent: u64,
    delivered: u64,
}

impl Network {
    /// Creates a network for `n` nodes.
    pub fn new(n: usize) -> Network {
        Network {
            n,
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            sent: 0,
            delivered: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sends a point-to-point message.
    pub fn send(&mut self, from: usize, to: usize, payload: Payload) {
        self.sent += 1;
        self.inboxes[to].push_back(Envelope { from, to, payload });
    }

    /// Broadcasts to every node including the sender (self-delivery keeps
    /// the algorithms symmetric, as in the paper's pseudocode).
    pub fn broadcast(&mut self, from: usize, payload: Payload) {
        for to in 0..self.n {
            self.send(from, to, payload.clone());
        }
    }

    /// Pops the next message for `node`, if any.
    pub fn deliver(&mut self, node: usize) -> Option<Envelope> {
        let e = self.inboxes[node].pop_front();
        if e.is_some() {
            self.delivered += 1;
        }
        e
    }

    /// Pops the message at position `idx` of `node`'s inbox — the
    /// adversarial-reordering primitive (asynchrony = delivery-order
    /// freedom).
    pub fn deliver_at(&mut self, node: usize, idx: usize) -> Option<Envelope> {
        let e = self.inboxes[node].remove(idx);
        if e.is_some() {
            self.delivered += 1;
        }
        e
    }

    /// Whether any message is still in flight.
    pub fn quiescent(&self) -> bool {
        self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// Total messages sent so far (the complexity metric of E4).
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Total messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages waiting for `node`.
    pub fn backlog(&self, node: usize) -> usize {
        self.inboxes[node].len()
    }
}

/// The reliable network is the degenerate substrate: every sent message
/// arrives instantly, so `advance` has nothing to do. Algorithms written
/// against [`Transport`] run identically over [`Network`] and a
/// fault-free zero-latency [`am_net::SimNet`] (see the
/// `transport_equiv` tests).
impl Transport<Payload> for Network {
    fn n(&self) -> usize {
        Network::n(self)
    }

    fn send(&mut self, from: usize, to: usize, payload: Payload) {
        Network::send(self, from, to, payload);
    }

    fn backlog(&self, node: usize) -> usize {
        Network::backlog(self, node)
    }

    fn deliver_at(&mut self, node: usize, idx: usize) -> Option<Envelope> {
        Network::deliver_at(self, node, idx)
    }

    fn advance(&mut self) -> bool {
        false // nothing is ever "in flight"
    }

    fn quiescent(&self) -> bool {
        Network::quiescent(self)
    }

    fn sent_count(&self) -> u64 {
        Network::sent_count(self)
    }

    fn delivered_count(&self) -> u64 {
        Network::delivered_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping(op: u64) -> Payload {
        Payload::ReadReq { op }
    }

    #[test]
    fn fifo_per_receiver() {
        let mut net = Network::new(2);
        net.send(0, 1, ping(1));
        net.send(0, 1, ping(2));
        let a = net.deliver(1).unwrap();
        let b = net.deliver(1).unwrap();
        assert_eq!(a.payload, ping(1));
        assert_eq!(b.payload, ping(2));
        assert!(net.deliver(1).is_none());
    }

    #[test]
    fn broadcast_hits_everyone_including_self() {
        let mut net = Network::new(3);
        net.broadcast(1, ping(9));
        for node in 0..3 {
            let e = net.deliver(node).unwrap();
            assert_eq!(e.from, 1);
            assert_eq!(e.to, node);
        }
        assert!(net.quiescent());
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = Network::new(4);
        net.broadcast(0, ping(1));
        assert_eq!(net.sent_count(), 4);
        assert_eq!(net.delivered_count(), 0);
        assert_eq!(net.backlog(2), 1);
        net.deliver(2);
        assert_eq!(net.delivered_count(), 1);
        assert!(!net.quiescent());
    }
}
