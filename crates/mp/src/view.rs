//! Incremental ABD state: persistent local views and dense ack tallies.
//!
//! Two hot structures behind Algorithms 2/3 used to be rebuilt or
//! deep-copied per operation:
//!
//! * `views[node].clone()` — every `local_view`/`read` return and every
//!   `ReadReq` response copied the node's whole history, making a read
//!   O(history · n). [`MpView`] is a persistent append-only log of fixed
//!   chunks behind [`Arc`]s (the same copy-on-write idiom as
//!   `am-core`'s snapshot machinery): cloning shares every full chunk, so
//!   a snapshot costs one pointer bump per `CHUNK` messages, and pushing
//!   after a snapshot copies at most the last (partial) chunk.
//! * `acks: HashMap<(author, seq, content), HashSet<usize>>` — quorum
//!   counting paid two hash lookups and a heap-allocated set per ack.
//!   [`AckTally`] flattens the sets into one dense bitmask block per op
//!   with a maintained count, so recording an ack is one hash lookup plus
//!   a bit test.
//!
//! The naive implementations stay in-tree
//! (`MpSystem::local_view_rebuild`, the `acks_hashmap` mode toggled by
//! `MpSystem::set_naive`) and the equivalence suite pins both pairs to
//! bit-equal outcomes.

use crate::abd::MpMsg;
use std::collections::HashMap;
use std::sync::Arc;

/// Messages per shared chunk. Snapshot cost is one `Arc` clone per
/// `CHUNK` messages; a post-snapshot push copies at most `CHUNK − 1`
/// messages (the shared partial tail chunk).
const CHUNK: usize = 128;

/// A persistent append-only view of a node's local memory `M_v`.
///
/// Layout invariant: every chunk except possibly the last holds exactly
/// [`CHUNK`] messages, and no chunk is empty — so logically equal views
/// always have identical chunk layout. Shared (full) chunks are never
/// grown in place, which keeps earlier snapshots stable.
#[derive(Clone, Debug, Default)]
pub struct MpView {
    chunks: Vec<Arc<Vec<MpMsg>>>,
    len: usize,
}

impl MpView {
    /// An empty view.
    pub fn new() -> MpView {
        MpView::default()
    }

    /// Builds a view from a message slice (chunked canonically).
    pub fn from_slice(msgs: &[MpMsg]) -> MpView {
        MpView {
            chunks: msgs.chunks(CHUNK).map(|c| Arc::new(c.to_vec())).collect(),
            len: msgs.len(),
        }
    }

    /// Number of messages in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a message. O(1) amortized; if the tail chunk is shared
    /// with a snapshot, it is copied first (at most `CHUNK − 1` messages).
    pub fn push(&mut self, msg: MpMsg) {
        match self.chunks.last_mut() {
            Some(tail) if tail.len() < CHUNK => Arc::make_mut(tail).push(msg),
            _ => {
                let mut fresh = Vec::with_capacity(CHUNK);
                fresh.push(msg);
                self.chunks.push(Arc::new(fresh));
            }
        }
        self.len += 1;
    }

    /// Whether the view contains `msg` (linear scan, like `Vec::contains`).
    pub fn contains(&self, msg: &MpMsg) -> bool {
        self.iter().any(|m| m == msg)
    }

    /// Iterates the messages in append order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            chunks: &self.chunks,
            chunk: 0,
            idx: 0,
        }
    }

    /// Iterates the messages in append order starting at position
    /// `start` (clamped to the end). The canonical chunk layout — every
    /// chunk except the last is full — makes the jump O(1): nothing in
    /// the skipped prefix is walked.
    pub fn iter_from(&self, start: usize) -> Iter<'_> {
        let start = start.min(self.len);
        Iter {
            chunks: &self.chunks,
            chunk: start / CHUNK,
            idx: start % CHUNK,
        }
    }

    /// The last message, if any.
    pub fn last(&self) -> Option<&MpMsg> {
        self.chunks.last().and_then(|c| c.last())
    }

    /// A snapshot of the first `len` messages (clamped to the end),
    /// sharing every full chunk with `self` — O(chunks) plus a copy of
    /// at most one partial tail chunk, never O(history). This is the
    /// archival layer's snapshot-at-height primitive.
    pub fn prefix(&self, len: usize) -> MpView {
        let len = len.min(self.len);
        let full = len / CHUNK;
        let mut chunks: Vec<Arc<Vec<MpMsg>>> = self.chunks[..full].to_vec();
        let tail = len % CHUNK;
        if tail > 0 {
            chunks.push(Arc::new(self.chunks[full][..tail].to_vec()));
        }
        MpView { chunks, len }
    }

    /// Deep-copies the view into a plain vector.
    pub fn to_vec(&self) -> Vec<MpMsg> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend_from_slice(c);
        }
        out
    }

    /// Number of backing chunks (exposed for tests asserting the sharing
    /// behaviour).
    #[doc(hidden)]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// How many backing chunks are shared (refcount > 1) with snapshots.
    #[doc(hidden)]
    pub fn shared_chunk_count(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| Arc::strong_count(c) > 1)
            .count()
    }
}

impl PartialEq for MpView {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}
impl Eq for MpView {}

/// Borrowing iterator over an [`MpView`] in append order.
#[derive(Debug)]
pub struct Iter<'a> {
    chunks: &'a [Arc<Vec<MpMsg>>],
    chunk: usize,
    idx: usize,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a MpMsg;

    fn next(&mut self) -> Option<&'a MpMsg> {
        loop {
            let c = self.chunks.get(self.chunk)?;
            if let Some(m) = c.get(self.idx) {
                self.idx += 1;
                return Some(m);
            }
            self.chunk += 1;
            self.idx = 0;
        }
    }
}

impl<'a> IntoIterator for &'a MpView {
    type Item = &'a MpMsg;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Owning iterator over an [`MpView`] ([`MpMsg`] is `Copy`; chunks stay
/// shared).
#[derive(Debug)]
pub struct IntoIter {
    view: MpView,
    chunk: usize,
    idx: usize,
}

impl Iterator for IntoIter {
    type Item = MpMsg;

    fn next(&mut self) -> Option<MpMsg> {
        loop {
            let c = self.view.chunks.get(self.chunk)?;
            if let Some(&m) = c.get(self.idx) {
                self.idx += 1;
                return Some(m);
            }
            self.chunk += 1;
            self.idx = 0;
        }
    }
}

impl IntoIterator for MpView {
    type Item = MpMsg;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        IntoIter {
            view: self,
            chunk: 0,
            idx: 0,
        }
    }
}

/// Dense per-op ack tallies: one bitmask block + maintained count per
/// `(author, seq, content)` key, replacing `HashMap<_, HashSet<usize>>`.
#[derive(Clone, Debug)]
pub struct AckTally {
    /// Words per op block: ⌈n / 64⌉.
    stride: usize,
    /// Key → block index into `bits` / `counts`.
    index: HashMap<(usize, u64, u64), u32>,
    /// Acker bitmasks, `stride` words per op.
    bits: Vec<u64>,
    /// Maintained popcount per op.
    counts: Vec<u32>,
}

impl AckTally {
    /// An empty tally for `n` nodes.
    pub fn new(n: usize) -> AckTally {
        AckTally {
            stride: n.div_ceil(64).max(1),
            index: HashMap::new(),
            bits: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records that node `from` acked `key`; returns the distinct-acker
    /// count after recording. Duplicate acks are idempotent.
    pub fn add(&mut self, key: (usize, u64, u64), from: usize) -> usize {
        let block = match self.index.get(&key) {
            Some(&b) => b as usize,
            None => {
                let b = self.counts.len();
                self.index
                    .insert(key, u32::try_from(b).expect("op count fits u32"));
                self.bits.resize(self.bits.len() + self.stride, 0);
                self.counts.push(0);
                b
            }
        };
        let word = &mut self.bits[block * self.stride + from / 64];
        let bit = 1u64 << (from % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.counts[block] += 1;
        }
        self.counts[block] as usize
    }

    /// Distinct ackers recorded for `key`.
    pub fn count(&self, key: (usize, u64, u64)) -> usize {
        self.index
            .get(&key)
            .map_or(0, |&b| self.counts[b as usize] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Signature;

    fn msg(i: u64) -> MpMsg {
        MpMsg {
            author: (i % 7) as usize,
            seq: i,
            value: (i % 3) as i8 - 1,
            content: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            sig: Signature(i),
        }
    }

    #[test]
    fn push_iter_roundtrip_across_chunk_boundaries() {
        let mut v = MpView::new();
        let msgs: Vec<MpMsg> = (0..200).map(msg).collect();
        for &m in &msgs {
            v.push(m);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.to_vec(), msgs);
        assert_eq!(v.iter().count(), 200);
        assert_eq!(v.chunk_count(), 200usize.div_ceil(CHUNK));
        assert!(v.contains(&msgs[137]));
        assert!(!v.contains(&msg(999)));
    }

    #[test]
    fn iter_from_matches_skip_at_every_offset() {
        let mut v = MpView::new();
        let msgs: Vec<MpMsg> = (0..150).map(msg).collect();
        for &m in &msgs {
            v.push(m);
        }
        // Every offset, including chunk boundaries and one past the end.
        for start in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 149, 150, 151, 999] {
            let got: Vec<MpMsg> = v.iter_from(start).copied().collect();
            let want: Vec<MpMsg> = msgs.iter().skip(start).copied().collect();
            assert_eq!(got, want, "iter_from({start}) diverged from skip");
        }
    }

    #[test]
    fn prefix_shares_full_chunks_and_matches_take() {
        let msgs: Vec<MpMsg> = (0..(3 * CHUNK as u64 + 17)).map(msg).collect();
        let v = MpView::from_slice(&msgs);
        for len in [
            0,
            1,
            CHUNK - 1,
            CHUNK,
            CHUNK + 1,
            2 * CHUNK,
            v.len(),
            v.len() + 9,
        ] {
            let p = v.prefix(len);
            let want: Vec<MpMsg> = msgs.iter().take(len).copied().collect();
            assert_eq!(p.len(), want.len(), "prefix({len}) length");
            assert_eq!(p.to_vec(), want, "prefix({len}) content");
            // Canonical layout: equal views compare equal.
            assert_eq!(p, MpView::from_slice(&want));
        }
        // A chunk-aligned prefix shares every chunk with the source.
        let aligned = v.prefix(2 * CHUNK);
        assert_eq!(aligned.chunk_count(), 2);
        assert!(v.shared_chunk_count() >= 2, "full chunks are shared");
        drop(aligned);
        assert_eq!(v.last(), msgs.last());
        assert_eq!(MpView::new().last(), None);
    }

    #[test]
    fn from_slice_equals_pushed() {
        let msgs: Vec<MpMsg> = (0..130).map(msg).collect();
        let mut pushed = MpView::new();
        for &m in &msgs {
            pushed.push(m);
        }
        assert_eq!(MpView::from_slice(&msgs), pushed);
    }

    #[test]
    fn snapshots_share_full_chunks_and_stay_stable() {
        let snap_at = CHUNK as u64 + CHUNK as u64 / 2; // one full chunk + a partial tail
        let mut v = MpView::new();
        for i in 0..snap_at {
            v.push(msg(i));
        }
        let snap = v.clone();
        assert_eq!(v.shared_chunk_count(), v.chunk_count(), "clone shares all");
        // Pushing after the snapshot copies only the partial tail chunk.
        for i in snap_at..snap_at + CHUNK as u64 {
            v.push(msg(i));
        }
        assert_eq!(snap.len(), snap_at as usize);
        assert_eq!(snap.to_vec(), (0..snap_at).map(msg).collect::<Vec<_>>());
        assert_eq!(v.len(), (snap_at + CHUNK as u64) as usize);
        // The snapshot's full chunk (0) is still shared; only the tail
        // diverged.
        assert!(v.shared_chunk_count() >= 1);
    }

    #[test]
    fn owned_iteration_yields_copies() {
        let mut v = MpView::new();
        for i in 0..70 {
            v.push(msg(i));
        }
        let collected: Vec<MpMsg> = v.clone().into_iter().collect();
        assert_eq!(collected, v.to_vec());
    }

    #[test]
    fn equality_is_by_content() {
        let a = MpView::from_slice(&(0..65).map(msg).collect::<Vec<_>>());
        let b = MpView::from_slice(&(0..65).map(msg).collect::<Vec<_>>());
        let c = MpView::from_slice(&(0..64).map(msg).collect::<Vec<_>>());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tally_counts_distinct_ackers() {
        let mut t = AckTally::new(70); // stride 2: exercises multi-word masks
        let k = (3, 7, 0xabcd);
        assert_eq!(t.count(k), 0);
        assert_eq!(t.add(k, 0), 1);
        assert_eq!(t.add(k, 69), 2);
        assert_eq!(t.add(k, 69), 2, "duplicate ack is idempotent");
        assert_eq!(t.add(k, 64), 3);
        assert_eq!(t.count(k), 3);
        // Independent keys don't interfere.
        let k2 = (3, 7, 0xabce);
        assert_eq!(t.add(k2, 1), 1);
        assert_eq!(t.count(k), 3);
    }
}
