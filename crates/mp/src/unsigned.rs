//! The unsigned variant of the append-memory simulation.
//!
//! Section 4, closing remark: "The above algorithms would also work
//! without signatures. In that case, nodes can only append a value to
//! their own local memory, if they have seen it in at least f + 1
//! different views of the memories. Such an adjustment would, however,
//! reduce the resilience of our protocol."
//!
//! Without signatures the only authentication is the *channel*: a
//! receiver knows who a message physically came from, but cannot verify
//! claims about third parties. The standard fix is echoing: a node
//! **echoes** `(author, seq, value)` only if it received it directly from
//! `author`, and a value is **adopted** once `f + 1` distinct nodes vouch
//! for it (direct receipt counts as the author's own vouch plus each
//! echoer's). Byzantine nodes can echo fabrications freely, so:
//!
//! * **safety** needs `f ≥ t` (otherwise `t ≥ f + 1` Byzantine echoes
//!   certify a forgery);
//! * **liveness** needs `f + 1 ≤ n − t` (otherwise correct echoes alone
//!   cannot reach the threshold).
//!
//! Both constraints bind simultaneously only when `t < n/2` *and* `f` is
//! chosen correctly — a strictly more fragile regime than the signed
//! simulation, which is the resilience reduction the paper points at.
//! The tests below exhibit each failure mode.

use std::collections::{HashMap, HashSet};

/// A value instance in the unsigned system: `(author, seq, value)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UnsignedMsg {
    /// Claimed author.
    pub author: usize,
    /// Claimed sequence number.
    pub seq: u64,
    /// The value.
    pub value: i8,
}

/// Wire payloads of the unsigned protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Wire {
    /// Original broadcast by the author.
    Direct(UnsignedMsg),
    /// "I received this directly from its author."
    Echo(UnsignedMsg),
}

/// The unsigned echo-based simulation.
pub struct UnsignedSystem {
    n: usize,
    f: usize,
    byz: Vec<bool>,
    /// Per node: adopted values (its local memory M_v).
    views: Vec<HashSet<UnsignedMsg>>,
    /// Per node: vouchers per value (author-direct + echoers).
    vouchers: Vec<HashMap<UnsignedMsg, HashSet<usize>>>,
    /// Per node: what it has already echoed (echo once).
    echoed: Vec<HashSet<UnsignedMsg>>,
    inboxes: Vec<Vec<(usize, Wire)>>,
    next_seq: Vec<u64>,
    net_msgs: u64,
}

impl UnsignedSystem {
    /// Creates the system with adoption threshold `f + 1`.
    pub fn new(n: usize, f: usize, byz: &[usize]) -> UnsignedSystem {
        let mut flags = vec![false; n];
        for &b in byz {
            flags[b] = true;
        }
        UnsignedSystem {
            n,
            f,
            byz: flags,
            views: vec![HashSet::new(); n],
            vouchers: vec![HashMap::new(); n],
            echoed: vec![HashSet::new(); n],
            inboxes: vec![Vec::new(); n],
            next_seq: vec![0; n],
            net_msgs: 0,
        }
    }

    /// The adoption threshold `f + 1`.
    pub fn threshold(&self) -> usize {
        self.f + 1
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.net_msgs
    }

    /// A copy of a node's adopted view.
    pub fn view(&self, node: usize) -> Vec<UnsignedMsg> {
        let mut v: Vec<UnsignedMsg> = self.views[node].iter().copied().collect();
        v.sort_by_key(|m| (m.author, m.seq, m.value));
        v
    }

    fn broadcast(&mut self, from: usize, w: Wire) {
        for to in 0..self.n {
            self.net_msgs += 1;
            self.inboxes[to].push((from, w.clone()));
        }
    }

    /// A correct node appends: broadcast the value directly.
    pub fn append(&mut self, v: usize, value: i8) -> UnsignedMsg {
        assert!(!self.byz[v], "correct-only API");
        let m = UnsignedMsg {
            author: v,
            seq: self.next_seq[v],
            value,
        };
        self.next_seq[v] += 1;
        self.broadcast(v, Wire::Direct(m));
        m
    }

    /// Byzantine forgery: `b` broadcasts a Direct message claiming to be
    /// from `victim` — but over an authenticated channel the receivers see
    /// it arriving *from b*, so it only counts as an (illegitimate) echo.
    /// `b`'s accomplices can add their own echoes.
    pub fn byz_forge(&mut self, b: usize, forged: UnsignedMsg, accomplices: &[usize]) {
        assert!(self.byz[b], "byzantine-only API");
        self.broadcast(b, Wire::Echo(forged));
        for &acc in accomplices {
            assert!(self.byz[acc]);
            self.broadcast(acc, Wire::Echo(forged));
        }
    }

    /// Delivers everything until quiescent.
    pub fn settle(&mut self) {
        loop {
            let mut progressed = false;
            for node in 0..self.n {
                let pending = std::mem::take(&mut self.inboxes[node]);
                if pending.is_empty() {
                    continue;
                }
                progressed = true;
                if self.byz[node] {
                    continue; // Byzantine nodes follow their own script
                }
                for (from, w) in pending {
                    match w {
                        Wire::Direct(m) => {
                            // Channel authentication: a Direct only counts
                            // if it really came from its claimed author.
                            if from == m.author {
                                self.vouch(node, m, m.author);
                                if self.echoed[node].insert(m) {
                                    self.broadcast(node, Wire::Echo(m));
                                }
                            }
                            // else: drop — an unauthenticated claim.
                        }
                        Wire::Echo(m) => {
                            // An echo vouches with the echoer's identity.
                            self.vouch(node, m, from);
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn vouch(&mut self, node: usize, m: UnsignedMsg, voucher: usize) {
        let set = self.vouchers[node].entry(m).or_default();
        set.insert(voucher);
        if set.len() > self.f {
            self.views[node].insert(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_append_adopted_when_f_small_enough() {
        // n = 5, t = 1, f = 1: threshold 2 ≤ n − t; correct appends adopt.
        let mut sys = UnsignedSystem::new(5, 1, &[4]);
        let m = sys.append(0, 1);
        sys.settle();
        for v in 0..4 {
            assert!(sys.view(v).contains(&m), "node {v} missed the append");
        }
    }

    #[test]
    fn forgery_fails_when_f_at_least_t() {
        // f = 2 ≥ t = 2: the two Byzantine echoes cannot reach threshold 3.
        let mut sys = UnsignedSystem::new(6, 2, &[4, 5]);
        let forged = UnsignedMsg {
            author: 0,
            seq: 0,
            value: -1,
        };
        sys.byz_forge(4, forged, &[5]);
        sys.settle();
        for v in 0..4 {
            assert!(
                !sys.view(v).contains(&forged),
                "node {v} adopted a forgery at f ≥ t"
            );
        }
    }

    #[test]
    fn forgery_succeeds_when_f_below_t() {
        // f = 1 < t = 2: threshold 2, and two Byzantine echoes certify a
        // fabricated value "from" a correct node — the resilience
        // reduction the paper warns about.
        let mut sys = UnsignedSystem::new(6, 1, &[4, 5]);
        let forged = UnsignedMsg {
            author: 0,
            seq: 0,
            value: -1,
        };
        sys.byz_forge(4, forged, &[5]);
        sys.settle();
        let adopted = (0..4).filter(|&v| sys.view(v).contains(&forged)).count();
        assert_eq!(adopted, 4, "t > f must let the forgery through");
    }

    #[test]
    fn liveness_fails_when_threshold_exceeds_correct_count() {
        // n = 5, t = 3 silent, f = 2: threshold 3 > n − t = 2 correct
        // vouchers — a correct append can never be adopted by others.
        let mut sys = UnsignedSystem::new(5, 2, &[2, 3, 4]);
        let m = sys.append(0, 1);
        sys.settle();
        // Nodes 0 and 1 can gather at most 2 vouchers (authors 0 + echo 1).
        assert!(
            !sys.view(1).contains(&m),
            "threshold f+1 > n−t must block adoption"
        );
    }

    #[test]
    fn direct_claim_from_wrong_channel_is_dropped() {
        // A Direct message whose channel sender ≠ claimed author counts
        // for nothing at correct receivers (not even as an echo — the
        // sender did not claim receipt, it claimed authorship).
        let mut sys = UnsignedSystem::new(4, 0, &[3]);
        // Byzantine node 3 sends Direct claiming author 0 via byz_forge's
        // Echo path would vouch; craft the Direct case by hand:
        let forged = UnsignedMsg {
            author: 0,
            seq: 0,
            value: -1,
        };
        sys.broadcast(3, Wire::Direct(forged));
        sys.settle();
        for v in 0..3 {
            assert!(!sys.view(v).contains(&forged));
        }
    }

    #[test]
    fn echo_happens_once_message_cost_quadratic() {
        let mut sys = UnsignedSystem::new(6, 1, &[]);
        sys.append(0, 1);
        sys.settle();
        // 1 direct broadcast (n) + n echo broadcasts (n each) = n + n².
        assert_eq!(sys.messages_sent(), 6 + 36);
        assert_eq!(sys.threshold(), 2);
    }
}
