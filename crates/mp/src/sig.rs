//! Simulated unforgeable signatures.
//!
//! Section 4 assumes "the nodes sign their messages and … these signatures
//! cannot be forged". The proofs only use one property: a Byzantine node
//! cannot fabricate a message that verifies as coming from a correct node.
//! A keyed 64-bit MAC (SplitMix64 over a per-node secret and the content
//! hash) provides exactly that property inside the simulator: secrets live
//! in the [`KeyRing`]; Byzantine code never sees them, so the best forgery
//! is a blind 64-bit guess, which tests treat as impossible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A 64-bit message authentication tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

/// SplitMix64 finalizer — a strong 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice, for content hashing.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Holds every node's signing secret. Only the ring can sign; verification
/// is public.
pub struct KeyRing {
    secrets: Vec<u64>,
}

impl KeyRing {
    /// Generates `n` independent secrets from a seed.
    pub fn new(n: usize, seed: u64) -> KeyRing {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        KeyRing {
            secrets: (0..n).map(|_| rng.gen()).collect(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Signs `content` as node `author`. Only the simulator's trusted path
    /// calls this for correct nodes; Byzantine code signs only its own id.
    pub fn sign(&self, author: usize, content: u64) -> Signature {
        Signature(mix(self.secrets[author] ^ mix(content)))
    }

    /// Verifies that `sig` is `author`'s signature over `content`.
    pub fn verify(&self, author: usize, content: u64, sig: Signature) -> bool {
        self.sign(author, content) == sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let ring = KeyRing::new(4, 42);
        assert_eq!(ring.len(), 4);
        assert!(!ring.is_empty());
        let c = content_hash(b"hello");
        let s = ring.sign(2, c);
        assert!(ring.verify(2, c, s));
    }

    #[test]
    fn wrong_author_fails() {
        let ring = KeyRing::new(4, 42);
        let c = content_hash(b"hello");
        let s = ring.sign(2, c);
        assert!(!ring.verify(1, c, s));
        assert!(!ring.verify(3, c, s));
    }

    #[test]
    fn wrong_content_fails() {
        let ring = KeyRing::new(4, 42);
        let s = ring.sign(0, content_hash(b"aaa"));
        assert!(!ring.verify(0, content_hash(b"aab"), s));
    }

    #[test]
    fn blind_forgery_fails() {
        let ring = KeyRing::new(4, 42);
        let c = content_hash(b"target");
        // A Byzantine guess without the secret.
        for guess in 0..1000u64 {
            assert!(!ring.verify(0, c, Signature(guess)) || ring.sign(0, c) == Signature(guess));
        }
        // The real tag is astronomically unlikely to be < 1000; check it
        // verifies and nothing else did.
        let real = ring.sign(0, c);
        assert!(ring.verify(0, c, real));
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeyRing::new(2, 1);
        let b = KeyRing::new(2, 2);
        let c = content_hash(b"x");
        assert_ne!(a.sign(0, c), b.sign(0, c));
    }

    #[test]
    fn content_hash_distinguishes() {
        assert_ne!(content_hash(b"a"), content_hash(b"b"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
        assert_eq!(content_hash(b"same"), content_hash(b"same"));
    }
}
