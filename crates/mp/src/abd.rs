//! Algorithms 2 and 3: the ABD-style simulation of `M.append` / `M.read`.
//!
//! [`MpSystem`] hosts `n` nodes over a simulated network. Correct nodes
//! follow the paper's pseudocode exactly; Byzantine nodes are silent by
//! default and can additionally *equivocate* (send different signed values
//! to different nodes — legal append-memory behaviour, see Lemma 4.2's
//! discussion) or attempt *forgery* (rejected by signature verification).
//!
//! Asynchrony is modelled by the pump loop's delivery schedule plus a
//! *pause set*: paused nodes receive nothing until unpaused. Operations
//! complete on `> n/2` quorums, so any minority may be paused indefinitely
//! without blocking progress — the availability property the lemmas rely
//! on.

use crate::net::{Network, Payload};
use crate::sig::{content_hash, KeyRing, Signature};
use crate::view::{AckTally, MpView};
use am_net::Transport;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// A value in a node's local view of the simulated memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MpMsg {
    /// Authoring node.
    pub author: usize,
    /// The author's sequence number.
    pub seq: u64,
    /// The appended value.
    pub value: i8,
    /// Content hash (identity of the append instance — equivocated
    /// instances share `(author, seq)` but differ here).
    pub content: u64,
    /// The author's signature over `content`.
    pub sig: Signature,
}

/// Message-complexity statistics.
#[derive(Clone, Debug, Default)]
pub struct MpStats {
    /// Messages sent by each completed append operation.
    pub msgs_per_append: Vec<u64>,
    /// Messages sent by each completed read operation.
    pub msgs_per_read: Vec<u64>,
}

impl MpStats {
    /// Mean messages per append.
    pub fn mean_append(&self) -> f64 {
        mean(&self.msgs_per_append)
    }
    /// Mean messages per read.
    pub fn mean_read(&self) -> f64 {
        mean(&self.msgs_per_read)
    }
}

fn mean(v: &[u64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<u64>() as f64 / v.len() as f64
    }
}

/// Errors from the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpError {
    /// The operation could not reach its quorum (too many nodes paused or
    /// Byzantine-silent).
    Stalled,
    /// A Byzantine-only operation was invoked on a correct node or vice
    /// versa.
    WrongRole,
}

/// The simulated system: network, keys, local views.
///
/// Generic over the network substrate `T`: the default is the reliable
/// in-process [`Network`]; [`MpSystem::with_transport`] runs the same
/// Algorithms 2/3 unchanged over any other [`Transport`], such as the
/// fault-injecting [`am_net::SimNet`].
///
/// ```
/// use am_mp::MpSystem;
/// let mut sys = MpSystem::new(5, &[4], 42); // node 4 Byzantine-silent
/// let m = sys.append(0, 1).unwrap();        // Algorithm 2
/// let view = sys.read(2).unwrap();          // Algorithm 3
/// assert!(view.contains(&m));               // quorum intersection
/// ```
pub struct MpSystem<T: Transport<Payload> = Network> {
    net: T,
    ring: KeyRing,
    byz: Vec<bool>,
    paused: Vec<bool>,
    views: Vec<MpView>,
    /// Membership index per node for O(1) duplicate checks.
    seen: Vec<HashSet<u64>>,
    next_seq: Vec<u64>,
    next_op: u64,
    /// Ack tallies per (author, seq, content): dense bitmask counters.
    acks: AckTally,
    /// The pre-optimization ack bookkeeping, used in naive mode only and
    /// kept in-tree as the equivalence baseline (see
    /// [`MpSystem::set_naive`]).
    acks_hashmap: HashMap<(usize, u64, u64), HashSet<usize>>,
    /// `resp_hw[receiver][responder]`: how much of `responder`'s
    /// append-only view `receiver` has already merged from earlier
    /// `ViewResp`s. Everything below the mark has been verified and
    /// adopted here before, so later responses are merged from the mark
    /// on (the naive baseline re-walks full responses).
    resp_hw: Vec<Vec<usize>>,
    /// When set, run every optimized path through its naive baseline:
    /// deep-clone broadcasts, per-read view rebuilds, HashMap/HashSet ack
    /// tallies.
    naive: bool,
    stats: MpStats,
    /// Delivery budget per quorum wait, to turn deadlock into an error.
    max_pump: usize,
    /// Write (ack) quorum; defaults to the majority `n/2 + 1`.
    write_quorum: usize,
    /// Read (view-response) quorum; defaults to the majority `n/2 + 1`.
    /// Correctness needs quorum *intersection*: `write + read > n`.
    read_quorum: usize,
    /// Delivery order policy (asynchrony is delivery-order freedom).
    delivery: Delivery,
    delivery_rng: ChaCha8Rng,
    obs_appends: am_obs::Counter,
    obs_reads: am_obs::Counter,
    obs_pumped: am_obs::Counter,
}

/// Delivery-order policies: the simulated network may hand a node its
/// backlog in any order; the algorithms must be correct under all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Oldest message first (per-receiver FIFO).
    Fifo,
    /// Newest message first (maximally reordering adversary).
    Lifo,
    /// Seeded uniform choice among waiting receivers/messages.
    Random,
}

impl MpSystem {
    /// Creates a system of `n` nodes over the reliable in-process
    /// network; `byz` lists the Byzantine ones.
    pub fn new(n: usize, byz: &[usize], seed: u64) -> MpSystem {
        Self::with_transport(Network::new(n), byz, seed)
    }
}

impl<T: Transport<Payload>> MpSystem<T> {
    /// Creates a system over an arbitrary substrate (e.g. a fault-
    /// injecting [`am_net::SimNet`]); `byz` lists the Byzantine nodes.
    pub fn with_transport(net: T, byz: &[usize], seed: u64) -> MpSystem<T> {
        let n = net.n();
        let mut byz_flags = vec![false; n];
        for &b in byz {
            byz_flags[b] = true;
        }
        MpSystem {
            net,
            ring: KeyRing::new(n, seed),
            byz: byz_flags,
            paused: vec![false; n],
            views: vec![MpView::new(); n],
            seen: vec![HashSet::new(); n],
            next_seq: vec![0; n],
            next_op: 0,
            acks: AckTally::new(n),
            acks_hashmap: HashMap::new(),
            resp_hw: vec![vec![0; n]; n],
            naive: false,
            stats: MpStats::default(),
            max_pump: 1_000_000,
            write_quorum: n / 2 + 1,
            read_quorum: n / 2 + 1,
            delivery: Delivery::Fifo,
            delivery_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xde11),
            obs_appends: am_obs::counter("mp.appends"),
            obs_reads: am_obs::counter("mp.reads"),
            obs_pumped: am_obs::counter("mp.deliveries_pumped"),
        }
    }

    /// Overrides both quorum sizes at once (ablation: values ≤ n/2 lose
    /// quorum intersection and break the visibility guarantee).
    pub fn set_quorum(&mut self, q: usize) {
        self.set_quorums(q, q);
    }

    /// Sets the write (ack) and read (view-response) quorums separately.
    /// The ABD correctness condition is intersection: `w + r > n`; any
    /// such split works (e.g. w = 2, r = n−1 for a write-cheap register).
    pub fn set_quorums(&mut self, write: usize, read: usize) {
        assert!(write >= 1 && write <= self.n());
        assert!(read >= 1 && read <= self.n());
        self.write_quorum = write;
        self.read_quorum = read;
    }

    /// Sets the delivery-order policy.
    pub fn set_delivery(&mut self, d: Delivery) {
        self.delivery = d;
    }

    /// Switches the system onto its pre-optimization baselines: broadcasts
    /// deep-clone per recipient ([`Transport::broadcast_cloning`]), every
    /// `ReadReq` response rebuilds the responder's view from scratch
    /// ([`MpSystem::local_view_rebuild`]), and ack quorums are tallied in
    /// `HashMap<_, HashSet<_>>` (`acks_hashmap`). Outcomes are bit-equal
    /// to the optimized paths — the equivalence suite pins this — so the
    /// flag exists for benchmarking and differential testing. Set it
    /// before the first operation; toggling mid-run would split the ack
    /// bookkeeping across the two tallies.
    pub fn set_naive(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// The write quorum (defaults to `> n/2`).
    pub fn quorum(&self) -> usize {
        self.write_quorum
    }

    /// The read quorum (defaults to `> n/2`).
    pub fn read_quorum(&self) -> usize {
        self.read_quorum
    }

    /// Pauses delivery to `node` (models an arbitrarily slow node).
    pub fn pause(&mut self, node: usize) {
        self.paused[node] = true;
    }

    /// Resumes delivery to `node`.
    pub fn resume(&mut self, node: usize) {
        self.paused[node] = false;
    }

    /// A snapshot of `node`'s local view `M_v`. O(history / chunk): full
    /// chunks are shared with the live view, not copied.
    pub fn local_view(&self, node: usize) -> MpView {
        self.views[node].clone()
    }

    /// Borrows `node`'s live local view without snapshotting — the
    /// zero-cost read path for layers (e.g. `am-node`'s archival sync)
    /// that only iterate the new tail.
    pub fn view(&self, node: usize) -> &MpView {
        &self.views[node]
    }

    /// The naive O(history) baseline for [`MpSystem::local_view`]: deep-
    /// copies every message into a fresh vector, exactly what
    /// `views[node].clone()` cost when views were plain `Vec<MpMsg>`.
    /// Kept in-tree for the equivalence suite and BENCH_PR5.
    pub fn local_view_rebuild(&self, node: usize) -> Vec<MpMsg> {
        self.views[node].to_vec()
    }

    /// Distinct ackers recorded for an append instance, from whichever
    /// tally the current mode maintains.
    pub fn ack_count(&self, key: (usize, u64, u64)) -> usize {
        if self.naive {
            self.acks_hashmap.get(&key).map_or(0, HashSet::len)
        } else {
            self.acks.count(key)
        }
    }

    fn record_ack(&mut self, key: (usize, u64, u64), from: usize) {
        if self.naive {
            self.acks_hashmap.entry(key).or_default().insert(from);
        } else {
            self.acks.add(key, from);
        }
    }

    fn broadcast_payload(&mut self, from: usize, payload: Payload) {
        if self.naive {
            self.net.broadcast_cloning(from, payload);
        } else {
            self.net.broadcast(from, payload);
        }
    }

    /// Message-complexity statistics so far.
    pub fn stats(&self) -> &MpStats {
        &self.stats
    }

    /// Total network messages sent so far.
    pub fn total_sent(&self) -> u64 {
        self.net.sent_count()
    }

    /// The underlying network substrate (e.g. to read
    /// [`am_net::SimNet::stats`] after a run).
    pub fn transport(&self) -> &T {
        &self.net
    }

    /// Mutable access to the substrate, for drivers that steer it
    /// between operations (e.g. `am-node` advancing simulated time
    /// across a fault window with [`am_net::SimNet::advance_until`]).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// Consumes the system and hands back the substrate (e.g. to keep a
    /// `SimNet`'s statistics alive past the system's lifetime).
    pub fn into_transport(self) -> T {
        self.net
    }

    fn msg_content(author: usize, seq: u64, value: i8) -> u64 {
        let mut bytes = Vec::with_capacity(17);
        bytes.extend_from_slice(&(author as u64).to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.push(value as u8);
        content_hash(&bytes)
    }

    /// **Algorithm 2**: `M.append(value)` executed by correct node `v`.
    /// Returns once `> n/2` acks arrive.
    pub fn append(&mut self, v: usize, value: i8) -> Result<MpMsg, MpError> {
        if self.byz[v] {
            return Err(MpError::WrongRole);
        }
        let _op_span = am_obs::span("mp/append");
        self.obs_appends.inc();
        let seq = self.next_seq[v];
        self.next_seq[v] += 1;
        let content = Self::msg_content(v, seq, value);
        let sig = self.ring.sign(v, content);
        let msg = MpMsg {
            author: v,
            seq,
            value,
            content,
            sig,
        };
        let before = self.net.sent_count();
        self.broadcast_payload(
            v,
            Payload::Append {
                author: v,
                seq,
                value,
                content,
                sig,
            },
        );
        // Pump until the originator holds a quorum of acks.
        let key = (v, seq, content);
        let mut budget = self.max_pump;
        let _quorum_span = am_obs::span("quorum");
        loop {
            if self.ack_count(key) >= self.quorum() {
                break;
            }
            if budget == 0 || !self.pump_one() {
                return Err(MpError::Stalled);
            }
            budget -= 1;
        }
        self.stats
            .msgs_per_append
            .push(self.net.sent_count() - before);
        Ok(msg)
    }

    /// **Algorithm 3**: `M.read()` executed by correct node `v`. Returns
    /// the merged view once `> n/2` responses arrive.
    pub fn read(&mut self, v: usize) -> Result<MpView, MpError> {
        if self.byz[v] {
            return Err(MpError::WrongRole);
        }
        let _op_span = am_obs::span("mp/read");
        self.obs_reads.inc();
        let op = self.next_op;
        self.next_op += 1;
        let before = self.net.sent_count();
        self.broadcast_payload(v, Payload::ReadReq { op });
        // Collect responses by pumping; responses are tagged with `op`.
        let mut responders: HashSet<usize> = HashSet::new();
        let mut budget = self.max_pump;
        let _quorum_span = am_obs::span("quorum");
        while responders.len() < self.read_quorum {
            if budget == 0 {
                return Err(MpError::Stalled);
            }
            budget -= 1;
            match self.pump_one_tracking_read(v, op) {
                Some(Some(from)) => {
                    responders.insert(from);
                }
                Some(None) => {}
                None => return Err(MpError::Stalled),
            }
        }
        self.stats
            .msgs_per_read
            .push(self.net.sent_count() - before);
        Ok(self.views[v].clone())
    }

    /// Byzantine equivocation: node `b` sends value `val_a` to nodes in
    /// `set_a` and `val_b` to everyone else, under the *same* sequence
    /// number, both properly signed with `b`'s own key. Legal
    /// append-memory behaviour (Lemma 4.2): both values will be accepted.
    pub fn byz_equivocate(
        &mut self,
        b: usize,
        val_a: i8,
        val_b: i8,
        set_a: &[usize],
    ) -> Result<(MpMsg, MpMsg), MpError> {
        if !self.byz[b] {
            return Err(MpError::WrongRole);
        }
        let seq = self.next_seq[b];
        self.next_seq[b] += 1;
        let mk = |sys: &MpSystem<T>, value: i8| {
            let content = Self::msg_content(b, seq, value);
            MpMsg {
                author: b,
                seq,
                value,
                content,
                sig: sys.ring.sign(b, content),
            }
        };
        let ma = mk(self, val_a);
        let mb = mk(self, val_b);
        let in_a: HashSet<usize> = set_a.iter().copied().collect();
        for to in 0..self.n() {
            let m = if in_a.contains(&to) { &ma } else { &mb };
            self.net.send(
                b,
                to,
                Payload::Append {
                    author: m.author,
                    seq: m.seq,
                    value: m.value,
                    content: m.content,
                    sig: m.sig,
                },
            );
        }
        Ok((ma, mb))
    }

    /// Byzantine forgery attempt: node `b` broadcasts an append claiming
    /// to be from `victim` with a guessed signature. Correct receivers
    /// verify and reject; the system state is unchanged except for the
    /// wasted traffic. Returns the forged content hash so callers can
    /// assert it never surfaces in any view.
    pub fn byz_forge(
        &mut self,
        b: usize,
        victim: usize,
        value: i8,
        guess: u64,
    ) -> Result<u64, MpError> {
        if !self.byz[b] || self.byz[victim] {
            return Err(MpError::WrongRole);
        }
        let seq = self.next_seq[victim]; // plausible next seq
        let content = Self::msg_content(victim, seq, value);
        self.net.broadcast(
            b,
            Payload::Append {
                author: victim,
                seq,
                value,
                content,
                sig: Signature(guess),
            },
        );
        Ok(content)
    }

    /// Drains the network completely (no pauses honoured for termination
    /// measurement in tests). Returns delivered count.
    pub fn settle(&mut self) -> usize {
        let mut delivered = 0;
        while self.pump_one() {
            delivered += 1;
            if delivered > self.max_pump {
                break;
            }
        }
        delivered
    }

    /// Delivers one message to some unpaused node (round-robin-ish: first
    /// node with a backlog). Returns false when nothing is deliverable.
    fn pump_one(&mut self) -> bool {
        self.pump_one_tracking_read(usize::MAX, u64::MAX).is_some()
    }

    /// Like [`pump_one`], but reports when the delivered message was a
    /// `ViewResp{op}` consumed by `reader`: returns `Some(Some(from))` in
    /// that case, `Some(None)` for any other delivery, `None` when stuck.
    fn pump_one_tracking_read(&mut self, reader: usize, op: u64) -> Option<Option<usize>> {
        let n = self.n();
        // Pick the target node without materializing a candidate vector:
        // FIFO/LIFO take the first unpaused node with a backlog; Random
        // counts candidates, draws, then indexes — the same RNG stream
        // (one `gen_range(0..count)` call) as the old collected-Vec code.
        let deliverable = |sys: &Self, i: usize| !sys.paused[i] && sys.net.backlog(i) > 0;
        let target = loop {
            let found = match self.delivery {
                Delivery::Fifo | Delivery::Lifo => (0..n).find(|&i| deliverable(self, i)),
                Delivery::Random => {
                    let count = (0..n).filter(|&i| deliverable(self, i)).count();
                    (count > 0).then(|| {
                        let pick = self.delivery_rng.gen_range(0..count);
                        (0..n)
                            .filter(|&i| deliverable(self, i))
                            .nth(pick)
                            .expect("pick < count")
                    })
                }
            };
            if let Some(t) = found {
                break t;
            }
            // Nothing arrived for an unpaused node: progress simulated
            // time. When the substrate has nothing in flight either, the
            // system is stuck (reliable networks always return false).
            if !self.net.advance() {
                return None;
            }
        };
        let idx = match self.delivery {
            Delivery::Fifo => 0,
            Delivery::Lifo => self.net.backlog(target) - 1,
            Delivery::Random => self.delivery_rng.gen_range(0..self.net.backlog(target)),
        };
        let env = self.net.deliver_at(target, idx).expect("backlog > 0");
        self.obs_pumped.inc();
        let mut read_from: Option<usize> = None;
        if self.byz[target] {
            // Byzantine nodes are silent: they consume and ignore.
            return Some(None);
        }
        match env.payload {
            Payload::Append {
                author,
                seq,
                value,
                content,
                sig,
            } => {
                if self.ring.verify(author, content, sig) && !self.seen[target].contains(&content) {
                    self.seen[target].insert(content);
                    self.views[target].push(MpMsg {
                        author,
                        seq,
                        value,
                        content,
                        sig,
                    });
                    // Line 4 of Algorithm 2: broadcast the ack.
                    self.broadcast_payload(
                        target,
                        Payload::Ack {
                            author,
                            seq,
                            content,
                        },
                    );
                }
            }
            Payload::Ack {
                author,
                seq,
                content,
            } => {
                self.record_ack((author, seq, content), env.from);
            }
            Payload::ReadReq { op: req_op } => {
                // Line 3 of Algorithm 3: send the local view back. The
                // optimized path snapshots (full chunks shared, nothing
                // copied); the naive baseline rebuilds the whole view —
                // the old O(history) per-response cost.
                let view = if self.naive {
                    MpView::from_slice(&self.local_view_rebuild(target))
                } else {
                    self.views[target].clone()
                };
                self.net
                    .send(target, env.from, Payload::ViewResp { op: req_op, view });
            }
            Payload::ViewResp { op: resp_op, view } => {
                // Line 6 of Algorithm 3: adopt all newly seen valid
                // values. A responder's view is append-only, so every
                // message below the high-water mark of a previously
                // merged response from the same responder has already
                // been verified and adopted here — the optimized path
                // starts at the mark, the naive baseline re-walks the
                // whole response (the old O(history) merge).
                let start = if self.naive {
                    0
                } else {
                    self.resp_hw[target][env.from]
                };
                for m in view.iter_from(start) {
                    if self.ring.verify(m.author, m.content, m.sig)
                        && !self.seen[target].contains(&m.content)
                    {
                        self.seen[target].insert(m.content);
                        self.views[target].push(*m);
                    }
                }
                if view.len() > self.resp_hw[target][env.from] {
                    self.resp_hw[target][env.from] = view.len();
                }
                if target == reader && resp_op == op {
                    read_from = Some(env.from);
                }
            }
        }
        Some(read_from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_reaches_quorum_and_all_correct_views() {
        let mut sys = MpSystem::new(5, &[], 7);
        let m = sys.append(0, 1).unwrap();
        sys.settle();
        for v in 0..5 {
            assert!(
                sys.local_view(v).contains(&m),
                "node {v} missing the append"
            );
        }
    }

    #[test]
    fn read_sees_completed_appends() {
        // Lemma 4.2: a read quorum intersects every append quorum.
        let mut sys = MpSystem::new(5, &[], 7);
        let m = sys.append(0, 1).unwrap();
        // Node 4 read must include node 0's append even without settling.
        let view = sys.read(4).unwrap();
        assert!(view.contains(&m));
    }

    #[test]
    fn tolerates_silent_byzantine_minority() {
        // 2 of 5 Byzantine-silent: quorums of 3 still form.
        let mut sys = MpSystem::new(5, &[3, 4], 7);
        let m = sys.append(0, -1).unwrap();
        let view = sys.read(1).unwrap();
        assert!(view.contains(&m));
    }

    #[test]
    fn stalls_without_quorum() {
        // 3 of 5 Byzantine-silent: no quorum of acks can form.
        let mut sys = MpSystem::new(5, &[2, 3, 4], 7);
        assert_eq!(sys.append(0, 1).unwrap_err(), MpError::Stalled);
    }

    #[test]
    fn paused_minority_does_not_block() {
        let mut sys = MpSystem::new(5, &[], 7);
        sys.pause(3);
        sys.pause(4);
        let m = sys.append(0, 1).unwrap();
        let view = sys.read(1).unwrap();
        assert!(view.contains(&m));
        // Resumed nodes catch up via their backlog.
        sys.resume(3);
        sys.resume(4);
        sys.settle();
        assert!(sys.local_view(3).contains(&m));
    }

    #[test]
    fn equivocated_values_both_accepted() {
        // Lemma 4.2's point: nodes cannot tell which append came first, so
        // both equivocated values must be accepted.
        let mut sys = MpSystem::new(5, &[4], 7);
        let (ma, mb) = sys.byz_equivocate(4, 1, -1, &[0, 1]).unwrap();
        sys.settle();
        let view = sys.read(0).unwrap();
        assert!(view.contains(&ma), "value sent to A-side must survive");
        assert!(view.contains(&mb), "value sent to B-side must survive");
        assert_eq!(ma.seq, mb.seq, "same register position");
        assert_ne!(ma.content, mb.content);
    }

    #[test]
    fn forgery_is_rejected() {
        let mut sys = MpSystem::new(4, &[3], 7);
        sys.byz_forge(3, 0, 1, 0xdeadbeef).unwrap();
        sys.settle();
        for v in 0..3 {
            assert!(
                sys.local_view(v).is_empty(),
                "node {v} accepted a forged message"
            );
        }
    }

    #[test]
    fn role_checks() {
        let mut sys = MpSystem::new(4, &[3], 7);
        assert_eq!(sys.append(3, 1).unwrap_err(), MpError::WrongRole);
        assert_eq!(sys.read(3).unwrap_err(), MpError::WrongRole);
        assert_eq!(
            sys.byz_equivocate(0, 1, -1, &[]).unwrap_err(),
            MpError::WrongRole
        );
        assert_eq!(sys.byz_forge(0, 1, 1, 0).unwrap_err(), MpError::WrongRole);
        assert_eq!(sys.byz_forge(3, 3, 1, 0).unwrap_err(), MpError::WrongRole);
    }

    #[test]
    fn per_author_order_preserved() {
        let mut sys = MpSystem::new(5, &[], 7);
        for i in 0..4 {
            sys.append(2, i as i8).unwrap();
        }
        sys.settle();
        let view = sys.local_view(0);
        let seqs: Vec<u64> = view
            .iter()
            .filter(|m| m.author == 2)
            .map(|m| m.seq)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "register order is gap-free");
    }

    #[test]
    fn message_complexity_shapes() {
        // Append: 1 broadcast (n) + n ack-broadcasts (n each) = Θ(n²).
        // Read: 1 broadcast (n) + n responses = Θ(n).
        let mut sys = MpSystem::new(8, &[], 7);
        sys.append(0, 1).unwrap();
        sys.settle();
        sys.read(1).unwrap();
        sys.settle();
        let s = sys.stats();
        let a = s.msgs_per_append[0];
        let r = s.msgs_per_read[0];
        assert!(a >= 8 + 8 * (8 / 2), "append uses Θ(n²) messages, got {a}");
        assert!((8..8 * 8).contains(&r), "read uses Θ(n) messages, got {r}");
        assert!(s.mean_append() > s.mean_read());
    }

    #[test]
    fn sub_majority_quorum_breaks_visibility() {
        // The ablation behind "> n/2": with quorum 2 of 5, an append can
        // complete against {0, 1} while a later read consults {2, 3} —
        // disjoint quorums, invisible append.
        let mut sys = MpSystem::new(5, &[], 7);
        sys.set_quorum(2);
        // Node 0 appends; only nodes 0 and 1 are reachable.
        sys.pause(2);
        sys.pause(3);
        sys.pause(4);
        let m = sys.append(0, 1).expect("tiny quorum completes");
        // Now flip the partition: the reader can only reach {2, 3, 4},
        // never {0, 1} — and the stale append broadcast is *overtaken* by
        // the read traffic (LIFO reordering: asynchrony lets new messages
        // arrive before old ones).
        sys.resume(2);
        sys.resume(3);
        sys.resume(4);
        sys.pause(0);
        sys.pause(1);
        sys.set_delivery(Delivery::Lifo);
        let view = sys.read(4).expect("read completes on the other side");
        assert!(
            !view.contains(&m),
            "quorum 2 of 5 must lose the append — quorum intersection fails"
        );
    }

    #[test]
    fn asymmetric_quorums_with_intersection_work() {
        // w = 2, r = 4 in n = 5: w + r = 6 > 5 → every read intersects
        // every completed write, even though the write quorum is tiny.
        let mut sys = MpSystem::new(5, &[], 13);
        sys.set_quorums(2, 4);
        assert_eq!(sys.quorum(), 2);
        assert_eq!(sys.read_quorum(), 4);
        // Complete writes against only nodes {0, 1}.
        sys.pause(2);
        sys.pause(3);
        sys.pause(4);
        let m = sys.append(0, 1).expect("w=2 write completes");
        sys.resume(2);
        sys.resume(3);
        sys.resume(4);
        // Reorder so stale appends arrive last: the r=4 read must STILL
        // see the append, because 4 responders always include node 0 or 1.
        sys.set_delivery(Delivery::Lifo);
        let view = sys.read(4).expect("r=4 read completes");
        assert!(view.contains(&m), "w+r>n guarantees intersection");
    }

    #[test]
    fn asymmetric_quorums_without_intersection_fail() {
        // w = 2, r = 3 in n = 5: w + r = 5 ≤ n → a read can miss a write.
        let mut sys = MpSystem::new(5, &[], 13);
        sys.set_quorums(2, 3);
        sys.pause(2);
        sys.pause(3);
        sys.pause(4);
        let m = sys.append(0, 1).expect("w=2 write completes");
        sys.resume(2);
        sys.resume(3);
        sys.resume(4);
        sys.pause(0);
        sys.pause(1);
        sys.set_delivery(Delivery::Lifo);
        let view = sys.read(4).expect("read completes on the other side");
        assert!(
            !view.contains(&m),
            "w+r = n must lose the append in this schedule"
        );
    }

    #[test]
    fn delivery_reordering_preserves_correctness() {
        // The algorithms are asynchronous: any delivery order must give
        // the same guarantees.
        for d in [Delivery::Fifo, Delivery::Lifo, Delivery::Random] {
            let mut sys = MpSystem::new(5, &[4], 11);
            sys.set_delivery(d);
            let m1 = sys.append(0, 1).unwrap();
            let m2 = sys.append(1, -1).unwrap();
            let view = sys.read(3).unwrap();
            assert!(view.contains(&m1), "{d:?} lost append 1");
            assert!(view.contains(&m2), "{d:?} lost append 2");
            sys.settle();
            // Per-author sequence still gap-free everywhere.
            for v in 0..4 {
                let seqs: Vec<u64> = sys
                    .local_view(v)
                    .iter()
                    .filter(|m| m.author == 0)
                    .map(|m| m.seq)
                    .collect();
                assert_eq!(seqs, vec![0], "{d:?} broke node {v}'s register");
            }
        }
    }

    #[test]
    fn random_delivery_is_seeded_deterministic() {
        let run = |seed: u64| {
            let mut sys = MpSystem::new(5, &[], seed);
            sys.set_delivery(Delivery::Random);
            for i in 0..3 {
                sys.append(i, 1).unwrap();
            }
            sys.settle();
            sys.total_sent()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn pause_resume_views_and_ack_tallies_match_naive_baselines() {
        // The incremental structures must survive the pause/resume
        // catch-up path: a resumed node replays its whole backlog into an
        // MpView that already has live snapshots (earlier ViewResps), and
        // ack bitmasks keep counting across the pause. Run the same
        // script on a fast and a naive system and require identical
        // outcomes, then require each node's snapshot to equal its own
        // naive rebuild.
        let run = |naive: bool| {
            let mut sys = MpSystem::new(5, &[], 23);
            sys.set_naive(naive);
            sys.set_delivery(Delivery::Random);
            let mut keys = Vec::new();
            sys.pause(3);
            sys.pause(4);
            for i in 0..6 {
                let m = sys.append(i % 3, i as i8).unwrap();
                keys.push((m.author, m.seq, m.content));
            }
            let mid_read = sys.read(1).unwrap();
            sys.resume(3);
            sys.resume(4);
            sys.pause(0);
            for i in 0..4 {
                let m = sys.append(1 + i % 2, -(i as i8)).unwrap();
                keys.push((m.author, m.seq, m.content));
            }
            sys.resume(0);
            sys.settle();
            let acks: Vec<usize> = keys.iter().map(|&k| sys.ack_count(k)).collect();
            let views: Vec<Vec<MpMsg>> = (0..5).map(|v| sys.local_view(v).to_vec()).collect();
            // Snapshot ≡ naive rebuild, node by node.
            for v in 0..5 {
                assert_eq!(
                    sys.local_view(v).to_vec(),
                    sys.local_view_rebuild(v),
                    "node {v}: snapshot diverged from rebuild"
                );
            }
            (mid_read.to_vec(), acks, views, sys.total_sent())
        };
        let fast = run(false);
        let naive = run(true);
        assert_eq!(fast, naive, "fast and naive modes diverged");
        // Every append completed, so every key reached its quorum of 3.
        assert!(fast.1.iter().all(|&c| c >= 3));
    }

    #[test]
    fn reads_merge_views_monotonically() {
        let mut sys = MpSystem::new(5, &[], 7);
        let m1 = sys.append(0, 1).unwrap();
        let v1 = sys.read(3).unwrap();
        let m2 = sys.append(1, -1).unwrap();
        let v2 = sys.read(3).unwrap();
        assert!(v1.contains(&m1));
        assert!(v2.contains(&m1) && v2.contains(&m2));
        assert!(v2.len() >= v1.len());
    }
}
