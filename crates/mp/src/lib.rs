//! # am-mp — simulating the append memory over message passing
//!
//! Section 4 of the paper shows that the append memory is "not stronger
//! than the message passing model" by giving an ABD-style simulation:
//!
//! * **Algorithm 2** (`M.append`): broadcast the signed value; every
//!   receiver appends it to its local view and broadcasts an ack; the
//!   operation terminates on `> n/2` acks.
//! * **Algorithm 3** (`M.read`): broadcast a read request; every receiver
//!   sends its local view; after `> n/2` responses, merge every newly seen
//!   value and terminate.
//!
//! This crate implements the simulation over an in-process network with
//! per-node inboxes, simulated unforgeable signatures, Byzantine
//! behaviours (silence, equivocation, forgery attempts), message-complexity
//! instrumentation, and a conformance checker that the simulated object
//! satisfies append-memory semantics (Lemmas 4.1/4.2): every completed
//! correct append is visible to every subsequent correct read, and
//! equivocated Byzantine values are all accepted — exactly as in the real
//! append memory, where concurrent appends cannot be ordered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod net;
pub mod sig;
pub mod unsigned;
pub mod view;

pub use abd::{Delivery, MpError, MpMsg, MpStats, MpSystem};
pub use net::{Envelope, Network, Payload};
pub use sig::{KeyRing, Signature};
pub use unsigned::{UnsignedMsg, UnsignedSystem};
pub use view::{AckTally, MpView};
