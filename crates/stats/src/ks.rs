//! Kolmogorov–Smirnov goodness-of-fit machinery.
//!
//! The Poisson substrate's correctness is statistical: inter-arrival times
//! must be exponential, merged arrivals uniform over nodes. The KS
//! distance against a reference CDF gives the workspace a single,
//! dependency-free way to assert "this sample really has that
//! distribution" in tests and experiments.

/// The one-sample KS statistic: `sup_x |F_emp(x) − F(x)|` for a sorted
/// sample against a reference CDF.
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &mut [f64], cdf: F) -> f64 {
    assert!(!sample.is_empty(), "KS needs at least one sample");
    sample.sort_by(|a, b| a.total_cmp(b));
    let n = sample.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sample.iter().enumerate() {
        let fx = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((fx - lo).abs()).max((hi - fx).abs());
    }
    d
}

/// Critical KS value at significance α ∈ {0.05, 0.01} for sample size `n`
/// (asymptotic formula `c(α)·√(1/n)`; fine for n ≥ 35).
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    let c = if alpha <= 0.01 {
        1.63
    } else {
        1.36 // α = 0.05
    };
    c / (n as f64).sqrt()
}

/// Whether a sorted-or-not sample is consistent with the CDF at α = 0.05.
pub fn ks_fits<F: Fn(f64) -> f64>(sample: &mut [f64], cdf: F) -> bool {
    let n = sample.len();
    ks_statistic(sample, cdf) < ks_critical(n, 0.05)
}

/// Exponential CDF with the given rate.
pub fn exponential_cdf(rate: f64) -> impl Fn(f64) -> f64 {
    move |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-rate * x).exp()
        }
    }
}

/// Uniform CDF on `[0, hi)`.
pub fn uniform_cdf(hi: f64) -> impl Fn(f64) -> f64 {
    move |x: f64| (x / hi).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG uniform sampler for the tests.
    fn uniforms(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 + 0.5) / (1u64 << 31) as f64
            })
            .collect()
    }

    #[test]
    fn uniform_sample_fits_uniform() {
        let mut s = uniforms(500, 42);
        assert!(ks_fits(&mut s, uniform_cdf(1.0)));
    }

    #[test]
    fn uniform_sample_rejects_exponential() {
        let mut s = uniforms(500, 42);
        assert!(!ks_fits(&mut s, exponential_cdf(1.0)));
    }

    #[test]
    fn exponential_sample_fits_exponential() {
        // Inverse-CDF sampling of Exp(2).
        let mut s: Vec<f64> = uniforms(500, 7)
            .into_iter()
            .map(|u| -(1.0 - u).ln() / 2.0)
            .collect();
        assert!(ks_fits(&mut s, exponential_cdf(2.0)));
        // And rejects the wrong rate decisively.
        let mut s2 = s.clone();
        assert!(!ks_fits(&mut s2, exponential_cdf(0.5)));
    }

    #[test]
    fn statistic_is_zero_for_perfect_grid() {
        // Sample at the exact quantile mid-points of U[0,1]: the KS
        // distance is 1/(2n), far under critical.
        let n = 100;
        let mut s: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&mut s, uniform_cdf(1.0));
        assert!(d <= 0.5 / n as f64 + 1e-12);
    }

    #[test]
    fn critical_values_shrink_with_n() {
        assert!(ks_critical(100, 0.05) < ks_critical(50, 0.05));
        assert!(ks_critical(100, 0.01) > ks_critical(100, 0.05));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_sample_rejected() {
        let mut s: Vec<f64> = vec![];
        let _ = ks_statistic(&mut s, uniform_cdf(1.0));
    }
}
