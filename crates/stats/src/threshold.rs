//! Empirical resilience-threshold search.
//!
//! The headline experiments (E8/E9/E10) ask: *what is the largest Byzantine
//! fraction `t/n` at which the protocol still satisfies weak validity?*
//! [`search_threshold`] answers by scanning `t` upward and finding the last
//! value whose measured failure rate stays below a tolerance — monotonicity
//! in `t` is a property of every adversary in the paper (more Byzantine
//! nodes never hurt the adversary), which the scan also cross-checks.

use crate::estimator::Proportion;
use serde::{Deserialize, Serialize};

/// Result of a threshold search over `t = 0 .. n/2`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThresholdResult {
    /// The number of nodes used.
    pub n: u64,
    /// The largest `t` whose failure rate stayed below tolerance; `None`
    /// when even `t = 0` (or the smallest probed `t`) fails.
    pub max_tolerated_t: Option<u64>,
    /// The resulting empirical resilience `max_tolerated_t / n` (0 if none).
    pub resilience: f64,
    /// Per-probed-`t` failure tallies (t, tally), in probe order.
    pub curve: Vec<(u64, Proportion)>,
}

/// Scans Byzantine counts `ts` (ascending), calling
/// `failure_rate(t) -> Proportion` for each, and returns the last `t` whose
/// estimated failure probability is `< tol`. Stops probing after the first
/// `t` that exceeds `stop_above` (failures only get worse with larger `t`;
/// probing further wastes trials).
pub fn search_threshold<F>(
    n: u64,
    ts: &[u64],
    tol: f64,
    stop_above: f64,
    mut failure_rate: F,
) -> ThresholdResult
where
    F: FnMut(u64) -> Proportion,
{
    assert!(
        tol <= stop_above,
        "tolerance must not exceed the stop level"
    );
    let mut curve = Vec::with_capacity(ts.len());
    let mut max_ok: Option<u64> = None;
    for &t in ts {
        let tally = failure_rate(t);
        let est = tally.estimate();
        curve.push((t, tally));
        if est < tol {
            max_ok = Some(t);
        }
        if est > stop_above {
            break;
        }
    }
    ThresholdResult {
        n,
        max_tolerated_t: max_ok,
        resilience: max_ok.map_or(0.0, |t| t as f64 / n as f64),
        curve,
    }
}

/// Evenly spaced Byzantine counts from 1 to just under `n/2` (inclusive of
/// the boundary probe at `ceil(n/2) - 1` and one past it), the standard
/// probe grid of the resilience experiments.
pub fn byzantine_grid(n: u64, steps: usize) -> Vec<u64> {
    assert!(n >= 4 && steps >= 2);
    let half = n / 2;
    let mut ts: Vec<u64> = (0..steps)
        .map(|i| 1 + (i as u64 * (half.saturating_sub(1))) / (steps as u64 - 1))
        .collect();
    ts.push(half); // one probe at/over the theoretical wall
    ts.sort_unstable();
    ts.dedup();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_sharp_threshold() {
        // Synthetic failure curve: 0 below t=5, 1 at and above.
        let r = search_threshold(20, &[1, 2, 3, 4, 5, 6, 7], 0.1, 0.9, |t| {
            if t < 5 {
                Proportion::from_counts(0, 100)
            } else {
                Proportion::from_counts(100, 100)
            }
        });
        assert_eq!(r.max_tolerated_t, Some(4));
        assert!((r.resilience - 0.2).abs() < 1e-12);
        // Stops probing after the wall: t=6,7 never probed.
        assert_eq!(r.curve.len(), 5);
    }

    #[test]
    fn none_when_everything_fails() {
        let r = search_threshold(10, &[1, 2], 0.05, 0.5, |_| Proportion::from_counts(60, 100));
        assert_eq!(r.max_tolerated_t, None);
        assert_eq!(r.resilience, 0.0);
        assert_eq!(
            r.curve.len(),
            1,
            "stops after the first over-the-wall probe"
        );
    }

    #[test]
    fn gradual_curve_uses_tolerance() {
        // Failure rate t/10: tolerance 0.35 tolerates t=3.
        let r = search_threshold(10, &[1, 2, 3, 4, 5], 0.35, 0.9, |t| {
            Proportion::from_counts(t * 10, 100)
        });
        assert_eq!(r.max_tolerated_t, Some(3));
    }

    #[test]
    fn grid_shape() {
        let g = byzantine_grid(32, 6);
        assert_eq!(*g.first().unwrap(), 1);
        assert!(g.contains(&16));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        let g2 = byzantine_grid(8, 4);
        assert!(*g2.last().unwrap() == 4);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn validates_levels() {
        let _ = search_threshold(10, &[1], 0.5, 0.1, |_| Proportion::new());
    }
}
