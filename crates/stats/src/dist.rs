//! Probability distributions, implemented from scratch.
//!
//! The paper's Section 5 analysis lives on three distributions: the Poisson
//! process that gates memory access, the Binomial distribution of "is this
//! append correct or Byzantine", and the Normal approximation used in the
//! validity proofs (central limit theorem plus Gaussian tail bounds).

/// Error function, using the Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e-7 on all of ℝ).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// Normal cumulative distribution function `P[X ≤ x]` for `X ~ N(mu, sigma²)`.
pub fn normal_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    0.5 * (1.0 + erf((x - mu) / (sigma * std::f64::consts::SQRT_2)))
}

/// Gaussian upper-tail bound `P[X - mu ≥ a] ≤ exp(-a²/(2σ²))` — the bound
/// form the paper uses in Theorems 5.2 and 5.6.
pub fn normal_tail_bound(a: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    if a <= 0.0 {
        return 1.0;
    }
    (-a * a / (2.0 * sigma * sigma)).exp().min(1.0)
}

/// log(k!) via Stirling/lgamma-free summation for small k and Stirling's
/// series for large k (|error| < 1e-10 for k ≥ 20).
pub fn ln_factorial(k: u64) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k < 256 {
        let mut s = 0.0;
        for i in 2..=k {
            s += (i as f64).ln();
        }
        return s;
    }
    // Stirling's series on ln Γ(k+1).
    let x = k as f64 + 1.0;
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    (x - 0.5) * x.ln() - x + 0.5 * ln2pi + 1.0 / (12.0 * x) - 1.0 / (360.0 * x.powi(3))
        + 1.0 / (1260.0 * x.powi(5))
}

/// Poisson probability mass `P[X = k]` for `X ~ Pois(lambda)`.
pub fn poisson_pmf(k: u64, lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    ((k as f64) * lambda.ln() - lambda - ln_factorial(k)).exp()
}

/// Poisson cumulative distribution `P[X ≤ k]`.
pub fn poisson_cdf(k: u64, lambda: f64) -> f64 {
    (0..=k)
        .map(|i| poisson_pmf(i, lambda))
        .sum::<f64>()
        .min(1.0)
}

/// Poisson upper tail `P[X ≥ k]` via the Chernoff bound
/// `exp(-lambda) (e·lambda/k)^k` for `k > lambda`; exact summation would
/// underflow exactly where the paper's w.h.p. arguments live.
pub fn poisson_tail_chernoff(k: u64, lambda: f64) -> f64 {
    assert!(lambda >= 0.0);
    if (k as f64) <= lambda {
        return 1.0;
    }
    let kf = k as f64;
    ((kf * (1.0 + (lambda / kf).ln()) - lambda).exp()).min(1.0)
}

/// Probability that a `Pois(rate)` process produces **zero** events in an
/// interval of length `len` — the "no correct node appends during T"
/// probability at the heart of Lemma 5.5: `exp(-rate·len)`.
pub fn poisson_silence(rate: f64, len: f64) -> f64 {
    assert!(rate >= 0.0 && len >= 0.0);
    (-rate * len).exp()
}

/// Binomial probability mass `P[X = k]` for `X ~ Bin(n, p)`, computed in
/// log space to stay finite for large n.
pub fn binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_choose = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
    (ln_choose + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln()).exp()
}

/// Binomial cumulative distribution `P[X ≤ k]`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(i, n, p))
        .sum::<f64>()
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn erf_known_values() {
        assert!(close(erf(0.0), 0.0, 1e-9));
        assert!(close(erf(1.0), 0.8427007929, 2e-7));
        assert!(close(erf(-1.0), -0.8427007929, 2e-7));
        assert!(close(erf(2.0), 0.9953222650, 2e-7));
        assert!(close(erf(5.0), 1.0, 1e-7));
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert!(close(normal_cdf(0.0, 0.0, 1.0), 0.5, 1e-9));
        assert!(close(normal_cdf(1.96, 0.0, 1.0), 0.975, 1e-3));
        assert!(close(
            normal_cdf(1.0, 0.0, 1.0) + normal_cdf(-1.0, 0.0, 1.0),
            1.0,
            1e-9
        ));
        // Location-scale.
        assert!(close(normal_cdf(10.0, 10.0, 3.0), 0.5, 1e-9));
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        let mut s = 0.0;
        let h = 0.01;
        let mut x = -8.0;
        while x < 8.0 {
            s += normal_pdf(x, 0.0, 1.0) * h;
            x += h;
        }
        assert!(close(s, 1.0, 1e-3));
    }

    #[test]
    fn normal_tail_bound_dominates_true_tail() {
        for a in [0.5, 1.0, 2.0, 3.0] {
            let true_tail = 1.0 - normal_cdf(a, 0.0, 1.0);
            assert!(normal_tail_bound(a, 1.0) >= true_tail);
        }
        assert_eq!(normal_tail_bound(-1.0, 1.0), 1.0);
    }

    #[test]
    fn ln_factorial_matches_direct() {
        assert!(close(ln_factorial(0), 0.0, 1e-12));
        assert!(close(ln_factorial(1), 0.0, 1e-12));
        assert!(close(ln_factorial(5), 120f64.ln(), 1e-10));
        assert!(close(ln_factorial(10), 3628800f64.ln(), 1e-9));
        // Stirling branch consistency at the switch point.
        let direct: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!(close(ln_factorial(300), direct, 1e-8));
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        for lambda in [0.5, 2.0, 10.0] {
            let s: f64 = (0..200).map(|k| poisson_pmf(k, lambda)).sum();
            assert!(close(s, 1.0, 1e-9), "lambda={lambda}");
        }
    }

    #[test]
    fn poisson_pmf_known_values() {
        assert!(close(poisson_pmf(0, 1.0), (-1.0f64).exp(), 1e-12));
        assert!(close(
            poisson_pmf(2, 3.0),
            9.0 / 2.0 * (-3.0f64).exp(),
            1e-10
        ));
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(3, 0.0), 0.0);
    }

    #[test]
    fn poisson_cdf_monotone() {
        let mut prev = 0.0;
        for k in 0..30 {
            let c = poisson_cdf(k, 5.0);
            assert!(c >= prev);
            prev = c;
        }
        assert!(close(prev, 1.0, 1e-6));
    }

    #[test]
    fn poisson_chernoff_dominates_exact_tail() {
        let lambda = 4.0;
        for k in 5..20u64 {
            let exact = 1.0 - poisson_cdf(k - 1, lambda);
            assert!(
                poisson_tail_chernoff(k, lambda) + 1e-12 >= exact,
                "k={k}: chernoff {} < exact {}",
                poisson_tail_chernoff(k, lambda),
                exact
            );
        }
        assert_eq!(poisson_tail_chernoff(2, 4.0), 1.0);
    }

    #[test]
    fn poisson_silence_is_exp() {
        assert!(close(poisson_silence(2.0, 3.0), (-6.0f64).exp(), 1e-12));
        assert_eq!(poisson_silence(0.0, 5.0), 1.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one_and_known() {
        let s: f64 = (0..=20).map(|k| binomial_pmf(k, 20, 0.3)).sum();
        assert!(close(s, 1.0, 1e-9));
        assert!(close(binomial_pmf(1, 2, 0.5), 0.5, 1e-12));
        assert!(close(binomial_pmf(0, 10, 0.0), 1.0, 1e-12));
        assert!(close(binomial_pmf(10, 10, 1.0), 1.0, 1e-12));
        assert_eq!(binomial_pmf(5, 3, 0.4), 0.0);
    }

    #[test]
    fn binomial_cdf_median_ish() {
        // Bin(100, 0.5): P[X ≤ 49] just under a half.
        let c = binomial_cdf(49, 100, 0.5);
        assert!(c > 0.4 && c < 0.5);
        assert!(close(binomial_cdf(100, 100, 0.5), 1.0, 1e-9));
    }

    #[test]
    fn binomial_large_n_stable() {
        // Must not over/underflow for n = 10_000.
        let p = binomial_pmf(5000, 10_000, 0.5);
        assert!(p > 0.0 && p < 1.0);
        assert!(close(p, 0.00797871, 1e-5)); // ≈ 1/sqrt(pi*n/2)
    }
}
