//! # am-stats — statistics substrate for the append-memory reproduction
//!
//! Everything the experiments need to compare *measured* protocol behaviour
//! against the paper's *proved* bounds, implemented from scratch:
//!
//! * [`dist`] — Normal, Poisson, and Binomial distributions (pmf/pdf, cdf,
//!   tail bounds) with an `erf` implementation accurate to ~1e-7.
//! * [`estimator`] — Monte-Carlo proportion estimators with Wilson-score
//!   confidence intervals.
//! * [`sequential`] — adaptive stopping rules: stop a point's sampling
//!   loop once its Wilson half-width reaches a target or a budget cap.
//! * [`threshold`] — empirical resilience-threshold search: the largest
//!   Byzantine fraction at which a protocol still satisfies a property.
//! * [`theory`] — the paper's closed-form bounds (chain resilience
//!   `1/(1+λ(n−t))` from Theorem 5.4, the validity tails of Theorems 5.2
//!   and 5.6, and the Lemma 5.5 silence/withhold bounds).
//! * [`table`] — plain-text table and series rendering for the experiment
//!   harness.
//! * [`summary`] — running mean/variance/quantile summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod estimator;
pub mod ks;
pub mod sequential;
pub mod summary;
pub mod table;
pub mod theory;
pub mod threshold;

pub use dist::{binomial_pmf, erf, normal_cdf, normal_pdf, poisson_cdf, poisson_pmf};
pub use estimator::{Proportion, WilsonInterval};
pub use ks::{exponential_cdf, ks_fits, ks_statistic, uniform_cdf};
pub use sequential::{required_trials, StopReason, StopRule};
pub use summary::Summary;
pub use table::{Series, Table};
pub use theory::{
    chain_resilience_bound, dag_validity_failure_bound, timestamp_validity_failure_bound,
    withhold_burst_bound,
};
pub use threshold::{search_threshold, ThresholdResult};
