//! Monte-Carlo proportion estimation with confidence intervals.
//!
//! Experiments measure event probabilities (validity failures, agreement
//! failures) by repeated simulation; results are reported with Wilson-score
//! intervals, which behave sanely at the extremes (0 or all successes) where
//! the paper's w.h.p. claims put most of the mass.

use serde::{Deserialize, Serialize};

/// Running tally of a Bernoulli proportion.
///
/// ```
/// use am_stats::Proportion;
/// let mut p = Proportion::new();
/// for i in 0..100 { p.record(i % 5 == 0); }
/// assert!((p.estimate() - 0.2).abs() < 1e-12);
/// assert!(p.wilson95().contains(0.2));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    /// Number of positive outcomes.
    pub hits: u64,
    /// Number of trials.
    pub trials: u64,
}

impl Proportion {
    /// Empty tally.
    pub fn new() -> Proportion {
        Proportion::default()
    }

    /// Creates a tally directly from counts.
    pub fn from_counts(hits: u64, trials: u64) -> Proportion {
        assert!(hits <= trials, "hits cannot exceed trials");
        Proportion { hits, trials }
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Merges another tally (for parallel reduction).
    pub fn merge(&mut self, other: Proportion) {
        self.hits += other.hits;
        self.trials += other.trials;
    }

    /// Point estimate `hits / trials`; 0 for an empty tally.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Wilson-score interval at confidence `z` standard deviations
    /// (z = 1.96 for 95%).
    pub fn wilson(&self, z: f64) -> WilsonInterval {
        if self.trials == 0 {
            return WilsonInterval { lo: 0.0, hi: 1.0 };
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        WilsonInterval {
            lo: (center - half).max(0.0),
            hi: (center + half).min(1.0),
        }
    }

    /// Wilson interval at 95% confidence.
    pub fn wilson95(&self) -> WilsonInterval {
        self.wilson(1.959964)
    }
}

/// A two-sided confidence interval for a proportion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WilsonInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl WilsonInterval {
    /// Whether the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_estimate() {
        let mut p = Proportion::new();
        for i in 0..100 {
            p.record(i % 4 == 0);
        }
        assert_eq!(p.trials, 100);
        assert_eq!(p.hits, 25);
        assert!((p.estimate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_tally_is_safe() {
        let p = Proportion::new();
        assert_eq!(p.estimate(), 0.0);
        let w = p.wilson95();
        assert_eq!(w.lo, 0.0);
        assert_eq!(w.hi, 1.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Proportion::from_counts(3, 10);
        let b = Proportion::from_counts(7, 10);
        a.merge(b);
        assert_eq!(a, Proportion::from_counts(10, 20));
    }

    #[test]
    #[should_panic(expected = "hits cannot exceed trials")]
    fn from_counts_validates() {
        let _ = Proportion::from_counts(5, 3);
    }

    #[test]
    fn wilson_covers_point_estimate() {
        let p = Proportion::from_counts(40, 100);
        let w = p.wilson95();
        assert!(w.contains(p.estimate()));
        assert!(w.lo > 0.3 && w.hi < 0.5);
    }

    #[test]
    fn wilson_sane_at_extremes() {
        let all = Proportion::from_counts(50, 50).wilson95();
        assert!(
            all.hi > 0.999 && all.lo > 0.9,
            "lo={} hi={}",
            all.lo,
            all.hi
        );
        let none = Proportion::from_counts(0, 50).wilson95();
        assert!(
            none.lo < 0.001 && none.hi < 0.1,
            "lo={} hi={}",
            none.lo,
            none.hi
        );
    }

    #[test]
    fn wilson_narrows_with_samples() {
        let small = Proportion::from_counts(5, 10).wilson95();
        let large = Proportion::from_counts(500, 1000).wilson95();
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson_coverage_simulation() {
        // Crude frequentist check: for p=0.3, the 95% interval from 200
        // trials should contain the truth almost always across seeds.
        // Deterministic LCG to stay dependency-free.
        let mut state = 0x12345678u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let mut covered = 0;
        let reps = 200;
        for _ in 0..reps {
            let mut tally = Proportion::new();
            for _ in 0..200 {
                tally.record(rand01() < 0.3);
            }
            if tally.wilson95().contains(0.3) {
                covered += 1;
            }
        }
        assert!(
            covered as f64 / reps as f64 > 0.85,
            "covered {covered}/{reps}"
        );
    }
}
