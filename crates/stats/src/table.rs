//! Plain-text tables and series for the experiment harness.
//!
//! Each experiment prints a table (rows of labelled values, paper bound vs
//! measured) and optionally a series (an x→y curve, the textual stand-in
//! for a figure).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A column-aligned plain-text table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:>w$}", c, w = width[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 3 * cols + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// An x→y curve with a label — the textual stand-in for one figure line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Line label (e.g. "chain (measured)" / "chain (Thm 5.4 bound)").
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new<S: Into<String>>(label: S) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders as `label: (x, y) (x, y) ...` with fixed precision.
    pub fn render(&self) -> String {
        let pts: Vec<String> = self
            .points
            .iter()
            .map(|(x, y)| format!("({x:.4}, {y:.4})"))
            .collect();
        format!("{}: {}", self.label, pts.join(" "))
    }

    /// Renders several series as a crude ASCII line chart, `height` rows
    /// tall, shared y-scale — enough to eyeball a crossover in a terminal.
    pub fn ascii_chart(series: &[Series], height: usize) -> String {
        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() || height < 2 {
            return String::from("(no data)");
        }
        let (ymin, ymax) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
                (lo.min(y), hi.max(y))
            });
        let span = (ymax - ymin).max(1e-12);
        let width: usize = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
        let mut grid = vec![vec![b' '; width]; height];
        for (si, s) in series.iter().enumerate() {
            let glyph = b"*+ox#@"[si % 6];
            for (xi, &(_, y)) in s.points.iter().enumerate() {
                let row = ((ymax - y) / span * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][xi] = glyph;
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let yval = ymax - span * i as f64 / (height - 1) as f64;
            let _ = writeln!(out, "{yval:7.3} |{}", String::from_utf8_lossy(row));
        }
        let _ = writeln!(out, "        +{}", "-".repeat(width));
        for (si, s) in series.iter().enumerate() {
            let glyph = b"*+ox#@"[si % 6] as char;
            let _ = writeln!(out, "        {glyph} = {}", s.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "measured", "bound"]);
        t.row(&["16".into(), "0.4375".into(), "0.5".into()]);
        t.row(&["128".into(), "0.49".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| measured |") || s.contains("measured"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Column alignment: every data line has the same length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn series_render() {
        let mut s = Series::new("chain");
        s.push(1.0, 0.5);
        s.push(2.0, 1.0 / 3.0);
        let r = s.render();
        assert!(r.starts_with("chain:"));
        assert!(r.contains("(1.0000, 0.5000)"));
    }

    #[test]
    fn ascii_chart_draws_both_series() {
        let mut a = Series::new("flat");
        let mut b = Series::new("decay");
        for i in 0..10 {
            a.push(i as f64, 0.5);
            b.push(i as f64, 1.0 / (1.0 + i as f64));
        }
        let chart = Series::ascii_chart(&[a, b], 8);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
        assert!(chart.contains("flat"));
        assert!(chart.contains("decay"));
    }

    #[test]
    fn ascii_chart_empty_safe() {
        assert_eq!(Series::ascii_chart(&[], 5), "(no data)");
    }
}
