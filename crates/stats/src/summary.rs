//! Running numeric summaries (Welford mean/variance + exact quantiles).

use serde::{Deserialize, Serialize};

/// Accumulates samples and reports mean, variance, min/max, and quantiles.
///
/// Keeps all samples (experiments are at most ~10⁶ trials) so quantiles are
/// exact; mean and variance use Welford's online algorithm so they are also
/// available without a sort.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "summary samples cannot be NaN");
        self.samples.push(x);
        let n = self.samples.len() as f64;
        let d = x - self.mean;
        self.mean += d / n;
        self.m2 += d * (x - self.mean);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &x in &other.samples {
            self.add(x);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            self.m2 / (self.samples.len() as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (NaN-free by construction); 0 when empty.
    pub fn min(&self) -> f64 {
        if self
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .is_finite()
        {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            0.0
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact quantile by nearest-rank (q in \[0,1\]); 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Summary::new();
        for x in 1..=10 {
            s.add(x as f64);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.1), 1.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.quantile(1.0), 10.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
            all.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }
}
