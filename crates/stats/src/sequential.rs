//! Sequential (adaptive) stopping rules for Monte-Carlo proportion
//! estimation.
//!
//! Fixed-budget Monte-Carlo spends the same number of trials at every
//! sweep point, but the *information* a trial buys varies wildly: near a
//! failure rate of 0 or 1 the Wilson interval collapses after a few dozen
//! trials, while points near the resilience threshold stay noisy for
//! thousands. A [`StopRule`] encodes the alternative: run trials in
//! batches and stop as soon as the Wilson half-width falls below a
//! target, or a hard budget cap is hit. The rule itself is pure
//! statistics — the batching, parallel fan-out, and checkpointing live in
//! `am-protocols::sweep`, which consults the rule between batches.
//!
//! ```
//! use am_stats::{Proportion, StopReason, StopRule};
//! let rule = StopRule::wilson95(0.05, 10_000);
//! // An all-failures tally pins the interval quickly...
//! let extreme = Proportion::from_counts(0, 200);
//! assert_eq!(rule.check(&extreme), Some(StopReason::HalfWidth));
//! // ...while a 50/50 tally at the same size must keep sampling.
//! let mid = Proportion::from_counts(100, 200);
//! assert_eq!(rule.check(&mid), None);
//! ```

use crate::estimator::Proportion;
use serde::{Deserialize, Serialize};

/// Why a sequential estimation loop stopped at a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The Wilson half-width dropped below the target.
    HalfWidth,
    /// The trial budget was exhausted before the target was reached.
    Budget,
    /// No early stopping was requested — the full fixed budget ran.
    Fixed,
}

impl StopReason {
    /// Snake-case label for JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::HalfWidth => "half_width",
            StopReason::Budget => "budget",
            StopReason::Fixed => "fixed",
        }
    }
}

/// A sequential stopping rule: stop once the Wilson interval at `z`
/// standard deviations has half-width ≤ `target_half_width`, but never
/// before `min_trials` and never beyond `max_trials`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopRule {
    /// Target half-width of the Wilson interval.
    pub target_half_width: f64,
    /// Confidence in standard deviations (1.96 for 95%).
    pub z: f64,
    /// Hard cap on trials per point.
    pub max_trials: u64,
    /// Trials below which the half-width check never fires (guards
    /// against a lucky first batch stopping on no evidence).
    pub min_trials: u64,
}

impl StopRule {
    /// The conventional rule: 95% Wilson interval, stop at the given
    /// half-width, cap at `max_trials`, require at least one batch worth
    /// of evidence (32 trials).
    pub fn wilson95(target_half_width: f64, max_trials: u64) -> StopRule {
        assert!(
            target_half_width > 0.0,
            "target half-width must be positive"
        );
        StopRule {
            target_half_width,
            z: 1.959964,
            max_trials,
            min_trials: 32,
        }
    }

    /// The achieved half-width of `tally`'s Wilson interval at this
    /// rule's confidence.
    pub fn half_width(&self, tally: &Proportion) -> f64 {
        tally.wilson(self.z).width() / 2.0
    }

    /// Whether the tally satisfies the rule: `Some(reason)` to stop,
    /// `None` to keep sampling.
    pub fn check(&self, tally: &Proportion) -> Option<StopReason> {
        if tally.trials >= self.min_trials && self.half_width(tally) <= self.target_half_width {
            return Some(StopReason::HalfWidth);
        }
        if tally.trials >= self.max_trials {
            return Some(StopReason::Budget);
        }
        None
    }

    /// Size of the next batch when `done` trials have run and the caller
    /// batches in chunks of `batch`: the chunk, clipped to the budget.
    pub fn next_batch(&self, done: u64, batch: u64) -> u64 {
        batch.min(self.max_trials.saturating_sub(done))
    }
}

/// Planning helper: the approximate trial count at which a proportion
/// near `p` reaches Wilson half-width `h` at confidence `z` — the
/// normal-approximation inversion `n ≈ z²·p(1−p)/h²`, floored at the
/// `p = 0` limit `n ≈ z²(1−2h)/(4h)` that keeps the estimate sane at the
/// extremes the experiments live in.
pub fn required_trials(p: f64, h: f64, z: f64) -> u64 {
    assert!(h > 0.0 && h < 0.5, "half-width must be in (0, 0.5)");
    let variance_term = (z * z * p * (1.0 - p) / (h * h)).ceil();
    let extreme_term = (z * z * (1.0 - 2.0 * h) / (4.0 * h)).ceil();
    (variance_term as u64).max(extreme_term as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_stop_early_midpoints_do_not() {
        let rule = StopRule::wilson95(0.05, 5000);
        assert_eq!(
            rule.check(&Proportion::from_counts(0, 128)),
            Some(StopReason::HalfWidth)
        );
        assert_eq!(
            rule.check(&Proportion::from_counts(128, 128)),
            Some(StopReason::HalfWidth)
        );
        assert_eq!(rule.check(&Proportion::from_counts(64, 128)), None);
    }

    #[test]
    fn budget_cap_fires_when_target_unreachable() {
        let rule = StopRule::wilson95(0.001, 200);
        assert_eq!(
            rule.check(&Proportion::from_counts(100, 200)),
            Some(StopReason::Budget)
        );
        assert_eq!(rule.check(&Proportion::from_counts(99, 199)), None);
    }

    #[test]
    fn min_trials_guards_the_first_batches() {
        let rule = StopRule {
            target_half_width: 0.2,
            z: 1.959964,
            max_trials: 1000,
            min_trials: 50,
        };
        // 0/40 would satisfy the width target but lacks the evidence floor.
        assert_eq!(rule.check(&Proportion::from_counts(0, 40)), None);
        assert_eq!(
            rule.check(&Proportion::from_counts(0, 50)),
            Some(StopReason::HalfWidth)
        );
    }

    #[test]
    fn half_width_matches_wilson() {
        let rule = StopRule::wilson95(0.05, 1000);
        let tally = Proportion::from_counts(30, 100);
        let w = tally.wilson95();
        assert!((rule.half_width(&tally) - w.width() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn next_batch_clips_to_budget() {
        let rule = StopRule::wilson95(0.05, 100);
        assert_eq!(rule.next_batch(0, 32), 32);
        assert_eq!(rule.next_batch(96, 32), 4);
        assert_eq!(rule.next_batch(100, 32), 0);
        assert_eq!(rule.next_batch(200, 32), 0);
    }

    #[test]
    fn required_trials_shapes() {
        // Midpoint needs the most trials; extremes need far fewer but
        // never zero.
        let mid = required_trials(0.5, 0.05, 1.96);
        let edge = required_trials(0.0, 0.05, 1.96);
        assert!(mid > 300 && mid < 500, "mid = {mid}");
        assert!(edge >= 15 && edge < mid, "edge = {edge}");
        // Tighter targets cost more.
        assert!(required_trials(0.5, 0.01, 1.96) > mid);
    }

    #[test]
    fn stop_reason_labels() {
        assert_eq!(StopReason::HalfWidth.label(), "half_width");
        assert_eq!(StopReason::Budget.label(), "budget");
        assert_eq!(StopReason::Fixed.label(), "fixed");
    }

    #[test]
    fn stop_reason_serde_round_trip() {
        for r in [StopReason::HalfWidth, StopReason::Budget, StopReason::Fixed] {
            let s = serde_json::to_string(&r).unwrap();
            let back: StopReason = serde_json::from_str(&s).unwrap();
            assert_eq!(back, r);
        }
    }
}
