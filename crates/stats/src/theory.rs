//! The paper's closed-form bounds, as executable functions.
//!
//! Each experiment prints these next to its measured values; the theorem
//! numbers refer to "The Append Memory Model: Why BlockDAGs Excel
//! Blockchains" (SPAA 2020).

/// **Theorem 5.4**: the resilience of Byzantine agreement on the chain with
/// randomized tie-breaking: `t/n ≤ 1 / (1 + λ(n − t))`.
///
/// Takes the *correct-append rate* `r = λ·(n−t)` per interval Δ and returns
/// the maximal tolerable Byzantine fraction. `r = 1 → 1/2`, `r = 2 → 1/3`.
///
/// ```
/// use am_stats::chain_resilience_bound;
/// assert_eq!(chain_resilience_bound(1.0), 0.5);
/// assert!((chain_resilience_bound(2.0) - 1.0/3.0).abs() < 1e-12);
/// ```
pub fn chain_resilience_bound(correct_rate: f64) -> f64 {
    assert!(correct_rate >= 0.0, "rate must be non-negative");
    1.0 / (1.0 + correct_rate)
}

/// **Theorem 5.3**: the deterministic tie-breaking rule fails at `t ≥ n/3`;
/// the tolerable fraction is therefore `1/3` regardless of the rate.
pub fn chain_deterministic_resilience_bound() -> f64 {
    1.0 / 3.0
}

/// **Theorem 5.2**: upper bound on the probability that the
/// absolute-timestamp baseline (Algorithm 4) violates validity: the
/// Gaussian tail `exp(−μ²/(2σ²))` with `μ = k(n−2t)/n` and
/// `σ² = k − μ²` (clamped to the Bernoulli-sum variance when the paper's
/// simplification would go non-positive).
pub fn timestamp_validity_failure_bound(k: u64, n: u64, t: u64) -> f64 {
    assert!(t < n, "t must be less than n");
    if k == 0 {
        return 1.0;
    }
    let kf = k as f64;
    let gap = (n - 2 * t.min(n / 2)) as f64;
    let p_gap = (n as f64 - 2.0 * t as f64) / n as f64; // may be ≤ 0 if t ≥ n/2
    if p_gap <= 0.0 {
        return 1.0;
    }
    let mu = kf * p_gap;
    // Variance of the sum of k ±1 coin flips with bias p_gap: k(1 − p_gap²).
    let sigma2 = (kf * (1.0 - p_gap * p_gap)).max(f64::MIN_POSITIVE);
    let _ = gap;
    (-(mu * mu) / (2.0 * sigma2)).exp().min(1.0)
}

/// **Lemma 5.5**: bound on the length of a correct-silence interval: the
/// probability that no correct node appends for time `Δ·log n` is at most
/// `n^{−λ(n−t)/n·…}`; we expose the direct form
/// `P[T > x] = exp(−rate_corr · x)` with `rate_corr = λ(n−t)/Δ`, evaluated
/// at `x = Δ·log n`.
pub fn silence_interval_tail(lambda: f64, n: u64, t: u64, delta: f64) -> f64 {
    assert!(t < n);
    let rate_corr = lambda * ((n - t) as f64) / delta;
    (-(rate_corr) * delta * (n as f64).ln()).exp()
}

/// **Lemma 5.5**: w.h.p. bound on the number of *extra* Byzantine values the
/// withheld chain can insert before the decision: `O(λ log n)`; we return
/// the paper's explicit `2·λ·log n` figure.
pub fn withhold_burst_bound(lambda: f64, n: u64) -> f64 {
    2.0 * lambda * (n as f64).ln()
}

/// **Theorem 5.6**: upper bound on the DAG validity failure — same Gaussian
/// machinery as Theorem 5.2 but the correct margin must additionally beat
/// the Lemma 5.5 burst of `2λ log n`:
/// `P[Σ Y_i < 2λ log n] ≤ exp(−(√k·(n−2t)/n − λ log n/√(2k))²)`.
pub fn dag_validity_failure_bound(k: u64, n: u64, t: u64, lambda: f64) -> f64 {
    assert!(t < n);
    if k == 0 {
        return 1.0;
    }
    let kf = k as f64;
    let p_gap = (n as f64 - 2.0 * t as f64) / n as f64;
    if p_gap <= 0.0 {
        return 1.0;
    }
    let margin = kf.sqrt() * p_gap - lambda * (n as f64).ln() / (2.0 * kf).sqrt();
    if margin <= 0.0 {
        return 1.0;
    }
    (-(margin * margin)).exp().min(1.0)
}

/// Minimal `k` for which [`timestamp_validity_failure_bound`] drops below
/// `eps` — the "k = Ω(n log n) vs Ω(log n)" dichotomy of Theorem 5.2,
/// found by doubling + binary search.
pub fn timestamp_k_required(n: u64, t: u64, eps: f64) -> u64 {
    assert!(eps > 0.0 && eps < 1.0);
    let ok = |k: u64| timestamp_validity_failure_bound(k, n, t) < eps;
    let mut hi = 1u64;
    while !ok(hi) {
        hi *= 2;
        if hi > 1 << 40 {
            return hi; // diverges (t ≥ n/2)
        }
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_bound_headline_values() {
        // "for λ·(n−t) = 1, the resilience is ≤ 1/2 while for λ·(n−t) = 2
        // it is ≤ 1/3."
        assert!((chain_resilience_bound(1.0) - 0.5).abs() < 1e-12);
        assert!((chain_resilience_bound(2.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((chain_resilience_bound(0.0) - 1.0).abs() < 1e-12);
        assert!(chain_resilience_bound(10.0) < 0.1);
    }

    #[test]
    fn chain_bound_is_decreasing_in_rate() {
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let r = i as f64 * 0.5;
            let b = chain_resilience_bound(r);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn deterministic_bound_is_one_third() {
        assert!((chain_deterministic_resilience_bound() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn timestamp_bound_decreases_in_k() {
        let n = 100;
        let t = 30;
        let mut prev = 1.0;
        for k in [1u64, 4, 16, 64, 256] {
            let b = timestamp_validity_failure_bound(k, n, t);
            assert!(b <= prev + 1e-12, "k={k}");
            prev = b;
        }
        assert!(prev < 1e-6);
    }

    #[test]
    fn timestamp_bound_trivial_beyond_half() {
        assert_eq!(timestamp_validity_failure_bound(100, 10, 5), 1.0);
        assert_eq!(timestamp_validity_failure_bound(100, 10, 7), 1.0);
        assert_eq!(timestamp_validity_failure_bound(0, 10, 2), 1.0);
    }

    #[test]
    fn timestamp_k_dichotomy() {
        // Gap Θ(1): k required grows superlinearly in n.
        // Gap Θ(n): k required grows like log n.
        let eps = 1e-3;
        let k_small_gap_64 = timestamp_k_required(64, 31, eps);
        let k_small_gap_256 = timestamp_k_required(256, 127, eps);
        let k_big_gap_64 = timestamp_k_required(64, 16, eps);
        let k_big_gap_256 = timestamp_k_required(256, 64, eps);
        assert!(
            k_small_gap_256 >= 8 * k_small_gap_64,
            "constant gap must scale ~n²: {k_small_gap_64} → {k_small_gap_256}"
        );
        assert!(
            k_big_gap_256 <= 2 * k_big_gap_64,
            "linear gap must scale ~const: {k_big_gap_64} → {k_big_gap_256}"
        );
    }

    #[test]
    fn silence_tail_shrinks_with_n() {
        let a = silence_interval_tail(0.5, 16, 4, 1.0);
        let b = silence_interval_tail(0.5, 256, 64, 1.0);
        assert!(b < a);
        assert!(a < 1.0);
    }

    #[test]
    fn withhold_burst_is_log_n() {
        let b16 = withhold_burst_bound(1.0, 16);
        let b256 = withhold_burst_bound(1.0, 256);
        assert!(b256 / b16 < 3.0, "log growth only");
        assert!((withhold_burst_bound(2.0, 16) - 2.0 * b16).abs() < 1e-12);
    }

    #[test]
    fn dag_bound_decreases_in_k_and_is_rate_sensitive_only_via_burst() {
        let n = 128;
        let t = 40;
        let lambda = 0.5;
        let mut prev = 1.0;
        for k in [8u64, 32, 128, 512, 2048] {
            let b = dag_validity_failure_bound(k, n, t, lambda);
            assert!(b <= prev + 1e-12);
            prev = b;
        }
        assert!(prev < 1e-6);
        // For tiny k the burst dominates and the bound is vacuous.
        assert_eq!(dag_validity_failure_bound(1, n, t, 4.0), 1.0);
        assert_eq!(dag_validity_failure_bound(100, n, 70, lambda), 1.0);
    }
}
