//! am-net kernels: the discrete-event simulator's broadcast+drain cost
//! across sizes and latency models, against the reliable in-process
//! network as the zero-overhead baseline — the price of simulated time.

use am_bench::{presets::Preset, recorder};
use am_mp::{MpSystem, Network, Payload};
use am_net::{Fault, LatencyModel, NetProfile, SimNet, Transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Broadcasts `rounds` waves from every node and drains all arrivals.
fn pump<T: Transport<Payload>>(net: &mut T, rounds: u64) -> u64 {
    let n = net.n();
    for round in 0..rounds {
        for from in 0..n {
            net.broadcast(
                from,
                Payload::ReadReq {
                    op: round * n as u64 + from as u64,
                },
            );
        }
        loop {
            let mut any = false;
            for node in 0..n {
                while net.deliver(node).is_some() {
                    any = true;
                }
            }
            if !net.advance() && !any {
                break;
            }
        }
    }
    net.delivered_count()
}

fn bench_broadcast_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_broadcast_drain");
    g.sample_size(20);
    for n in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("reliable", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = Network::new(n);
                black_box(pump(&mut net, 8))
            })
        });
        g.bench_with_input(BenchmarkId::new("sim_constant", n), &n, |b, &n| {
            b.iter(|| {
                let mut net: SimNet<Payload> =
                    SimNet::new(n, 1).with_latency(LatencyModel::Constant(1_000));
                black_box(pump(&mut net, 8))
            })
        });
        g.bench_with_input(BenchmarkId::new("sim_exponential", n), &n, |b, &n| {
            b.iter(|| {
                let mut net: SimNet<Payload> =
                    SimNet::new(n, 1).with_latency(LatencyModel::Exponential { mean: 1_000 });
                black_box(pump(&mut net, 8))
            })
        });
    }
    g.finish();
}

fn bench_fault_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_fault_pipeline");
    g.sample_size(20);
    // Cost of the injector chain itself: same load, drops+dup+reorder on.
    g.bench_function("faulty_n16", |b| {
        b.iter(|| {
            let mut net: SimNet<Payload> = SimNet::new(16, 1).with_latency(LatencyModel::Uniform {
                lo: 100,
                hi: 10_000,
            });
            net.add_fault(Fault::Drop { prob: 0.1 });
            net.add_fault(Fault::Duplicate {
                prob: 0.05,
                extra: LatencyModel::Constant(500),
            });
            net.add_fault(Fault::Reorder {
                prob: 0.2,
                extra: LatencyModel::Constant(2_000),
            });
            black_box(pump(&mut net, 8))
        })
    });
    g.finish();
}

/// PR5: the zero-copy networked engine vs the retained naive baselines
/// (`broadcast_cloning`, `local_view_rebuild`, `acks_hashmap` — switched
/// together by `MpSystem::set_naive`). Results merge into
/// `BENCH_PR5.json` (see CONTRIBUTING.md); the 300-seed `naive_equiv`
/// suite proves both paths are the same algorithm bit-for-bit.
fn bench_pr5_networked(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr5);
    let budget = Duration::from_millis(700);

    // Tentpole headline — an E14-shaped sweep cell: ABD append+read
    // rounds over a lossy, then partitioned, network. Naive mode pays an
    // O(history) view rebuild for every ReadReq response and
    // HashMap/HashSet churn for every ack; the optimized engine answers
    // with O(history/chunk) snapshot clones and dense bitmask tallies.
    let sweep = |naive: bool| {
        let mut acc = 0u64;
        for (drop, partition) in [(0.05, None), (0.15, Some((50_000_000u64, 250_000_000u64)))] {
            let n = 8usize;
            let mut profile =
                NetProfile::ideal(LatencyModel::Exponential { mean: 1_000_000 }).with_drop(drop);
            if let Some((from_ns, until_ns)) = partition {
                profile = profile.with_partition(from_ns, until_ns);
            }
            let net: SimNet<Payload> = profile.build(n, 0xe14);
            let mut sys = MpSystem::with_transport(net, &[], 0xe14);
            sys.set_naive(naive);
            for i in 0..800 {
                let _ = sys.append(i % n, 1);
                let _ = sys.read((i + 1) % n);
                let _ = sys.read((i + 3) % n);
            }
            acc += sys.total_sent();
        }
        black_box(acc)
    };
    rec.measure(
        "net_sweep/e14_drop_partition",
        Some("net_sweep/e14_drop_partition_naive"),
        budget,
        || sweep(false),
    );
    rec.measure("net_sweep/e14_drop_partition_naive", None, budget, || {
        sweep(true)
    });

    // The ABD read/local_view kernel: a settled 1000-append history,
    // snapshotting one node's view. The persistent chunked view clones
    // O(history/chunk) Arcs; the naive baseline copies every message.
    let mut sys = MpSystem::new(5, &[], 7);
    for i in 0..1000usize {
        sys.append(i % 5, 1).expect("reliable network cannot stall");
    }
    rec.measure(
        "abd/local_view",
        Some("abd/local_view_rebuild"),
        budget,
        || black_box(sys.local_view(0).len()),
    );
    rec.measure("abd/local_view_rebuild", None, budget, || {
        black_box(sys.local_view_rebuild(0).len())
    });
    rec.write();
}

criterion_group!(
    benches,
    bench_broadcast_drain,
    bench_fault_pipeline,
    bench_pr5_networked
);
criterion_main!(benches);
