//! am-net kernels: the discrete-event simulator's broadcast+drain cost
//! across sizes and latency models, against the reliable in-process
//! network as the zero-overhead baseline — the price of simulated time.

use am_mp::{Network, Payload};
use am_net::{Fault, LatencyModel, SimNet, Transport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Broadcasts `rounds` waves from every node and drains all arrivals.
fn pump<T: Transport<Payload>>(net: &mut T, rounds: u64) -> u64 {
    let n = net.n();
    for round in 0..rounds {
        for from in 0..n {
            net.broadcast(
                from,
                Payload::ReadReq {
                    op: round * n as u64 + from as u64,
                },
            );
        }
        loop {
            let mut any = false;
            for node in 0..n {
                while net.deliver(node).is_some() {
                    any = true;
                }
            }
            if !net.advance() && !any {
                break;
            }
        }
    }
    net.delivered_count()
}

fn bench_broadcast_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_broadcast_drain");
    g.sample_size(20);
    for n in [8usize, 32] {
        g.bench_with_input(BenchmarkId::new("reliable", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = Network::new(n);
                black_box(pump(&mut net, 8))
            })
        });
        g.bench_with_input(BenchmarkId::new("sim_constant", n), &n, |b, &n| {
            b.iter(|| {
                let mut net: SimNet<Payload> =
                    SimNet::new(n, 1).with_latency(LatencyModel::Constant(1_000));
                black_box(pump(&mut net, 8))
            })
        });
        g.bench_with_input(BenchmarkId::new("sim_exponential", n), &n, |b, &n| {
            b.iter(|| {
                let mut net: SimNet<Payload> =
                    SimNet::new(n, 1).with_latency(LatencyModel::Exponential { mean: 1_000 });
                black_box(pump(&mut net, 8))
            })
        });
    }
    g.finish();
}

fn bench_fault_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_fault_pipeline");
    g.sample_size(20);
    // Cost of the injector chain itself: same load, drops+dup+reorder on.
    g.bench_function("faulty_n16", |b| {
        b.iter(|| {
            let mut net: SimNet<Payload> = SimNet::new(16, 1).with_latency(LatencyModel::Uniform {
                lo: 100,
                hi: 10_000,
            });
            net.add_fault(Fault::Drop { prob: 0.1 });
            net.add_fault(Fault::Duplicate {
                prob: 0.05,
                extra: LatencyModel::Constant(500),
            });
            net.add_fault(Fault::Reorder {
                prob: 0.2,
                extra: LatencyModel::Constant(2_000),
            });
            black_box(pump(&mut net, 8))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_broadcast_drain, bench_fault_pipeline);
criterion_main!(benches);
