//! Core data-structure benches + ablations A1 (snapshot strategy) and A2
//! (ordering-rule cost on adversarial DAGs).

use am_bench::{chain_history, dag_history};
use am_core::{ghost, linearize, longest_chain, DagIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A1: shared-Arc snapshot reads vs naive deep-clone reads.
fn bench_snapshot_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_snapshot");
    g.sample_size(20);
    for len in [100usize, 1000, 5000] {
        let mem = chain_history(8, len);
        g.bench_with_input(BenchmarkId::new("shared_arc", len), &mem, |b, mem| {
            b.iter(|| black_box(mem.read().len()))
        });
        g.bench_with_input(BenchmarkId::new("deep_clone", len), &mem, |b, mem| {
            b.iter(|| black_box(mem.read_deep_clone().len()))
        });
    }
    g.finish();
}

/// DagIndex construction cost on chains and bushy DAGs.
fn bench_dag_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_index");
    g.sample_size(20);
    for len in [100usize, 1000] {
        let chain = chain_history(8, len).read();
        let dag = dag_history(8, len, 42).read();
        g.bench_with_input(BenchmarkId::new("chain", len), &chain, |b, v| {
            b.iter(|| black_box(DagIndex::new(v).max_depth()))
        });
        g.bench_with_input(BenchmarkId::new("bushy", len), &dag, |b, v| {
            b.iter(|| black_box(DagIndex::new(v).max_depth()))
        });
    }
    g.finish();
}

/// A2: GHOST vs longest-chain selection on bushy DAGs.
fn bench_ordering_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("A2_ordering_rule");
    g.sample_size(20);
    for len in [100usize, 500, 2000] {
        let view = dag_history(8, len, 7).read();
        g.bench_with_input(BenchmarkId::new("longest_chain", len), &view, |b, v| {
            b.iter(|| black_box(longest_chain(v).len()))
        });
        g.bench_with_input(BenchmarkId::new("ghost", len), &view, |b, v| {
            b.iter(|| black_box(ghost::ghost_pivot(v).len()))
        });
    }
    g.finish();
}

/// Linearization cost along the longest chain.
fn bench_linearize(c: &mut Criterion) {
    let mut g = c.benchmark_group("linearize");
    g.sample_size(20);
    for len in [100usize, 1000] {
        let view = dag_history(8, len, 3).read();
        let chain = longest_chain(&view);
        g.bench_with_input(
            BenchmarkId::new("bushy", len),
            &(view, chain),
            |b, (v, ch)| b.iter(|| black_box(linearize(v, ch).order.len())),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_snapshot_strategies,
    bench_dag_index,
    bench_ordering_rules,
    bench_linearize
);
criterion_main!(benches);
