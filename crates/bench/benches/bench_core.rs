//! Core data-structure benches + ablations A1 (snapshot strategy) and A2
//! (ordering-rule cost on adversarial DAGs).

use am_bench::{chain_history, dag_history, presets::Preset, recorder};
use am_core::{
    ghost, linearize, linearize_with, longest_chain, longest_chain_with, ConeCoverTracker,
    DagIndex, MsgId,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A1: shared-Arc snapshot reads vs naive deep-clone reads.
fn bench_snapshot_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1_snapshot");
    g.sample_size(20);
    for len in [100usize, 1000, 5000] {
        let mem = chain_history(8, len);
        g.bench_with_input(BenchmarkId::new("shared_arc", len), &mem, |b, mem| {
            b.iter(|| black_box(mem.read().len()))
        });
        g.bench_with_input(BenchmarkId::new("deep_clone", len), &mem, |b, mem| {
            b.iter(|| black_box(mem.read_deep_clone().len()))
        });
    }
    g.finish();
}

/// DagIndex construction cost on chains and bushy DAGs.
fn bench_dag_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_index");
    g.sample_size(20);
    for len in [100usize, 1000] {
        let chain = chain_history(8, len).read();
        let dag = dag_history(8, len, 42).read();
        g.bench_with_input(BenchmarkId::new("chain", len), &chain, |b, v| {
            b.iter(|| black_box(DagIndex::new(v).max_depth()))
        });
        g.bench_with_input(BenchmarkId::new("bushy", len), &dag, |b, v| {
            b.iter(|| black_box(DagIndex::new(v).max_depth()))
        });
    }
    g.finish();
}

/// A2: GHOST vs longest-chain selection on bushy DAGs.
fn bench_ordering_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("A2_ordering_rule");
    g.sample_size(20);
    for len in [100usize, 500, 2000] {
        let view = dag_history(8, len, 7).read();
        g.bench_with_input(BenchmarkId::new("longest_chain", len), &view, |b, v| {
            b.iter(|| black_box(longest_chain(v).len()))
        });
        g.bench_with_input(BenchmarkId::new("ghost", len), &view, |b, v| {
            b.iter(|| black_box(ghost::ghost_pivot(v).len()))
        });
    }
    g.finish();
}

/// Linearization cost along the longest chain.
fn bench_linearize(c: &mut Criterion) {
    let mut g = c.benchmark_group("linearize");
    g.sample_size(20);
    for len in [100usize, 1000] {
        let view = dag_history(8, len, 3).read();
        let chain = longest_chain(&view);
        g.bench_with_input(
            BenchmarkId::new("bushy", len),
            &(view, chain),
            |b, (v, ch)| b.iter(|| black_box(linearize(v, ch).order.len())),
        );
    }
    g.finish();
}

/// PR4 micro-kernels: each optimised core path vs the from-scratch
/// recomputation it replaced. Results merge into `BENCH_PR4.json` (see
/// CONTRIBUTING.md); the vendored criterion shim cannot report them.
fn bench_pr4_core_kernels(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr4);
    let budget = Duration::from_millis(400);
    let len = 1500usize;
    let view = dag_history(8, len, 11).read();
    // Per-message parent table + running deepest tip, as the gate sees it.
    let parents: Vec<Vec<MsgId>> = view.iter().map(|m| m.parents.clone()).collect();
    let mut depth = vec![0u32; parents.len()];
    let mut deepest: Vec<MsgId> = Vec::with_capacity(parents.len());
    for (i, ps) in parents.iter().enumerate() {
        depth[i] = ps.iter().map(|p| depth[p.index()] + 1).max().unwrap_or(0);
        let best = deepest.last().copied().unwrap_or(MsgId(0));
        deepest.push(if i == 0 || depth[i] > depth[best.index()] {
            MsgId(i as u64)
        } else {
            best
        });
    }
    // Gate kernel: covered count of the deepest tip after every append.
    rec.measure(
        "cone_cover/incremental_gate",
        Some("cone_cover/per_append_dfs_naive"),
        budget,
        || {
            let mut t = ConeCoverTracker::new();
            let mut acc = 0usize;
            for (i, ps) in parents.iter().enumerate().skip(1) {
                t.on_append(MsgId(i as u64), ps, true);
                acc += t.cover_of(deepest[i]);
            }
            black_box(acc)
        },
    );
    rec.measure("cone_cover/per_append_dfs_naive", None, budget, || {
        let mut acc = 0usize;
        let mut seen = vec![false; parents.len()];
        let mut stack = Vec::new();
        for i in 1..parents.len() {
            seen[..=i].fill(false);
            stack.push(deepest[i]);
            while let Some(id) = stack.pop() {
                if !seen[id.index()] {
                    seen[id.index()] = true;
                    acc += 1;
                    stack.extend_from_slice(&parents[id.index()]);
                }
            }
        }
        black_box(acc)
    });
    // Decision kernel: one shared DagIndex for select + linearize, vs the
    // old select(view) + linearize(view) pair that each built its own.
    rec.measure(
        "decide/shared_index",
        Some("decide/duplicate_index_naive"),
        budget,
        || {
            let dag = DagIndex::new(&view);
            let chain = longest_chain_with(&dag);
            black_box(linearize_with(&dag, &chain).order.len())
        },
    );
    rec.measure("decide/duplicate_index_naive", None, budget, || {
        let chain = longest_chain(&view);
        black_box(linearize(&view, &chain).order.len())
    });
    // GHOST kernel: pooled scratch + prebuilt index vs from-scratch.
    let dag = DagIndex::new(&view);
    let mut gs = ghost::GhostScratch::new();
    rec.measure(
        "ghost/pivot_pooled_scratch",
        Some("ghost/pivot_from_view_naive"),
        budget,
        || black_box(ghost::ghost_pivot_in(&dag, &mut gs).len()),
    );
    rec.measure("ghost/pivot_from_view_naive", None, budget, || {
        black_box(ghost::ghost_pivot(&view).len())
    });
    rec.write();
}

criterion_group!(
    benches,
    bench_snapshot_strategies,
    bench_dag_index,
    bench_ordering_rules,
    bench_linearize,
    bench_pr4_core_kernels
);
criterion_main!(benches);
