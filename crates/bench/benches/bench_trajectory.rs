//! Consolidates the per-PR `BENCH_PR*.json` headline numbers into
//! `BENCH_TRAJECTORY.json` and seeds the CI wall-clock budgets.
//!
//! Unlike the other bench targets this one measures nothing itself — it
//! folds the numbers the others already recorded (plus the sweep
//! throughput records the experiments harness writes at merge time) so
//! one tracked file carries the whole perf story. Rerun after any
//! per-PR trajectory file is regenerated:
//!
//! ```text
//! cargo bench -p am-bench --bench bench_trajectory
//! ```

use am_bench::trajectory::{ensure_budgets, fold_headlines};
use criterion::{criterion_group, criterion_main, Criterion};

fn consolidate(_c: &mut Criterion) {
    let folded = fold_headlines();
    ensure_budgets();
    println!("trajectory: folded {folded} headline ops");
    assert!(
        folded > 0,
        "no headline ops found — are the BENCH_PR*.json files present?"
    );
}

criterion_group!(benches, consolidate);
criterion_main!(benches);
