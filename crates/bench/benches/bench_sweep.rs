//! The adaptive sweep engine vs fixed budgets on the E8 resilience grid.
//!
//! Two claims to make visible: (1) wall-clock — one grid pass under
//! Wilson early stopping vs the same grid at a fixed budget; (2) trial
//! accounting — the `trial_savings` report runs both modes with the
//! adaptive target set to the *worst* half-width the fixed run achieved,
//! so the comparison is at equal statistical quality, and prints the
//! total-trials ratio (the acceptance bar is ≥ 2×).

use am_protocols::{ChainAdversary, Params, SweepConfig, SweepRunner, TieBreak, TrialKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The E8 grid: λ sweep × Byzantine counts, chain vs the tie-breaker.
const LAMBDAS: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.8];
const N: usize = 12;
const K: usize = 41;
const BUDGET: u64 = 300;

fn grid_points() -> Vec<(f64, usize)> {
    let mut pts = Vec::new();
    for &lambda in &LAMBDAS {
        for t in 1..=6usize {
            pts.push((lambda, t));
        }
    }
    pts
}

/// Runs the whole grid through `runner`; returns (total trials, worst
/// achieved 95% half-width).
fn run_grid(runner: &SweepRunner<'_>, tag: &str) -> (u64, f64) {
    let kind = TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker);
    let mut total = 0u64;
    let mut worst_hw = 0.0f64;
    for (lambda, t) in grid_points() {
        let p = Params::new(N, t, lambda, K, 7);
        let r = runner.measure(&format!("{tag}/l{lambda}/t{t}"), &p, kind, BUDGET);
        total += r.trials_used();
        let w = r.ci95();
        worst_hw = worst_hw.max((w.hi - w.lo) / 2.0);
    }
    (total, worst_hw)
}

fn bench_sweep_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8_sweep_engine");
    g.sample_size(10);
    let fixed = SweepRunner::new(SweepConfig::fixed());
    g.bench_function("grid_fixed_300", |b| {
        b.iter(|| black_box(run_grid(&fixed, "bf")))
    });
    let adaptive = SweepRunner::new(SweepConfig::adaptive(0.05));
    g.bench_function("grid_adaptive_hw0.05", |b| {
        b.iter(|| black_box(run_grid(&adaptive, "ba")))
    });
    g.finish();
}

/// Equal-quality trial accounting: fixed first (to learn its worst
/// half-width), then adaptive targeting exactly that width. One line of
/// bench output carries the ≥2× claim.
fn trial_savings(_c: &mut Criterion) {
    let fixed = SweepRunner::new(SweepConfig::fixed());
    let (fixed_total, fixed_hw) = run_grid(&fixed, "sf");
    let adaptive = SweepRunner::new(SweepConfig::adaptive(fixed_hw));
    let (adaptive_total, adaptive_hw) = run_grid(&adaptive, "sa");
    println!(
        "E8 grid ({} points, budget {BUDGET}): fixed {fixed_total} trials \
         (worst half-width {fixed_hw:.4}), adaptive-to-same-width \
         {adaptive_total} trials (worst {adaptive_hw:.4}) — {:.1}x fewer",
        grid_points().len(),
        fixed_total as f64 / adaptive_total as f64
    );
}

criterion_group!(benches, bench_sweep_modes, trial_savings);
criterion_main!(benches);
