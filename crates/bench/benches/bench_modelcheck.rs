//! E1/E2 kernels: computation-graph exploration and the exhaustive round
//! lower-bound search.

use am_sched::{
    initial_bivalent, search_disagreement, Config, Explorer, FirstSeenProtocol, QuorumVoteProtocol,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_analyze(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_analyze");
    let fs = FirstSeenProtocol::new(3);
    let qv = QuorumVoteProtocol::new(3, 2, 0);
    g.bench_function("first_seen_n3", |b| {
        let ex = Explorer::new(&fs, 300_000);
        b.iter(|| black_box(ex.analyze(&Config::initial(&[0, 1, 1])).configs))
    });
    g.bench_function("quorum_vote_n3", |b| {
        let ex = Explorer::new(&qv, 300_000);
        b.iter(|| black_box(ex.analyze(&Config::initial(&[0, 1, 1])).configs))
    });
    g.finish();
}

fn bench_bivalent_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_bivalent_start");
    g.bench_function("quorum_vote_n3", |b| {
        let qv = QuorumVoteProtocol::new(3, 2, 0);
        b.iter(|| black_box(initial_bivalent(&qv, 300_000).is_some()))
    });
    g.finish();
}

fn bench_round_lb(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_round_lb_search");
    g.sample_size(10);
    for (n_corr, rounds) in [(3usize, 1u32), (3, 2), (4, 2)] {
        g.bench_with_input(
            BenchmarkId::new("exhaustive", format!("n{n_corr}_r{rounds}")),
            &(n_corr, rounds),
            |b, &(n, r)| b.iter(|| black_box(search_disagreement(n, r, 0).executions)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_analyze,
    bench_bivalent_search,
    bench_round_lb
);
criterion_main!(benches);
