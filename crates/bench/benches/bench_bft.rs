//! am-bft kernels: the cost of deterministic finality over the DAG.
//!
//! The finality oracle is *incremental* — each observed block updates
//! justification heights, latest-block pointers, and the quorum scan in
//! amortized O(cone frontier). The natural naive alternative (what a
//! first implementation of Casper-CBC-style clique finality over a
//! BlockDAG does) replays the whole DAG into a fresh oracle after every
//! block to recompute the watermark. Both produce the identical
//! watermark trajectory; the bench pair times the gap.

use am_bench::{presets::Preset, recorder};
use am_bft::FinalityOracle;
use am_core::{MsgId, GENESIS};
use am_protocols::{run_bft, BftAdversary, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A deterministic round-robin block DAG: each block references the
/// global tip plus its author's previous block — the shape the honest
/// append rule produces on a quiet network.
fn make_blocks(n: usize, total: usize) -> Vec<(MsgId, usize, Vec<MsgId>)> {
    let mut last_own = vec![GENESIS; n];
    let mut prev = GENESIS;
    let mut blocks = Vec::with_capacity(total);
    for i in 0..total {
        let author = i % n;
        let id = MsgId(i as u64 + 1);
        let mut parents = vec![prev];
        if last_own[author] != prev && last_own[author] != GENESIS {
            parents.push(last_own[author]);
        }
        blocks.push((id, author, parents));
        last_own[author] = id;
        prev = id;
    }
    blocks
}

/// Watermark after every block, one long-lived oracle: the shipped path.
fn trajectory_incremental(n: usize, blocks: &[(MsgId, usize, Vec<MsgId>)]) -> u64 {
    let mut oracle = FinalityOracle::new(n);
    let mut acc = 0u64;
    for (id, author, parents) in blocks {
        oracle.observe(*id, *author, parents);
        acc += oracle.finalized_height() as u64;
    }
    acc
}

/// Watermark after every block, a fresh oracle replaying the prefix each
/// time: the O(blocks^2) baseline.
fn trajectory_replay(n: usize, blocks: &[(MsgId, usize, Vec<MsgId>)]) -> u64 {
    let mut acc = 0u64;
    for end in 1..=blocks.len() {
        let mut oracle = FinalityOracle::new(n);
        for (id, author, parents) in &blocks[..end] {
            oracle.observe(*id, *author, parents);
        }
        acc += oracle.finalized_height() as u64;
    }
    acc
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("bft_oracle");
    g.sample_size(20);
    let blocks = make_blocks(8, 400);
    g.bench_function("incremental_400", |b| {
        b.iter(|| black_box(trajectory_incremental(8, &blocks)))
    });
    g.bench_function("replay_400", |b| {
        b.iter(|| black_box(trajectory_replay(8, &blocks)))
    });
    g.finish();
}

/// PR7: finality-latency kernel plus an E15 sweep cell, merged into
/// `BENCH_PR7.json` (see CONTRIBUTING.md "Benchmark trajectory files").
fn bench_pr7_finality(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr7);
    let budget = Duration::from_millis(700);

    // Headline kernel: the full watermark trajectory of a 400-block,
    // 8-author DAG — incremental oracle vs replay-from-scratch.
    let blocks = make_blocks(8, 400);
    let sanity = trajectory_incremental(8, &blocks);
    assert_eq!(
        sanity,
        trajectory_replay(8, &blocks),
        "both paths must compute the identical watermark trajectory"
    );
    rec.measure(
        "bft/watermark_trajectory",
        Some("bft/watermark_replay"),
        budget,
        || black_box(trajectory_incremental(8, &blocks)),
    );
    rec.measure("bft/watermark_replay", None, budget, || {
        black_box(trajectory_replay(8, &blocks))
    });

    // An E15 sweep cell: end-to-end finality trials at the experiment's
    // own grid point (n = 12, k = 9), fault-free and at the tolerance
    // edge. Not a kernel pair — a wall-clock record of what one adaptive
    // sweep cell costs the harness.
    rec.measure("bft_sweep/e15_cell_t0", None, budget, || {
        let p = Params::new(12, 0, 0.5, 9, 0x15);
        black_box(run_bft(&p, BftAdversary::Absent).finalized_height)
    });
    rec.measure("bft_sweep/e15_cell_t2_equivocator", None, budget, || {
        let p = Params::new(12, 2, 0.5, 9, 0x15);
        black_box(run_bft(&p, BftAdversary::Equivocator).finalized_height)
    });
    rec.write();
}

criterion_group!(benches, bench_oracle, bench_pr7_finality);
criterion_main!(benches);
