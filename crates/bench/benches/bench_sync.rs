//! E3 kernels: Algorithm 1 execution across n/t, and ablation A3 — the
//! chain-acceptance rule with and without dead-state memoization.

use am_core::{AppendMemory, MessageBuilder, MsgId, NodeId, Round, Value, GENESIS};
use am_sync::{accepted_values, accepted_values_naive, run, Dissenter, Straddler, SyncConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_algorithm1");
    g.sample_size(20);
    for (n, t) in [(4usize, 1u32), (8, 3), (16, 7), (32, 15)] {
        let inputs: Vec<bool> = (0..n - t as usize).map(|i| i % 2 == 0).collect();
        g.bench_with_input(
            BenchmarkId::new("dissenter", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                b.iter(|| {
                    let cfg = SyncConfig::new(n, t);
                    black_box(run(&cfg, &inputs, &mut Dissenter).agreement)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("straddler", format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                b.iter(|| {
                    let cfg = SyncConfig::new(n, t);
                    black_box(run(&cfg, &inputs, &mut Straddler).agreement)
                })
            },
        );
    }
    g.finish();
}

/// Builds a full-information t+1-round history for `n` nodes and returns
/// its final view, for the acceptance-rule ablation.
fn history(n: usize, t: u32) -> am_core::MemoryView {
    let mem = AppendMemory::new(n);
    let mut prev_round: Vec<MsgId> = vec![GENESIS];
    for r in 1..=t + 1 {
        let mut this_round = Vec::new();
        for i in 0..n {
            let id = mem
                .append(
                    MessageBuilder::new(NodeId(i as u32), Value::Bit(i % 2 == 0))
                        .parents(prev_round.iter().copied())
                        .round(Round(r)),
                )
                .unwrap();
            this_round.push(id);
        }
        prev_round = this_round;
    }
    mem.read()
}

/// A3: memoized DFS vs naive path enumeration on the dense reference
/// graphs correct nodes produce.
fn bench_acceptance(c: &mut Criterion) {
    let mut g = c.benchmark_group("A3_acceptance");
    g.sample_size(20);
    for (n, t) in [(8usize, 2u32), (16, 3), (24, 4)] {
        let view = history(n, t);
        g.bench_with_input(
            BenchmarkId::new("memoized", format!("n{n}_t{t}")),
            &view,
            |b, v| b.iter(|| black_box(accepted_values(v, t).len())),
        );
        g.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_t{t}")),
            &view,
            |b, v| b.iter(|| black_box(accepted_values_naive(v, t).len())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_algorithm1, bench_acceptance);
criterion_main!(benches);
