//! E10 kernel: the full Monte-Carlo failure-rate cell, chain vs DAG, as a
//! throughput benchmark — and the parallel speedup of the rayon fan-out.

use am_protocols::{
    measure_failure_rate, ChainAdversary, DagAdversary, DagRule, Params, TieBreak, TrialKind,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10_failure_rate_cell");
    g.sample_size(10);
    let trials = 64;
    for lambda in [0.1f64, 0.8] {
        let p = Params::new(12, 4, lambda, 41, 9);
        g.bench_with_input(
            BenchmarkId::new("chain", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        measure_failure_rate(
                            p,
                            TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker),
                            trials,
                        )
                        .hits,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dag", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        measure_failure_rate(
                            p,
                            TrialKind::Dag(DagRule::LongestChain, DagAdversary::WithholdBurst),
                            trials,
                        )
                        .hits,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("rayon_fanout");
    g.sample_size(10);
    let p = Params::new(12, 4, 0.4, 41, 9);
    let kind = TrialKind::Dag(DagRule::LongestChain, DagAdversary::WithholdBurst);
    g.bench_function("parallel_128_trials", |b| {
        b.iter(|| black_box(measure_failure_rate(&p, kind, 128).trials))
    });
    g.bench_function("serial_128_trials", |b| {
        b.iter(|| {
            let mut fails = 0u64;
            for i in 0..128u64 {
                let seed = am_protocols::runner::trial_seed(p.seed, i);
                if kind.run_one(&p.with_seed(seed)) {
                    fails += 1;
                }
            }
            black_box(fails)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cells, bench_parallel_speedup);
criterion_main!(benches);
