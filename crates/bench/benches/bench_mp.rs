//! E4 kernels: simulated `M.append` / `M.read` cost across system sizes —
//! the Θ(n²) / Θ(n) message shapes as wall-clock.

use am_mp::MpSystem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_append");
    g.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = MpSystem::new(n, &[], 1);
                let m = sys.append(0, 1).unwrap();
                sys.settle();
                black_box(m.seq)
            })
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_read");
    g.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Pre-populate with a few appends, then time reads.
            let mut sys = MpSystem::new(n, &[], 1);
            for i in 0..4 {
                sys.append(i % n, 1).unwrap();
                sys.settle();
            }
            b.iter(|| {
                let v = sys.read(1).unwrap();
                sys.settle();
                black_box(v.len())
            })
        });
    }
    g.finish();
}

fn bench_append_with_byz(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_append_byz_minority");
    g.sample_size(20);
    for n in [8usize, 16] {
        let byz: Vec<usize> = (n - n / 3..n).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = MpSystem::new(n, &byz, 1);
                let m = sys.append(0, 1).unwrap();
                sys.settle();
                black_box(m.seq)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_read, bench_append_with_byz);
criterion_main!(benches);
