//! E6–E9 kernels: single-trial cost of Algorithms 4, 5, and 6 across
//! rates, sizes, and adversaries.

use am_protocols::{
    run_chain, run_dag, run_timestamp, ChainAdversary, DagAdversary, DagRule, Params, TieBreak,
    ViewPolicy,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_timestamp(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_timestamp_trial");
    g.sample_size(20);
    for k in [41usize, 201, 1001] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let p = Params::new(32, 10, 1.0, k, 5);
            b.iter(|| black_box(run_timestamp(&p).byz_in_prefix))
        });
    }
    g.finish();
}

fn bench_chain_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_E8_chain_trial");
    g.sample_size(20);
    for lambda in [0.1f64, 0.4, 0.8] {
        let p = Params::new(12, 4, lambda, 41, 5);
        g.bench_with_input(
            BenchmarkId::new("tiebreaker", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Randomized, ChainAdversary::TieBreaker).chain_len,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("forkmaker_det", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Deterministic, ChainAdversary::ForkMaker).chain_len,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_dag_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_dag_trial");
    g.sample_size(20);
    for lambda in [0.1f64, 0.4, 0.8] {
        let p = Params::new(12, 4, lambda, 41, 5);
        g.bench_with_input(
            BenchmarkId::new("withhold_longest", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_dag(p, DagRule::LongestChain, DagAdversary::WithholdBurst)
                            .covered_values,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("withhold_ghost", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_dag(p, DagRule::Ghost, DagAdversary::WithholdBurst).covered_values,
                    )
                })
            },
        );
    }
    g.finish();
}

/// A5: interval-snapshot vs lagged-Δ view computation cost.
fn bench_view_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("A5_view_policy");
    g.sample_size(20);
    for vp in [ViewPolicy::IntervalSnapshot, ViewPolicy::LaggedDelta] {
        let p = Params::new(12, 4, 0.4, 41, 5).with_view_policy(vp);
        g.bench_with_input(
            BenchmarkId::new("chain_tiebreaker", format!("{vp:?}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Randomized, ChainAdversary::TieBreaker).chain_len,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_timestamp,
    bench_chain_trial,
    bench_dag_trial,
    bench_view_policy
);
criterion_main!(benches);
