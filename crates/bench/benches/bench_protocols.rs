//! E6–E9 kernels: single-trial cost of Algorithms 4, 5, and 6 across
//! rates, sizes, and adversaries.

use am_bench::{presets::Preset, recorder};
use am_protocols::{
    dag::run_dag_naive, run_chain, run_dag, run_timestamp, ChainAdversary, DagAdversary, DagRule,
    Params, TieBreak, ViewPolicy,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_timestamp(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_timestamp_trial");
    g.sample_size(20);
    for k in [41usize, 201, 1001] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let p = Params::new(32, 10, 1.0, k, 5);
            b.iter(|| black_box(run_timestamp(&p).byz_in_prefix))
        });
    }
    g.finish();
}

fn bench_chain_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_E8_chain_trial");
    g.sample_size(20);
    for lambda in [0.1f64, 0.4, 0.8] {
        let p = Params::new(12, 4, lambda, 41, 5);
        g.bench_with_input(
            BenchmarkId::new("tiebreaker", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Randomized, ChainAdversary::TieBreaker).chain_len,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("forkmaker_det", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Deterministic, ChainAdversary::ForkMaker).chain_len,
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_dag_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_dag_trial");
    g.sample_size(20);
    for lambda in [0.1f64, 0.4, 0.8] {
        let p = Params::new(12, 4, lambda, 41, 5);
        g.bench_with_input(
            BenchmarkId::new("withhold_longest", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_dag(p, DagRule::LongestChain, DagAdversary::WithholdBurst)
                            .covered_values,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("withhold_ghost", format!("lam{lambda}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_dag(p, DagRule::Ghost, DagAdversary::WithholdBurst).covered_values,
                    )
                })
            },
        );
    }
    g.finish();
}

/// A5: interval-snapshot vs lagged-Δ view computation cost.
fn bench_view_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("A5_view_policy");
    g.sample_size(20);
    for vp in [ViewPolicy::IntervalSnapshot, ViewPolicy::LaggedDelta] {
        let p = Params::new(12, 4, 0.4, 41, 5).with_view_policy(vp);
        g.bench_with_input(
            BenchmarkId::new("chain_tiebreaker", format!("{vp:?}")),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(
                        run_chain(p, TieBreak::Randomized, ChainAdversary::TieBreaker).chain_len,
                    )
                })
            },
        );
    }
    g.finish();
}

/// One E8-shaped sweep grid (λ × t, DAG trials) end-to-end: the rate and
/// threat axes of experiment E8 driven through the Algorithm-6 hot loop.
fn dag_grid(naive: bool) -> usize {
    let mut acc = 0usize;
    for (li, lambda) in [0.05f64, 0.1, 0.2, 0.4, 0.8].into_iter().enumerate() {
        for t in 1..=7usize {
            let p = Params::new(12, t, lambda, 41, (li * 100 + t) as u64);
            let trial = if naive {
                run_dag_naive(&p, DagRule::LongestChain, DagAdversary::Dissenter)
            } else {
                run_dag(&p, DagRule::LongestChain, DagAdversary::Dissenter)
            };
            acc += trial.covered_values;
        }
    }
    acc
}

/// PR4: incremental decision-path engine vs the retained `*_naive`
/// baselines. Results are merged into `BENCH_PR4.json` (see
/// CONTRIBUTING.md) rather than reported through criterion, because the
/// vendored shim does not expose measured timings to the caller.
fn bench_pr4_decision_path(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr4);
    let budget = Duration::from_millis(800);
    // Tentpole headline — the quadratic regime: at λ = 1.6 per node every
    // Δ-interval carries ~λ·n grants, the interval-snapshot lag keeps the
    // gate short of k for a whole interval, and the pre-PR4 engine pays a
    // snapshot rebuild plus a full-history DFS on every one of those
    // grants (O(n) work per grant, O(n²) per trial). The incremental
    // engine answers the same gate in O(1) per grant.
    let trial_set = |naive: bool, rule: DagRule| {
        let mut acc = 0usize;
        for seed in 0..4u64 {
            let p = Params::new(96, 31, 1.6, 15, seed);
            let trial = if naive {
                run_dag_naive(&p, rule, DagAdversary::Absent)
            } else {
                run_dag(&p, rule, DagAdversary::Absent)
            };
            acc += trial.covered_values;
        }
        acc
    };
    rec.measure(
        "run_dag/longest_quadratic_lam1.6_k15",
        Some("run_dag_naive/longest_quadratic_lam1.6_k15"),
        budget,
        || black_box(trial_set(false, DagRule::LongestChain)),
    );
    rec.measure(
        "run_dag_naive/longest_quadratic_lam1.6_k15",
        None,
        budget,
        || black_box(trial_set(true, DagRule::LongestChain)),
    );
    rec.measure(
        "run_dag/ghost_quadratic_lam1.6_k15",
        Some("run_dag_naive/ghost_quadratic_lam1.6_k15"),
        budget,
        || black_box(trial_set(false, DagRule::Ghost)),
    );
    rec.measure(
        "run_dag_naive/ghost_quadratic_lam1.6_k15",
        None,
        budget,
        || black_box(trial_set(true, DagRule::Ghost)),
    );
    // Lemma 5.5 withhold-burst at small n: short trials dominated by
    // shared token-stream and append costs — the floor of the win.
    let withhold_set = |naive: bool| {
        let mut acc = 0usize;
        for seed in 0..4u64 {
            let p = Params::new(48, 15, 1.6, 15, seed);
            let trial = if naive {
                run_dag_naive(&p, DagRule::LongestChain, DagAdversary::WithholdBurst)
            } else {
                run_dag(&p, DagRule::LongestChain, DagAdversary::WithholdBurst)
            };
            acc += trial.covered_values;
        }
        acc
    };
    rec.measure(
        "run_dag_withhold/longest_n48_lam1.6_k15",
        Some("run_dag_withhold_naive/longest_n48_lam1.6_k15"),
        budget,
        || black_box(withhold_set(false)),
    );
    rec.measure(
        "run_dag_withhold_naive/longest_n48_lam1.6_k15",
        None,
        budget,
        || black_box(withhold_set(true)),
    );
    // E8-shaped λ × t grid, end-to-end.
    rec.measure(
        "e8_grid/dag_longest_dissenter",
        Some("e8_grid/dag_longest_dissenter_naive"),
        Duration::from_secs(2),
        || black_box(dag_grid(false)),
    );
    rec.measure(
        "e8_grid/dag_longest_dissenter_naive",
        None,
        Duration::from_secs(2),
        || black_box(dag_grid(true)),
    );
    rec.write();
}

criterion_group!(
    benches,
    bench_timestamp,
    bench_chain_trial,
    bench_dag_trial,
    bench_view_policy,
    bench_pr4_decision_path
);
criterion_main!(benches);
