//! am-net topology kernels: relay-gossip flood throughput and the cost
//! of per-link statistics layouts at planet scale.
//!
//! The PR8 topology engine keeps all per-link state sparse — latency
//! overrides, bandwidth busy horizons, and `NetStats` counters are
//! hash-keyed by the links actually used, so a 1000-node relay overlay
//! touches ~8n entries instead of materializing n² of them. The bench
//! pair floods the same block DAG over the same overlay with the sparse
//! layout (shipped default) and the dense O(n²) table (`dense_stats`,
//! the pre-PR8 behaviour) and times the gap; both produce byte-identical
//! statistics exports, pinned by the `config_equivalence` suite.

use am_bench::{presets::Preset, recorder};
use am_core::{MsgId, Time};
use am_net::{LatencyModel, NetConfig, Topology};
use am_protocols::Propagation;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Number, Value};
use std::hint::black_box;
use std::time::Duration;

/// The overlay under test: a degree-8 relay graph, the E18 shape
/// without the geo latency classes (kernel cost, not physics).
fn overlay(dense_stats: bool) -> NetConfig {
    NetConfig::builder()
        .topology(Topology::Relay { k: 8 })
        .latency(LatencyModel::Uniform {
            lo: 2_000_000,
            hi: 20_000_000,
        })
        .fanout(6)
        .dense_stats(dense_stats)
        .build()
        .expect("static bench config is valid")
}

/// Floods `blocks` DAG blocks (round-robin authors, visible-tips
/// parents) over the overlay and drains the network; returns total
/// messages delivered as the black-box anchor.
fn flood(n: usize, blocks: usize, cfg: &NetConfig, seed: u64) -> u64 {
    let mut prop = Propagation::new(n, cfg, seed);
    let mut parents: Vec<MsgId> = Vec::new();
    for i in 1..=blocks {
        let at = Time::new(i as f64 * 0.125);
        let author = (i * 17) % n;
        prop.advance_to(at);
        parents.clear();
        parents.extend_from_slice(prop.visible_tips(author));
        prop.on_append(author, MsgId(i as u64), &parents, at);
    }
    prop.settle();
    prop.stats().totals().delivered
}

fn bench_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_flood");
    g.sample_size(10);
    let (n, blocks) = (1000usize, 40usize);
    let sparse = overlay(false);
    let dense = overlay(true);
    g.bench_function("relay8_sparse_n1000", |b| {
        b.iter(|| black_box(flood(n, blocks, &sparse, 1)))
    });
    g.bench_function("relay8_dense_n1000", |b| {
        b.iter(|| black_box(flood(n, blocks, &dense, 1)))
    });
    g.finish();
}

/// PR8: the sparse-vs-dense kernel pair plus a divergence-probe record,
/// merged into `BENCH_PR8.json` (see CONTRIBUTING.md "Benchmark
/// trajectory files").
fn bench_pr8_topology(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr8);
    let budget = Duration::from_millis(700);
    let (n, blocks) = (1000usize, 40usize);
    let sparse = overlay(false);
    let dense = overlay(true);
    assert_eq!(
        flood(n, blocks, &sparse, 1),
        flood(n, blocks, &dense, 1),
        "statistics layout must not change delivery"
    );

    let sparse_ns = rec.measure(
        "topology/relay_flood_sparse",
        Some("topology/relay_flood_dense"),
        budget,
        || black_box(flood(n, blocks, &sparse, 1)),
    );
    let dense_ns = rec.measure("topology/relay_flood_dense", None, budget, || {
        black_box(flood(n, blocks, &dense, 1))
    });
    println!(
        "pr8: sparse per-link state runs {:.2}x the dense-stats baseline \
         ({:.1} vs {:.1} trials/sec at n = {n})",
        dense_ns / sparse_ns,
        1e9 / sparse_ns,
        1e9 / dense_ns
    );
    rec.record_value(
        "topology/relay_flood_trials_per_sec",
        Value::Object(vec![
            ("n".to_string(), Value::Number(Number::UInt(n as u64))),
            (
                "blocks".to_string(),
                Value::Number(Number::UInt(blocks as u64)),
            ),
            (
                "sparse".to_string(),
                Value::Number(Number::Float(1e9 / sparse_ns)),
            ),
            (
                "dense_baseline".to_string(),
                Value::Number(Number::Float(1e9 / dense_ns)),
            ),
        ]),
    );
    rec.write();
}

criterion_group!(benches, bench_flood, bench_pr8_topology);
criterion_main!(benches);
