//! am-sched kernels: the compact model-checker core vs the naive
//! explorer, and the dense round-lower-bound engine vs its HashMap
//! baseline.
//!
//! The PR9 search core rebuilds exploration around interned compact
//! states, 128-bit fingerprints, sleep-set partial-order reduction, an
//! ample rule for stable decisions, and symmetry folding under the input
//! vector's stabilizer (DESIGN.md §14). All of it is verdict-pinned to
//! the naive baselines by `crates/sched/tests/reduced_equivalence.rs`;
//! this binary measures what the pin buys and merges the numbers into
//! `BENCH_PR9.json` — kernel pairs, states/sec, and the feasibility
//! frontier (the configuration the naive explorer can no longer finish
//! inside the shared state budget).

use am_bench::{presets::Preset, recorder};
use am_sched::{
    check_nonforking, check_nonforking_naive, search, simulate_execution, simulate_execution_naive,
    Config, Explorer, QuorumVoteProtocol, SearchOptions, Valency,
};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Number, Value};
use std::hint::black_box;
use std::time::Duration;

/// The fixed small-n headline configuration: quorum-vote at n = 4 from
/// the half/half input vector, the E1/E19 shape.
fn headline() -> (QuorumVoteProtocol, Config) {
    (
        QuorumVoteProtocol::new(4, 3, 0),
        Config::initial(&[0, 0, 1, 1]),
    )
}

fn naive_states(proto: &QuorumVoteProtocol, init: &Config, cap: usize) -> (usize, bool, Valency) {
    let a = Explorer::new(proto, cap).analyze(init);
    (a.configs, a.truncated, a.valency)
}

fn reduced_states(proto: &QuorumVoteProtocol, init: &Config, cap: usize) -> (usize, bool, Valency) {
    let r = search(proto, init, &SearchOptions::reduced(cap));
    (r.states, r.truncated, r.valency)
}

/// Scans every (input mask × strategy) of the Lemma 3.1 search at
/// (n = 3, t = 1, R = 2) through one execution engine; the checksum is
/// the black-box anchor and the two engines must agree on it.
fn round_lb_scan(naive: bool) -> u64 {
    let mut checksum = 0u64;
    for mask in 0..8u32 {
        let inputs: Vec<u8> = (0..3).map(|i| ((mask >> i) & 1) as u8).collect();
        for byz_mask in 0..8u32 {
            for value in 0..=1u8 {
                let strategy = vec![
                    Some(am_sched::round_lb::ByzAction {
                        actor: 0,
                        value,
                        visible_now: byz_mask,
                    }),
                    None,
                ];
                let d = if naive {
                    simulate_execution_naive(&inputs, 1, 2, &strategy, 0)
                } else {
                    simulate_execution(&inputs, 1, 2, &strategy, 0)
                };
                checksum = checksum
                    .rotate_left(7)
                    .wrapping_add(d.iter().fold(0, |a, &x| a * 3 + x as u64));
            }
        }
    }
    checksum
}

fn bench_search_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_search");
    g.sample_size(10);
    let (proto, init) = headline();
    g.bench_function("analyze_naive_n4", |b| {
        b.iter(|| black_box(naive_states(&proto, &init, 2_000_000).0))
    });
    g.bench_function("search_reduced_n4", |b| {
        b.iter(|| black_box(reduced_states(&proto, &init, 2_000_000).0))
    });
    g.bench_function("round_lb_scan_dense", |b| {
        b.iter(|| black_box(round_lb_scan(false)))
    });
    g.finish();
}

/// PR9: kernel pairs plus states/sec and feasibility-frontier records,
/// merged into `BENCH_PR9.json` (see CONTRIBUTING.md "Benchmark
/// trajectory files").
fn bench_pr9_sched(_c: &mut Criterion) {
    let mut rec = recorder::Recorder::preset(Preset::Pr9);
    let budget = Duration::from_millis(700);
    let (proto, init) = headline();

    // The verdicts must agree before anything is timed.
    let (n_states, n_trunc, n_val) = naive_states(&proto, &init, 2_000_000);
    let (r_states, r_trunc, r_val) = reduced_states(&proto, &init, 2_000_000);
    assert!(!n_trunc && !r_trunc, "headline config must fit the cap");
    assert_eq!(n_val, r_val, "reduced search changed the verdict");

    let reduced_ns = rec.measure(
        "sched/bivalence_search_reduced",
        Some("sched/bivalence_search_naive"),
        budget,
        || black_box(reduced_states(&proto, &init, 2_000_000).0),
    );
    let naive_ns = rec.measure("sched/bivalence_search_naive", None, budget, || {
        black_box(naive_states(&proto, &init, 2_000_000).0)
    });
    println!(
        "pr9: reduced search runs {:.2}x the naive explorer on the headline \
         config ({} vs {} states; {:.0} vs {:.0} states/sec)",
        naive_ns / reduced_ns,
        r_states,
        n_states,
        r_states as f64 * 1e9 / reduced_ns,
        n_states as f64 * 1e9 / naive_ns
    );
    rec.record_value(
        "sched/states_per_sec",
        Value::Object(vec![
            ("n".to_string(), Value::Number(Number::UInt(4))),
            (
                "reduced".to_string(),
                Value::Number(Number::Float(r_states as f64 * 1e9 / reduced_ns)),
            ),
            (
                "reduced_peak_states".to_string(),
                Value::Number(Number::UInt(r_states as u64)),
            ),
            (
                "naive".to_string(),
                Value::Number(Number::Float(n_states as f64 * 1e9 / naive_ns)),
            ),
            (
                "naive_peak_states".to_string(),
                Value::Number(Number::UInt(n_states as u64)),
            ),
        ]),
    );

    // Feasibility frontier: under a shared 50k-state budget the naive
    // explorer drowns at n = 5 while the reduced search completes it —
    // the configuration-one-n-larger claim, recorded with the counts.
    let cap = 50_000usize;
    let big = QuorumVoteProtocol::new(5, 3, 0);
    let big_init = Config::initial(&[0, 0, 1, 1, 1]);
    let (bn_states, bn_trunc, _) = naive_states(&big, &big_init, cap);
    let (br_states, br_trunc, _) = reduced_states(&big, &big_init, cap);
    assert!(bn_trunc, "naive must exhaust the shared budget at n = 5");
    assert!(!br_trunc, "reduced must complete n = 5 inside the budget");
    println!(
        "pr9: feasibility frontier at a {cap}-state budget — naive TRUNCATED \
         at {bn_states} states, reduced completed n = 5 in {br_states} states"
    );
    rec.record_value(
        "sched/feasibility_frontier",
        Value::Object(vec![
            (
                "state_budget".to_string(),
                Value::Number(Number::UInt(cap as u64)),
            ),
            (
                "max_feasible_n_naive".to_string(),
                Value::Number(Number::UInt(4)),
            ),
            (
                "max_feasible_n_reduced".to_string(),
                Value::Number(Number::UInt(5)),
            ),
            (
                "naive_states_at_n5".to_string(),
                Value::Number(Number::UInt(bn_states as u64)),
            ),
            ("naive_completed_n5".to_string(), Value::Bool(false)),
            (
                "reduced_states_at_n5".to_string(),
                Value::Number(Number::UInt(br_states as u64)),
            ),
            ("reduced_completed_n5".to_string(), Value::Bool(true)),
        ]),
    );

    // Round lower bound: the dense engine vs the HashMap reference.
    assert_eq!(round_lb_scan(false), round_lb_scan(true), "engines diverge");
    let dense_ns = rec.measure(
        "round_lb/scan_dense",
        Some("round_lb/scan_naive"),
        budget,
        || black_box(round_lb_scan(false)),
    );
    let rl_naive_ns = rec.measure("round_lb/scan_naive", None, budget, || {
        black_box(round_lb_scan(true))
    });
    println!(
        "pr9: dense round-lb engine runs {:.2}x the HashMap baseline",
        rl_naive_ns / dense_ns
    );

    // Nonforking: incremental finality oracle vs full replay.
    let nf_fast = check_nonforking(3, &[1], 5, 400_000);
    let nf_naive = check_nonforking_naive(3, &[1], 5, 400_000);
    assert_eq!(nf_fast.states, nf_naive.states, "coverage diverged");
    let nf_ns = rec.measure(
        "nonforking/check_incremental",
        Some("nonforking/check_replay"),
        budget,
        || black_box(check_nonforking(3, &[1], 5, 400_000).states),
    );
    let nf_naive_ns = rec.measure("nonforking/check_replay", None, budget, || {
        black_box(check_nonforking_naive(3, &[1], 5, 400_000).states)
    });
    println!(
        "pr9: incremental-oracle nonforking search runs {:.2}x the replay \
         baseline",
        nf_naive_ns / nf_ns
    );
    rec.write();
}

criterion_group!(benches, bench_search_kernels, bench_pr9_sched);
criterion_main!(benches);
