//! Observability overhead on the E4 hot loop: the same append+read
//! workload with the obs registry disabled (the default — every probe is
//! one relaxed atomic load) and enabled (spans, counters, ring events).
//!
//! The acceptance bar is that disabled-obs overhead stays under 5% of the
//! hot loop; the ratio line printed at the end makes the comparison
//! explicit without cross-reading ns/iter rows.

use am_mp::MpSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// The E4 kernel: one ABD append plus one read on an n-node system.
fn e4_hot_loop(n: usize) -> usize {
    let mut sys = MpSystem::new(n, &[], 1);
    sys.append(0, 1).unwrap();
    sys.settle();
    let v = sys.read(1).unwrap();
    sys.settle();
    v.len()
}

fn bench_obs_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_obs_overhead");
    g.sample_size(50);
    let n = 16usize;

    am_obs::set_enabled(false);
    am_obs::reset();
    g.bench_function("obs_disabled", |b| b.iter(|| black_box(e4_hot_loop(n))));

    am_obs::set_enabled(true);
    am_obs::reset();
    g.bench_function("obs_enabled", |b| b.iter(|| black_box(e4_hot_loop(n))));
    am_obs::set_enabled(false);
    g.finish();
}

/// Benchmarks the disabled probes themselves — the entire cost obs adds
/// to an instrumented hot path when observability is off.
fn bench_disabled_probes(c: &mut Criterion) {
    am_obs::set_enabled(false);
    am_obs::reset();
    let mut g = c.benchmark_group("obs_disabled_probes");
    let counter = am_obs::counter("bench.disabled");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("span_open_drop", |b| {
        b.iter(|| drop(black_box(am_obs::span("bench/disabled"))))
    });
    g.finish();
}

/// Times the two modes back to back and prints the overhead ratio, so the
/// <5% disabled-obs claim is a single line of bench output.
fn overhead_ratio(_c: &mut Criterion) {
    let n = 16usize;
    let iters = 300u32;
    let time = |on: bool| {
        am_obs::set_enabled(on);
        am_obs::reset();
        for _ in 0..10 {
            black_box(e4_hot_loop(n)); // warm-up
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(e4_hot_loop(n));
        }
        start.elapsed().as_secs_f64() / iters as f64
    };
    let disabled = time(false);
    let enabled = time(true);
    am_obs::set_enabled(false);
    println!(
        "E4 hot loop (n={n}): obs disabled {:.1} us/iter, enabled {:.1} us/iter, enabled/disabled = {:.3}",
        disabled * 1e6,
        enabled * 1e6,
        enabled / disabled
    );
}

criterion_group!(
    benches,
    bench_obs_modes,
    bench_disabled_probes,
    overhead_ratio
);
criterion_main!(benches);
