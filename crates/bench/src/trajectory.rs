//! The consolidated perf trajectory: `BENCH_TRAJECTORY.json`.
//!
//! Six per-PR `BENCH_PR*.json` files track individual optimization PRs;
//! this module folds their headline numbers into one tracked document
//! ([`Preset::Trajectory`]) so a single file answers "is the repo getting
//! faster or slower" — and gives CI one place to assert against:
//!
//! * [`fold_headlines`] copies every per-PR `speedups` entry in as
//!   `<prN>/<op>` plus the loadgen's throughput records — rerunnable any
//!   time the per-PR files are regenerated.
//! * [`record_sweep`] publishes per-experiment sweep throughput
//!   (trials/sec at a given shard count), recorded by the experiments
//!   harness at merge time. The host's core count is stored alongside,
//!   because multi-process sharding is the only real parallelism in this
//!   workspace (the vendored rayon shim is sequential) and a 1-core
//!   container cannot exhibit the ≥ 3× four-shard speedup a 4-core CI
//!   runner can.
//! * [`ensure_budgets`] seeds the `budgets` section: per-experiment
//!   wall-clock ceilings (seconds) for the CI perf-smoke `--fast` golden
//!   run. The recorder preserves the section verbatim on every later
//!   merge, so hand-tuned values stick; CI multiplies each ceiling by
//!   the `PERF_BUDGET_SCALE` env knob to absorb noisy runners.

use crate::presets::{Preset, HEADLINE};
use crate::recorder::Recorder;
use serde::{Number, Value};
use std::path::PathBuf;

/// One sweep throughput observation, recorded at merge time.
#[derive(Debug, Clone)]
pub struct SweepThroughput {
    /// Experiment id, e.g. `"e8"`.
    pub experiment: String,
    /// How many OS-process shards produced the tallies (1 = unsharded).
    pub shards: u32,
    /// Total Monte-Carlo trials across the experiment's sweep points.
    pub trials: u64,
    /// Wall-clock seconds from first shard spawn to merged results.
    pub wall_s: f64,
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

/// Path of a trajectory file at the repository root.
fn root_path(file_name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(file_name)
}

/// Records one experiment's sweep throughput under
/// `sweep/<experiment>/shards<m>`: trials, wall seconds, trials/sec, and
/// the host's core count (shard speedups are only meaningful relative to
/// the cores that backed them).
pub fn record_sweep(t: &SweepThroughput) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let trials_per_sec = t.trials as f64 / t.wall_s.max(1e-9);
    let mut rec = Recorder::preset(Preset::Trajectory);
    rec.record_value(
        &format!("sweep/{}/shards{}", t.experiment, t.shards),
        Value::Object(vec![
            ("trials".to_string(), Value::Number(Number::UInt(t.trials))),
            ("wall_s".to_string(), num(t.wall_s)),
            ("trials_per_sec".to_string(), num(trials_per_sec)),
            (
                "shards".to_string(),
                Value::Number(Number::UInt(u64::from(t.shards))),
            ),
            ("cores".to_string(), Value::Number(Number::UInt(cores))),
        ]),
    );
    rec.write();
}

/// Folds every per-PR trajectory file's headline numbers into the
/// consolidated file: each `speedups.<op>` lands as `<prN>/<op>` with
/// `{speedup, source}`, and every loadgen-style op carrying
/// `requests_per_sec` lands with its throughput. Missing per-PR files
/// are skipped (their ops simply stay absent). Returns the number of ops
/// folded.
pub fn fold_headlines() -> usize {
    let mut rec = Recorder::preset(Preset::Trajectory);
    let mut folded = 0usize;
    for preset in HEADLINE {
        let Ok(body) = std::fs::read_to_string(root_path(preset.file_name())) else {
            println!("traj: {} absent, skipping", preset.file_name());
            continue;
        };
        let Ok(doc) = serde_json::from_str::<Value>(&body) else {
            println!("traj: {} unparsable, skipping", preset.file_name());
            continue;
        };
        let source = Value::String(preset.file_name().to_string());
        if let Some(Value::Object(speedups)) = doc.get("speedups") {
            for (op, v) in speedups {
                rec.record_value(
                    &format!("{}/{op}", preset.tag()),
                    Value::Object(vec![
                        ("speedup".to_string(), v.clone()),
                        ("source".to_string(), source.clone()),
                    ]),
                );
                folded += 1;
            }
        }
        if let Some(Value::Object(ops)) = doc.get("ops") {
            for (op, entry) in ops {
                let Some(rps) = entry.get("requests_per_sec").and_then(Value::as_f64) else {
                    continue;
                };
                let mut fields = vec![("requests_per_sec".to_string(), num(rps))];
                if let Some(tps) = entry.get("trials_per_sec").and_then(Value::as_f64) {
                    fields.push(("trials_per_sec".to_string(), num(tps)));
                }
                fields.push(("source".to_string(), source.clone()));
                rec.record_value(&format!("{}/{op}", preset.tag()), Value::Object(fields));
                folded += 1;
            }
        }
    }
    rec.write();
    folded
}

/// Default per-experiment wall-clock budgets (seconds) for the CI
/// perf-smoke golden run (`--fast --seed 0`, the `results/golden/` set).
/// Deliberately ~10× the observed durations on a cold CI runner: the
/// budgets exist to catch order-of-magnitude hot-path regressions, not
/// scheduler jitter. CONTRIBUTING.md documents the update policy.
pub const DEFAULT_BUDGETS_S: &[(&str, f64)] = &[
    ("e4", 5.0),
    ("e6", 5.0),
    ("e8", 10.0),
    ("e12", 10.0),
    ("e14", 15.0),
    ("e15", 300.0),
    ("e17", 30.0),
    ("e18", 10.0),
    ("e19", 10.0),
];

/// Seeds the consolidated file's `budgets` section from
/// [`DEFAULT_BUDGETS_S`] when absent, leaving an existing section
/// untouched (hand-tuned ceilings win). Creates the document if needed.
pub fn ensure_budgets() {
    let rec = Recorder::preset(Preset::Trajectory);
    let path = rec.output_path();
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok());
    if let Some(v) = &existing {
        if v.get("budgets").is_some() {
            return;
        }
    }
    // Write (or re-write) through the recorder so the header/ops shape
    // stays canonical, then append the budgets section.
    rec.write();
    let body = std::fs::read_to_string(&path).unwrap_or_default();
    let Ok(Value::Object(mut entries)) = serde_json::from_str::<Value>(&body) else {
        return;
    };
    entries.push((
        "budgets".to_string(),
        Value::Object(
            DEFAULT_BUDGETS_S
                .iter()
                .map(|(id, s)| (id.to_string(), num(*s)))
                .collect(),
        ),
    ));
    let doc = Value::Object(entries);
    let _ = std::fs::write(&path, doc.render(true) + "\n");
    println!("traj: seeded budgets in {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_cover_the_golden_experiments() {
        // The CI perf-smoke golden set; a budget without a golden (or
        // vice versa) means the assertion lane silently checks nothing.
        let golden = ["e4", "e6", "e8", "e12", "e14", "e15", "e17", "e18", "e19"];
        assert_eq!(DEFAULT_BUDGETS_S.len(), golden.len());
        for id in golden {
            assert!(
                DEFAULT_BUDGETS_S.iter().any(|(b, _)| *b == id),
                "no budget for golden experiment {id}"
            );
        }
        for (_, s) in DEFAULT_BUDGETS_S {
            assert!(*s > 0.0);
        }
    }

    #[test]
    fn throughput_record_shape() {
        let t = SweepThroughput {
            experiment: "e8".into(),
            shards: 4,
            trials: 4000,
            wall_s: 2.0,
        };
        // The op key and derived rate, without touching the real file.
        assert_eq!(
            format!("sweep/{}/shards{}", t.experiment, t.shards),
            "sweep/e8/shards4"
        );
        let rate = t.trials as f64 / t.wall_s;
        assert!((rate - 2000.0).abs() < 1e-9);
    }
}
