//! PR5 preset: the networked-engine benchmark schema.
//!
//! PR5 made the networked trial path (event core, gossip, ABD views,
//! propagation state) allocation-free per event; `BENCH_PR5.json` records
//! the optimized kernels against the in-tree naive baselines
//! (`broadcast_cloning`, `local_view_rebuild`, `acks_hashmap`) measured
//! in the same run. Construct the recorder with
//! [`Recorder::pr5`](crate::recorder::Recorder::pr5); the equivalence of
//! the two paths is asserted bit-for-bit by the 300-seed
//! `naive_equiv` suite in `am-mp`.

/// Schema tag written to (and required of) `BENCH_PR5.json`.
pub const SCHEMA: &str = "bench-pr5/1";
