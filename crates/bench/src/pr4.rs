//! PR4 preset: the decision-path benchmark schema.
//!
//! The recorder implementation that used to live here was generalized
//! into [`crate::recorder`] so later optimization PRs can write their own
//! schema-tagged files; construct the PR4 recorder with
//! [`Recorder::pr4`](crate::recorder::Recorder::pr4).

/// Schema tag written to (and required of) `BENCH_PR4.json`.
pub const SCHEMA: &str = "bench-pr4/1";
