//! The single table of benchmark trajectory files.
//!
//! Every optimization PR records its before/after numbers into one
//! schema-tagged `BENCH_*.json` at the repository root, all written
//! through [`Recorder::preset`](crate::recorder::Recorder::preset) and
//! all sharing the same document header (`format` / `schema` / `ops` /
//! `speedups` — see CONTRIBUTING.md "Benchmark trajectory files").
//! Adding a trajectory file means adding one [`Preset`] variant here;
//! nothing else in the recorder changes.

/// Header field shared by every trajectory document: the common format
/// version, independent of the per-preset `schema` tag.
pub const FORMAT: &str = "bench-trajectory/1";

/// One benchmark trajectory file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// PR4, the incremental decision-path engine (DESIGN.md §9):
    /// optimized kernels vs the in-tree `*_naive` baselines
    /// (`run_dag_naive`, `linearize_naive`, `read_rebuild`,
    /// `deepest_rescan`).
    Pr4,
    /// PR5, the zero-copy networked-trial engine (DESIGN.md §10):
    /// optimized kernels vs `broadcast_cloning` / `local_view_rebuild` /
    /// `acks_hashmap`, pinned bit-equal by the 300-seed `naive_equiv`
    /// suite.
    Pr5,
    /// PR6, the `am-node` serving runtime (DESIGN.md §11): loadgen
    /// throughput and latency records (requests/s, p50/p99/p999) rather
    /// than kernel-vs-naive pairs.
    Pr6,
    /// PR7, the embedded BFT finality layer (DESIGN.md §12): the
    /// incremental finality oracle vs a replay-from-scratch baseline,
    /// plus an E15 sweep-cell record.
    Pr7,
    /// PR8, the topology engine (DESIGN.md §13): relay-gossip trial
    /// throughput with sparse per-link state vs the dense O(n²)
    /// statistics baseline, plus an E18-style divergence-probe record.
    Pr8,
    /// PR9, the compact model-checker core (DESIGN.md §14): the reduced
    /// search (interning + sleep sets + ample decide + symmetry) vs the
    /// naive explorer, the dense round-lower-bound engine vs its HashMap
    /// baseline, plus states/sec and feasibility-frontier records.
    Pr9,
    /// The consolidated trajectory (DESIGN.md §15): every historic
    /// preset's headline speedups folded into one file, per-experiment
    /// sweep throughput (trials/sec at each shard count, recorded at
    /// merge time), and the wall-clock budgets CI perf-smoke asserts.
    Trajectory,
}

/// All presets, in PR order, with the consolidated trajectory last.
pub const ALL: [Preset; 7] = [
    Preset::Pr4,
    Preset::Pr5,
    Preset::Pr6,
    Preset::Pr7,
    Preset::Pr8,
    Preset::Pr9,
    Preset::Trajectory,
];

/// The per-PR presets the consolidated [`Preset::Trajectory`] folds —
/// [`ALL`] minus the trajectory itself.
pub const HEADLINE: [Preset; 6] = [
    Preset::Pr4,
    Preset::Pr5,
    Preset::Pr6,
    Preset::Pr7,
    Preset::Pr8,
    Preset::Pr9,
];

impl Preset {
    /// Schema tag written to (and required of) the file.
    pub fn schema(self) -> &'static str {
        match self {
            Preset::Pr4 => "bench-pr4/1",
            Preset::Pr5 => "bench-pr5/1",
            Preset::Pr6 => "bench-pr6/1",
            Preset::Pr7 => "bench-pr7/1",
            Preset::Pr8 => "bench-pr8/1",
            Preset::Pr9 => "bench-pr9/1",
            Preset::Trajectory => "bench-trajectory-consolidated/1",
        }
    }

    /// File name at the repository root.
    pub fn file_name(self) -> &'static str {
        match self {
            Preset::Pr4 => "BENCH_PR4.json",
            Preset::Pr5 => "BENCH_PR5.json",
            Preset::Pr6 => "BENCH_PR6.json",
            Preset::Pr7 => "BENCH_PR7.json",
            Preset::Pr8 => "BENCH_PR8.json",
            Preset::Pr9 => "BENCH_PR9.json",
            Preset::Trajectory => "BENCH_TRAJECTORY.json",
        }
    }

    /// Short tag prefixing the recorder's progress lines.
    pub fn tag(self) -> &'static str {
        match self {
            Preset::Pr4 => "pr4",
            Preset::Pr5 => "pr5",
            Preset::Pr6 => "pr6",
            Preset::Pr7 => "pr7",
            Preset::Pr8 => "pr8",
            Preset::Pr9 => "pr9",
            Preset::Trajectory => "traj",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a.schema(), b.schema());
                assert_ne!(a.file_name(), b.file_name());
                assert_ne!(a.tag(), b.tag());
            }
        }
    }
}
