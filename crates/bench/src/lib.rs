//! Shared fixtures for the benchmark suite.
//!
//! The benches (one per experiment family, plus the DESIGN.md ablations)
//! live in `benches/`; this crate only hosts reusable history builders so
//! the fixtures stay identical across bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use am_core::{AppendMemory, MessageBuilder, MsgId, NodeId, Value, GENESIS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod presets;
pub mod recorder;
pub mod trajectory;

/// Builds a linear chain of `len` blocks authored round-robin by `n` nodes.
pub fn chain_history(n: usize, len: usize) -> AppendMemory {
    let mem = AppendMemory::new(n);
    let mut tip = GENESIS;
    for i in 0..len {
        tip = mem
            .append(MessageBuilder::new(NodeId((i % n) as u32), Value::plus()).parent(tip))
            .unwrap();
    }
    mem
}

/// Builds a bushy random DAG: each append references 1–3 uniformly random
/// prior messages. Deterministic per seed.
pub fn dag_history(n: usize, len: usize, seed: u64) -> AppendMemory {
    let mem = AppendMemory::new(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..len {
        let cur = mem.len() as u64;
        let parents: Vec<MsgId> = (0..rng.gen_range(1..=3usize))
            .map(|_| MsgId(rng.gen_range(0..cur)))
            .collect();
        mem.append(MessageBuilder::new(NodeId((i % n) as u32), Value::plus()).parents(parents))
            .unwrap();
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_core::check_view;

    #[test]
    fn fixtures_are_valid_histories() {
        let c = chain_history(4, 50);
        assert_eq!(c.len(), 51);
        assert!(check_view(&c.read(), true).is_empty());
        let d = dag_history(4, 50, 1);
        assert_eq!(d.len(), 51);
        assert!(check_view(&d.read(), true).is_empty());
    }

    #[test]
    fn dag_fixture_deterministic() {
        let a = dag_history(4, 30, 7).read();
        let b = dag_history(4, 30, 7).read();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.parents, y.parents);
        }
    }
}
