//! Machine-readable recorder for the benchmark trajectory files.
//!
//! The vendored criterion shim prints per-iteration timings but does not
//! hand the measured numbers back to the caller, so comparison groups
//! time their closures directly with [`std::time::Instant`] and merge the
//! results into a `BENCH_*.json` file at the repository root. One file
//! per optimization PR — the [`Preset`] table in [`crate::presets`] is
//! the single registry — all sharing one document shape (documented in
//! CONTRIBUTING.md "Benchmark trajectory files"):
//!
//! ```json
//! {
//!   "schema": "bench-prN/1",
//!   "format": "bench-trajectory/1",
//!   "ops": { "<op>": { "ns_per_op": 123.4, "baseline": "<naive-op>" } },
//!   "speedups": { "<op>": 3.7 }
//! }
//! ```
//!
//! `ops` maps an operation name to its record. Kernel comparisons
//! ([`Recorder::measure`]) record `{ns_per_op, baseline?}` where
//! `baseline` names the in-repo `*_naive` op to compare against;
//! richer records ([`Recorder::record_value`], e.g. the `am-node`
//! loadgen's throughput/latency summaries) store an arbitrary JSON
//! object. `speedups` is derived on every write: `baseline ns / op ns`
//! for each op whose baseline is also present in the file. Several
//! bench binaries may contribute to one file, so writes merge into any
//! existing document with a matching schema instead of replacing it.

use crate::presets::{Preset, FORMAT};
use serde::{Number, Value};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One recorded operation: either a timed kernel (mean ns/op plus the
/// optional baseline op name) or a preassembled record object.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// Operation name, e.g. `run_dag/ghost_withhold_lam1.6_k15`.
    pub op: String,
    /// The record stored under `ops.<op>` — for timed kernels an object
    /// of the shape `{ns_per_op, baseline?}`.
    pub record: Value,
}

/// Collects [`OpResult`]s and merge-writes them to a schema-tagged
/// `BENCH_*.json` at the repository root.
#[derive(Debug)]
pub struct Recorder {
    schema: &'static str,
    file_name: &'static str,
    tag: &'static str,
    results: Vec<OpResult>,
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float(x))
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Inserts or replaces `key` in an insertion-ordered object body.
fn upsert(entries: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value,
        None => entries.push((key.to_string(), value)),
    }
}

impl Recorder {
    /// A recorder writing `file_name` (repo-root relative) tagged with
    /// `schema`; `tag` prefixes the progress lines printed per op.
    pub fn new(schema: &'static str, file_name: &'static str, tag: &'static str) -> Recorder {
        Recorder {
            schema,
            file_name,
            tag,
            results: Vec::new(),
        }
    }

    /// The recorder for one of the registered trajectory files — the
    /// single entry point every bench binary and the loadgen share.
    pub fn preset(p: Preset) -> Recorder {
        Recorder::new(p.schema(), p.file_name(), p.tag())
    }

    /// Times `f` (after one warm-up call) for roughly `budget` and records
    /// the mean ns/op under `op`. Returns the measured ns/op.
    pub fn measure<O>(
        &mut self,
        op: &str,
        baseline: Option<&str>,
        budget: Duration,
        mut f: impl FnMut() -> O,
    ) -> f64 {
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        let ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        println!("{}: {op:<44} {ns:>14.1} ns/op  ({iters} iters)", self.tag);
        let mut entry = vec![("ns_per_op".to_string(), num(ns))];
        if let Some(b) = baseline {
            entry.push(("baseline".to_string(), Value::String(b.to_string())));
        }
        self.results.push(OpResult {
            op: op.to_string(),
            record: Value::Object(entry),
        });
        ns
    }

    /// Records a preassembled JSON object under `ops.<op>` — the lane for
    /// records richer than a kernel timing (e.g. the loadgen's
    /// throughput/latency summary). The object participates in the merge
    /// exactly like a timed op; `speedups` derivation skips it unless it
    /// carries both `ns_per_op` and `baseline`.
    pub fn record_value(&mut self, op: &str, record: Value) {
        println!("{}: {op:<44} (record)", self.tag);
        self.results.push(OpResult {
            op: op.to_string(),
            record,
        });
    }

    /// Path of this recorder's output file at the repository root.
    pub fn output_path(&self) -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(self.file_name)
    }

    /// Merges the recorded ops into the output file and recomputes the
    /// `speedups` map. Existing entries for other ops are preserved so
    /// several bench binaries can each contribute their share.
    pub fn write(&self) {
        let path = self.output_path();
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<Value>(&s).ok())
            .filter(|v| matches!(v.get("schema"), Some(Value::String(s)) if s == self.schema));
        let mut ops: Vec<(String, Value)> = match existing.as_ref().and_then(|v| v.get("ops")) {
            Some(Value::Object(entries)) => entries.clone(),
            _ => Vec::new(),
        };
        for r in &self.results {
            upsert(&mut ops, &r.op, r.record.clone());
        }
        let mut speedups: Vec<(String, Value)> = Vec::new();
        for (op, entry) in &ops {
            let base = match entry.get("baseline") {
                Some(Value::String(b)) => b,
                _ => continue,
            };
            let ns = entry.get("ns_per_op").and_then(Value::as_f64);
            let base_ns = ops
                .iter()
                .find(|(k, _)| k == base)
                .and_then(|(_, e)| e.get("ns_per_op"))
                .and_then(Value::as_f64);
            if let (Some(ns), Some(base_ns)) = (ns, base_ns) {
                if ns > 0.0 {
                    speedups.push((op.clone(), num(round2(base_ns / ns))));
                }
            }
        }
        let mut doc = vec![
            ("schema".to_string(), Value::String(self.schema.to_string())),
            ("format".to_string(), Value::String(FORMAT.to_string())),
            ("ops".to_string(), Value::Object(ops)),
            ("speedups".to_string(), Value::Object(speedups)),
        ];
        // Carry over any other top-level sections of a matching document
        // (e.g. the consolidated trajectory's hand-maintained `budgets`
        // map) so a recorder run never strips them.
        if let Some(Value::Object(entries)) = existing.as_ref() {
            for (k, v) in entries {
                if !doc.iter().any(|(dk, _)| dk == k) {
                    doc.push((k.clone(), v.clone()));
                }
            }
        }
        let doc = Value::Object(doc);
        std::fs::write(&path, doc.render(true) + "\n")
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("{}: wrote {}", self.tag, path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_ns() {
        let mut rec = Recorder::new("bench-test/1", "BENCH_TEST.json", "test");
        let ns = rec.measure("noop", None, Duration::from_millis(5), || {
            std::hint::black_box(1 + 1)
        });
        assert!(ns > 0.0);
        assert_eq!(rec.results.len(), 1);
    }

    #[test]
    fn presets_target_distinct_files_and_schemas() {
        let a = Recorder::preset(Preset::Pr4);
        let b = Recorder::preset(Preset::Pr5);
        let c = Recorder::preset(Preset::Pr6);
        assert_ne!(a.schema, b.schema);
        assert_ne!(a.output_path(), b.output_path());
        assert!(a.output_path().ends_with("BENCH_PR4.json"));
        assert!(b.output_path().ends_with("BENCH_PR5.json"));
        assert!(c.output_path().ends_with("BENCH_PR6.json"));
    }

    #[test]
    fn record_value_is_upserted_verbatim() {
        let mut rec = Recorder::new("bench-test/1", "BENCH_TEST.json", "test");
        let body = Value::Object(vec![
            ("requests".to_string(), num(100.0)),
            ("requests_per_sec".to_string(), num(5.0)),
        ]);
        rec.record_value("loadgen/smoke", body.clone());
        assert_eq!(rec.results.len(), 1);
        assert_eq!(rec.results[0].record, body);
    }

    #[test]
    fn upsert_replaces_in_place_and_appends() {
        let mut entries = vec![("a".to_string(), num(1.0))];
        upsert(&mut entries, "a", num(2.0));
        upsert(&mut entries, "b", num(3.0));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1.as_f64(), Some(2.0));
        assert_eq!(entries[1].0, "b");
    }

    #[test]
    fn merged_doc_round_trips_with_speedups() {
        // Exercise the document shape end-to-end through the vendored
        // serde_json parser, without touching the real output files.
        let ops = Value::Object(vec![
            (
                "fast".to_string(),
                Value::Object(vec![
                    ("ns_per_op".to_string(), num(100.0)),
                    ("baseline".to_string(), Value::String("slow".into())),
                ]),
            ),
            (
                "slow".to_string(),
                Value::Object(vec![("ns_per_op".to_string(), num(400.0))]),
            ),
        ]);
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("bench-test/1".to_string()),
            ),
            ("ops".to_string(), ops),
        ]);
        let parsed: Value = serde_json::from_str(&doc.render(true)).unwrap();
        let fast = parsed.get("ops").and_then(|o| o.get("fast")).unwrap();
        let base = match fast.get("baseline") {
            Some(Value::String(s)) => s.clone(),
            _ => panic!("missing baseline"),
        };
        let ratio = parsed
            .get("ops")
            .and_then(|o| o.get(&base))
            .and_then(|e| e.get("ns_per_op"))
            .and_then(Value::as_f64)
            .unwrap()
            / fast.get("ns_per_op").and_then(Value::as_f64).unwrap();
        assert!((ratio - 4.0).abs() < 1e-9);
    }
}
