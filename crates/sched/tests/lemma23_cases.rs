//! The four commutativity cases of Lemma 2.3, as executable tests.
//!
//! The proof of Lemma 2.3 distinguishes how two events `e_p`, `e_q` of
//! different nodes interact:
//!
//! 1. both reads — commutative (neither changes the memory);
//! 2. both appends — commutative (the memory cannot order them);
//! 3. (and 4.) read + append — the read does not change the memory, so
//!    the other node's configurations coincide and a crash of the reader
//!    makes the results indistinguishable.
//!
//! Our per-author-log representation is supposed to make cases 1–2 hold
//! *by construction* and cases 3–4 hold up to the reader's local state.
//! These tests pin that down for the actual `Explorer` transition
//! function, on configurations where both nodes have real events enabled.

use am_sched::{AsyncProtocol, Config, Explorer, Op, QuorumVoteProtocol, ViewRef};

/// A protocol whose nodes append twice (so appends stay enabled long
/// enough to build the interleavings we need).
struct DoubleAppend;

impl AsyncProtocol for DoubleAppend {
    fn n(&self) -> usize {
        3
    }
    fn name(&self) -> String {
        "double-append".into()
    }
    fn next_op(&self, _node: usize, input: u8, own: usize, _view: &ViewRef<'_>, fresh: bool) -> Op {
        if own < 2 {
            Op::Append {
                value: input,
                parents: Vec::new(),
            }
        } else if fresh {
            Op::Read
        } else {
            Op::Idle
        }
    }
}

#[test]
fn case_appends_commute() {
    let p = DoubleAppend;
    let ex = Explorer::new(&p, 10_000);
    let c = Config::initial(&[0, 1, 1]);
    // e_p = append by node 0, e_q = append by node 1, in both orders.
    let (_, c_p) = ex.apply(&c, 0).unwrap();
    let (_, c_pq) = ex.apply(&c_p, 1).unwrap();
    let (_, c_q) = ex.apply(&c, 1).unwrap();
    let (_, c_qp) = ex.apply(&c_q, 0).unwrap();
    assert_eq!(c_pq, c_qp, "appends by different authors must commute");
}

#[test]
fn case_reads_commute() {
    let p = QuorumVoteProtocol::new(3, 3, 0);
    let ex = Explorer::new(&p, 10_000);
    // Set up: nodes 0 and 1 appended; both 0 and 1 now have fresh reads
    // pending (each sees the other's append as new).
    let c = Config::initial(&[0, 1, 0]);
    let (_, c1) = ex.apply(&c, 0).unwrap(); // append 0
    let (_, c2) = ex.apply(&c1, 1).unwrap(); // append 1
                                             // e_p = read by 0, e_q = read by 1.
    let (ev_p, c_p) = ex.apply(&c2, 0).unwrap();
    assert_eq!(ev_p.op, Op::Read);
    let (_, c_pq) = ex.apply(&c_p, 1).unwrap();
    let (ev_q, c_q) = ex.apply(&c2, 1).unwrap();
    assert_eq!(ev_q.op, Op::Read);
    let (_, c_qp) = ex.apply(&c_q, 0).unwrap();
    assert_eq!(c_pq, c_qp, "reads must commute");
}

#[test]
fn case_read_vs_append_preserves_other_nodes() {
    // e_p = read by node 0, e_q = append by node 2. The proof's argument:
    // applying e_q after e_p or directly to C yields configurations that
    // agree on everything except node 0's local state (the reader might
    // have crashed).
    let p = DoubleAppend;
    let ex = Explorer::new(&p, 10_000);
    let c0 = Config::initial(&[0, 1, 1]);
    let (_, a) = ex.apply(&c0, 0).unwrap(); // node 0 appends (own=1)
    let (_, b) = ex.apply(&a, 0).unwrap(); // node 0 appends (own=2)
    let (_, c) = ex.apply(&b, 1).unwrap(); // node 1 appends → node 0 fresh
                                           // Now node 0's next op is a read; node 2's next op is an append.
    let (ev_read, c_after_read) = ex.apply(&c, 0).unwrap();
    assert_eq!(ev_read.op, Op::Read);
    let (_, c_read_append) = ex.apply(&c_after_read, 2).unwrap();
    let (_, c_append) = ex.apply(&c, 2).unwrap();
    // Memory identical in both outcomes:
    assert_eq!(c_read_append.logs, c_append.logs);
    // All nodes except the reader identical:
    for v in 1..3 {
        assert_eq!(c_read_append.nodes[v], c_append.nodes[v]);
    }
    // The reader differs only in its view (it read).
    assert_ne!(c_read_append.nodes[0].view, c_append.nodes[0].view);
    assert_eq!(c_read_append.nodes[0].input, c_append.nodes[0].input);
}

#[test]
fn append_to_obsolete_state_is_always_applicable() {
    // "if e_p is an append command, it can either be appended to the
    // configuration C, or it can be appended to any future configuration"
    // — an append stays applicable no matter how many events intervene.
    let p = DoubleAppend;
    let ex = Explorer::new(&p, 10_000);
    let mut c = Config::initial(&[1, 0, 1]);
    // Let nodes 1 and 2 run for a while; node 0's append must remain
    // applicable afterwards.
    for _ in 0..2 {
        if let Some((_, c2)) = ex.apply(&c, 1) {
            c = c2;
        }
        if let Some((_, c2)) = ex.apply(&c, 2) {
            c = c2;
        }
    }
    let (ev, _) = ex.apply(&c, 0).expect("delayed append still applicable");
    assert!(matches!(ev.op, Op::Append { .. }));
}

#[test]
fn full_interleaving_diamond_closes() {
    // Stronger than pairwise: all 3! orderings of one append per node
    // reach the same configuration (memory is a set of per-author logs).
    let p = DoubleAppend;
    let ex = Explorer::new(&p, 10_000);
    let c0 = Config::initial(&[0, 1, 0]);
    let orders = [
        [0usize, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let mut results = Vec::new();
    for ord in orders {
        let mut c = c0.clone();
        for &v in &ord {
            let (_, c2) = ex.apply(&c, v).unwrap();
            c = c2;
        }
        results.push(c);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0], "all interleavings must converge");
    }
}
