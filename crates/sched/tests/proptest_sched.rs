//! Property tests for the model checker: invariants that must hold for
//! every protocol in the (parameterized) zoo and every initial input
//! vector.

use am_sched::{
    AsyncProtocol, Config, EchoVoteProtocol, Explorer, FirstSeenProtocol, QuorumVoteProtocol,
    Valency,
};
use proptest::prelude::*;

/// Builds a zoo member from generator choices.
fn make_proto(kind: u8, n: usize, q: usize, tie: u8) -> Box<dyn AsyncProtocol> {
    match kind % 3 {
        0 => Box::new(FirstSeenProtocol::new(n)),
        1 => Box::new(QuorumVoteProtocol::new(n, q.clamp(1, n), tie % 2)),
        _ => Box::new(EchoVoteProtocol::new(n, q.clamp(1, n), tie % 2)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform-input configurations are never bivalent for any protocol
    /// that treats inputs symmetrically — and all our zoo protocols do:
    /// their decisions are majorities/first-values of appended inputs, so
    /// a uniform start can only ever reach the uniform decision (or no
    /// decision at all).
    #[test]
    fn uniform_inputs_are_never_bivalent(
        kind in 0u8..3,
        n in 3usize..4,
        q in 1usize..4,
        tie in 0u8..2,
        bit in 0u8..2,
    ) {
        let proto = make_proto(kind, n, q, tie);
        let ex = Explorer::new(proto.as_ref(), 500_000);
        let inputs = vec![bit; n];
        let a = ex.analyze(&Config::initial(&inputs));
        prop_assert!(!a.truncated, "budget too small");
        prop_assert_ne!(
            a.valency,
            Valency::Bivalent,
            "uniform inputs reached both decisions for {}",
            proto.name()
        );
        // And validity direction when a decision is reachable at all.
        match (bit, a.valency) {
            (0, Valency::One) => prop_assert!(false, "uniform 0 decided 1"),
            (1, Valency::Zero) => prop_assert!(false, "uniform 1 decided 0"),
            _ => {}
        }
    }

    /// Event application is deterministic and commutes across authors for
    /// arbitrary short schedules: replaying the same schedule yields the
    /// same configuration, and swapping two adjacent events of different
    /// nodes that are both appends yields the same configuration.
    #[test]
    fn schedules_replay_deterministically(
        kind in 0u8..3,
        q in 1usize..4,
        tie in 0u8..2,
        mask in 0u32..8,
        schedule in prop::collection::vec(0usize..3, 1..12),
    ) {
        let n = 3;
        let proto = make_proto(kind, n, q, tie);
        let ex = Explorer::new(proto.as_ref(), 500_000);
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let run = |sched: &[usize]| {
            let mut c = Config::initial(&inputs);
            for &v in sched {
                if let Some((_, c2)) = ex.apply(&c, v) {
                    c = c2;
                }
            }
            c
        };
        prop_assert_eq!(run(&schedule), run(&schedule));
    }

    /// Total-appends monotonicity: applying any event never removes
    /// messages from the memory (append-only).
    #[test]
    fn memory_is_append_only(
        kind in 0u8..3,
        q in 1usize..4,
        mask in 0u32..8,
        schedule in prop::collection::vec(0usize..3, 1..15),
    ) {
        let n = 3;
        let proto = make_proto(kind, n, q, 0);
        let ex = Explorer::new(proto.as_ref(), 500_000);
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let mut c = Config::initial(&inputs);
        let mut prev_total = 0;
        for &v in &schedule {
            if let Some((_, c2)) = ex.apply(&c, v) {
                prop_assert!(c2.total_appends() >= prev_total);
                prev_total = c2.total_appends();
                c = c2;
            }
        }
    }

    /// Decided nodes stay decided (halting is absorbing): once a node's
    /// decision is set, no later event of any node changes it.
    #[test]
    fn decisions_are_absorbing(
        kind in 0u8..3,
        q in 1usize..4,
        mask in 0u32..8,
        schedule in prop::collection::vec(0usize..3, 1..20),
    ) {
        let n = 3;
        let proto = make_proto(kind, n, q, 0);
        let ex = Explorer::new(proto.as_ref(), 500_000);
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let mut c = Config::initial(&inputs);
        let mut decided: Vec<Option<u8>> = vec![None; n];
        for &v in &schedule {
            if let Some((_, c2)) = ex.apply(&c, v) {
                for (i, slot) in decided.iter_mut().enumerate() {
                    if let Some(d) = *slot {
                        prop_assert_eq!(c2.nodes[i].decided, Some(d), "node {} flipped", i);
                    }
                    *slot = c2.nodes[i].decided;
                }
                c = c2;
            }
        }
    }
}
