//! Reduced-vs-naive equivalence suite: the compact search core of
//! `am_sched::search` (interning + fingerprinting + sleep sets + ample
//! decide + symmetry folding) must be a *verdict-preserving* drop-in for
//! the naive [`Explorer`] on every protocol in the zoo — same valency for
//! every input vector, an agreement/v-free witness iff the naive search
//! finds one, and (with sleep sets alone) the exact same reachable state
//! count. The nonforking DAG search gets the same treatment against its
//! replay-everything baseline. These are the soundness pins behind the
//! BENCH_PR9 speedup claims (DESIGN.md §14).

use am_sched::{
    check_nonforking, check_nonforking_naive, initial_bivalent, initial_bivalent_fast,
    round_robin_witness, round_robin_witness_fast, search, AsyncProtocol, Config, EchoVoteProtocol,
    Explorer, FirstSeenProtocol, QuorumVoteProtocol, SearchOptions,
};
use proptest::prelude::*;

const BUDGET: usize = 500_000;

/// The protocol zoo at `n` nodes: one asymmetric member (FirstSeen
/// tie-breaks on author index) and two symmetric ones.
fn zoo(n: usize) -> Vec<(&'static str, Box<dyn AsyncProtocol>)> {
    vec![
        (
            "first-seen",
            Box::new(FirstSeenProtocol::new(n)) as Box<dyn AsyncProtocol>,
        ),
        (
            "quorum-vote",
            Box::new(QuorumVoteProtocol::new(n, n / 2 + 1, 0)),
        ),
        (
            "quorum-vote-unanimous",
            Box::new(QuorumVoteProtocol::new(n, n, 1)),
        ),
        (
            "echo-vote",
            Box::new(EchoVoteProtocol::new(n, n / 2 + 1, 0)),
        ),
    ]
}

/// Every input vector of length `n`, as `Config`s.
fn all_initials(n: usize) -> impl Iterator<Item = Config> {
    (0..(1u32 << n)).map(move |mask| {
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        Config::initial(&inputs)
    })
}

#[test]
fn reduced_search_matches_naive_valency_on_every_input_vector() {
    for (name, proto) in zoo(3) {
        let ex = Explorer::new(proto.as_ref(), BUDGET);
        for c in all_initials(3) {
            let naive = ex.analyze(&c);
            assert!(!naive.truncated, "{name}: naive budget too small");
            let rep = search(proto.as_ref(), &c, &SearchOptions::reduced(BUDGET));
            assert!(!rep.truncated, "{name}: reduced budget too small");
            assert_eq!(rep.valency, naive.valency, "{name} at {:?}", c);
            assert_eq!(
                rep.agreement_violation.is_some(),
                naive.agreement_violation.is_some(),
                "{name}: agreement witness must exist iff naive finds one"
            );
            assert_eq!(
                rep.vfree_nontermination.is_some(),
                naive.vfree_nontermination.is_some(),
                "{name}: v-free witness must exist iff naive finds one"
            );
        }
    }
}

#[test]
fn sleep_sets_alone_preserve_the_exact_state_count() {
    // Sleep sets prune *transitions*, never states: with every other
    // reduction off and exact keys on, the visited count must equal the
    // naive explorer's distinct-configuration count, protocol by
    // protocol, input vector by input vector.
    for (name, proto) in zoo(3) {
        let ex = Explorer::new(proto.as_ref(), BUDGET);
        let mut opts = SearchOptions::unreduced(BUDGET);
        opts.sleep_sets = true;
        for c in all_initials(3) {
            let naive = ex.analyze(&c);
            let rep = search(proto.as_ref(), &c, &opts);
            assert_eq!(
                rep.states, naive.configs,
                "{name} at {:?}: sleep sets must preserve the state set",
                c
            );
            assert_eq!(rep.collisions, 0, "{name}: exact mode saw an fp collision");
        }
    }
}

#[test]
fn fast_witness_pipeline_agrees_with_naive_for_every_zoo_protocol() {
    let opts = SearchOptions::reduced(BUDGET);
    for (name, proto) in zoo(3) {
        let naive_start = initial_bivalent(proto.as_ref(), BUDGET);
        let fast_start = initial_bivalent_fast(proto.as_ref(), &opts);
        assert_eq!(
            naive_start.as_ref().map(|(i, _)| i),
            fast_start.as_ref().map(|(i, _)| i),
            "{name}: bivalent start must match"
        );

        let naive = round_robin_witness(proto.as_ref(), 6, BUDGET);
        let fast = round_robin_witness_fast(proto.as_ref(), 6, &opts);
        assert_eq!(naive.outcome, fast.outcome, "{name}: witness outcome");
        assert_eq!(naive.inputs, fast.inputs, "{name}: witness inputs");
    }
}

#[test]
fn nonforking_reduced_verdicts_match_naive() {
    for byz in [&[][..], &[1][..]] {
        let fast = check_nonforking(3, byz, 5, 200_000);
        let naive = check_nonforking_naive(3, byz, 5, 200_000);
        assert_eq!(fast.violation, naive.violation, "byz {byz:?}");
        assert_eq!(fast.states, naive.states, "byz {byz:?}");
        assert_eq!(fast.max_finalized, naive.max_finalized, "byz {byz:?}");
        assert_eq!(
            fast.finalizing_states, naive.finalizing_states,
            "byz {byz:?}"
        );
        assert_eq!(
            fast.equivocating_states, naive.equivocating_states,
            "byz {byz:?}"
        );
        assert_eq!(naive.observes_saved, 0);
        assert!(fast.observes_saved > 0, "reduction must actually fire");
    }
}

// ---------------------------------------------------------------------------
// Symmetry canonicalization property
// ---------------------------------------------------------------------------

/// Builds a permutation of `0..n` that fixes the input vector (only nodes
/// with equal inputs are swapped), from an arbitrary shuffled order: the
/// members of each input class are re-mapped to the class members in the
/// order the shuffle lists them.
fn class_fixing_perm(inputs: &[u8], order: &[usize]) -> Vec<usize> {
    let n = inputs.len();
    let mut perm = vec![0usize; n];
    for class in [0u8, 1] {
        let members: Vec<usize> = (0..n).filter(|&i| inputs[i] == class).collect();
        let shuffled: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| inputs[i] == class)
            .collect();
        for (m, s) in members.iter().zip(shuffled.iter()) {
            perm[*m] = *s;
        }
    }
    perm
}

/// Runs a schedule (list of node indices; passive steps are skipped) from
/// the all-inputs initial configuration.
fn run_schedule(proto: &dyn AsyncProtocol, inputs: &[u8], schedule: &[usize]) -> Config {
    let ex = Explorer::new(proto, BUDGET);
    let mut c = Config::initial(inputs);
    for &v in schedule {
        if let Some((_, next)) = ex.apply(&c, v) {
            c = next;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `canon(perm(s)) == canon(s)`: for a symmetric protocol, running a
    /// schedule and running its node-permuted image (under any
    /// permutation that fixes the input vector) must land in the same
    /// symmetry orbit — i.e. produce the identical canonical key.
    #[test]
    fn canonical_key_is_invariant_under_input_fixing_permutations(
        quorumish in 0u8..2,
        n in 3usize..5,
        mask in 0u32..32,
        schedule in proptest::collection::vec(0usize..5, 0..8),
        keys in proptest::collection::vec(0u32..1000, 5),
    ) {
        let proto: Box<dyn AsyncProtocol> = if quorumish == 0 {
            Box::new(QuorumVoteProtocol::new(n, n / 2 + 1, 0))
        } else {
            Box::new(EchoVoteProtocol::new(n, n / 2 + 1, 0))
        };
        prop_assume!(proto.symmetric());
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let schedule: Vec<usize> = schedule.into_iter().map(|v| v % n).collect();
        // A shuffle of 0..n derived from random sort keys (index tiebreak
        // keeps it a permutation even with duplicate keys).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let perm = class_fixing_perm(&inputs, &order);

        // perm fixes the input vector by construction.
        for i in 0..n {
            prop_assert_eq!(inputs[perm[i]], inputs[i]);
        }

        let a = run_schedule(proto.as_ref(), &inputs, &schedule);
        let permuted: Vec<usize> = schedule.iter().map(|&v| perm[v]).collect();
        let b = run_schedule(proto.as_ref(), &inputs, &permuted);

        prop_assert_eq!(
            am_sched::canonical_key(&a, true),
            am_sched::canonical_key(&b, true),
            "orbit-mates must share a canonical key"
        );
    }
}
