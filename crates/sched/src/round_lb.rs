//! The Lemma 3.1 round lower bound, as an exhaustive adversary search.
//!
//! Setting: synchronous nodes, round-based execution (one append + one read
//! per node per round), `t = 1` Byzantine node. The Byzantine power in the
//! append memory is *straddling*: "it can delay its own messages such that
//! only part of the nodes will see its message in the memory in round i,
//! and the other nodes will only be able to see it with the next read in
//! round i + 1."
//!
//! The protocol under test is the Algorithm-1 family truncated to `R`
//! rounds: accept a value iff an `R`-long chain of distinct relayers
//! vouches for it, decide the majority of accepted values. The search
//! enumerates every input vector and every Byzantine straddling strategy:
//!
//! * for `R ≤ t` it finds a disagreement execution (the constructive form
//!   of Lemma 3.1's "still bivalent at the end of round t");
//! * for `R = t + 1` the search is exhaustive and finds none (matching
//!   Theorem 3.2).

/// One Byzantine action in one round: Byzantine node `actor` appends
/// `value` and lets exactly the correct nodes in `visible_now` (a bitmask
/// over correct indices) see it within the round; everyone else sees it
/// one round later. Lemma 3.1's induction uses one Byzantine node per
/// round (`b_{i-1}`), which is exactly this shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByzAction {
    /// Which Byzantine node acts this round (0-based among the t of them).
    pub actor: usize,
    /// The value the Byzantine node appends (its claimed input / relay).
    pub value: u8,
    /// Bitmask over *correct-node indices* that see the append this round.
    pub visible_now: u32,
}

/// A full Byzantine strategy: one optional action per round (`None` =
/// silent that round).
pub type ByzStrategy = Vec<Option<ByzAction>>;

/// A found disagreement: the inputs, the strategy, and the decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// Correct nodes' inputs.
    pub inputs: Vec<u8>,
    /// The Byzantine schedule that splits the decisions.
    pub strategy: ByzStrategy,
    /// Per-correct-node decisions (not all equal).
    pub decisions: Vec<u8>,
}

/// Outcome of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundLbOutcome {
    /// Number of (input, strategy) pairs simulated.
    pub executions: usize,
    /// The first disagreement found, if any.
    pub disagreement: Option<Disagreement>,
    /// A validity violation (uniform correct inputs, different decision),
    /// if any — tracked for completeness; the straddling adversary aims at
    /// agreement, not validity.
    pub validity_violation: Option<Disagreement>,
}

/// Identity of a message in the round-based execution: `(round, author)`,
/// rounds 1-based, author `n_correct` = the Byzantine node.
type MsgKey = (u32, usize);

struct Execution {
    n_correct: usize,
    n_byz: usize,
    rounds: u32,
    /// Messages present: key → (value, referenced keys).
    msgs: std::collections::HashMap<MsgKey, (u8, Vec<MsgKey>)>,
    /// Visibility: key → round at which each correct node sees it.
    seen_at: std::collections::HashMap<MsgKey, Vec<u32>>,
}

impl Execution {
    /// Runs the full-information R-round protocol under the given inputs
    /// and Byzantine strategy; returns per-correct-node decisions.
    fn run(inputs: &[u8], n_byz: usize, rounds: u32, strategy: &ByzStrategy, tie: u8) -> Vec<u8> {
        let n_correct = inputs.len();
        let mut ex = Execution {
            n_correct,
            n_byz,
            rounds,
            msgs: std::collections::HashMap::new(),
            seen_at: std::collections::HashMap::new(),
        };

        for r in 1..=rounds {
            // Correct appends: (input, L_{r-1}) where L_{r-1} is everything
            // the node saw by the end of round r-1.
            for (i, &input) in inputs.iter().enumerate() {
                let refs: Vec<MsgKey> = if r == 1 {
                    Vec::new()
                } else {
                    ex.visible_to(i, r - 1)
                };
                let key = (r, i);
                ex.msgs.insert(key, (input, refs));
                // Correct appends land in the memory immediately: every
                // node's read at the end of round r sees them.
                ex.seen_at.insert(key, vec![r; n_correct]);
            }
            // Byzantine append with straddled visibility.
            if let Some(Some(a)) = strategy.get((r - 1) as usize) {
                let refs: Vec<MsgKey> = if r == 1 {
                    Vec::new()
                } else {
                    // Claims to have seen everything of round r-1 (the
                    // Byzantine node reads the true memory).
                    ex.all_of_round(r - 1)
                };
                let key = (r, n_correct + a.actor % n_byz.max(1));
                ex.msgs.insert(key, (a.value, refs));
                let vis: Vec<u32> = (0..n_correct)
                    .map(|i| {
                        if (a.visible_now >> i) & 1 == 1 {
                            r
                        } else {
                            r + 1
                        }
                    })
                    .collect();
                ex.seen_at.insert(key, vis);
            }
        }

        (0..n_correct).map(|i| ex.decide(i, tie)).collect()
    }

    /// Keys visible to correct node `i` by the end of round `r`.
    fn visible_to(&self, i: usize, r: u32) -> Vec<MsgKey> {
        let mut v: Vec<MsgKey> = self
            .seen_at
            .iter()
            .filter(|(_, vis)| vis[i] <= r)
            .map(|(&k, _)| k)
            .collect();
        v.sort_unstable();
        v
    }

    /// All message keys of round `r` (the Byzantine full-knowledge view).
    fn all_of_round(&self, r: u32) -> Vec<MsgKey> {
        let mut v: Vec<MsgKey> = self
            .msgs
            .keys()
            .copied()
            .filter(|&(kr, _)| kr == r)
            .collect();
        v.sort_unstable();
        v
    }

    /// Algorithm-1 acceptance truncated to `rounds` chains: node `i`
    /// accepts author `v`'s round-1 value iff there is a chain of `rounds`
    /// *distinct* authors `v, w_1, …, w_{rounds-1}` with each link listing
    /// the previous message in its references, and the final message
    /// visible to `i` by the decision round.
    fn accepts(&self, i: usize, v: usize) -> bool {
        let start: MsgKey = (1, v);
        if !self.msgs.contains_key(&start) {
            return false;
        }
        if self.rounds == 1 {
            return self.seen_at[&start][i] <= 1;
        }
        // DFS over chains with distinct-author tracking.
        let mut stack: Vec<(MsgKey, u64)> = vec![(start, 1u64 << v)];
        while let Some((key, authors)) = stack.pop() {
            let (r, _) = key;
            if r == self.rounds {
                if self.seen_at[&key][i] <= self.rounds {
                    return true;
                }
                continue;
            }
            // Find round r+1 messages that reference `key` and whose
            // author is new to the chain.
            for (&(nr, na), (_, refs)) in &self.msgs {
                if nr == r + 1 && (authors >> na) & 1 == 0 && refs.contains(&key) {
                    stack.push(((nr, na), authors | (1u64 << na)));
                }
            }
        }
        false
    }

    /// The decision of correct node `i`: majority over accepted round-1
    /// values, ties to `tie`.
    fn decide(&self, i: usize, tie: u8) -> u8 {
        let mut ones = 0usize;
        let mut zeros = 0usize;
        for v in 0..self.n_correct + self.n_byz {
            // every author incl. Byzantine
            if let Some(&(val, _)) = self.msgs.get(&(1, v)) {
                if self.accepts(i, v) {
                    if val == 1 {
                        ones += 1;
                    } else {
                        zeros += 1;
                    }
                }
            }
        }
        match ones.cmp(&zeros) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => tie,
        }
    }
}

// ---------------------------------------------------------------------------
// Dense execution engine (hot path)
// ---------------------------------------------------------------------------

/// Bounds of the dense engine: `rounds ≤ 3`, `n_correct ≤ 8`, `t ≤ 3`.
const MAX_ROUNDS: usize = 3;
/// Max authors (correct + Byzantine).
const MAX_WIDTH: usize = 11;
/// Max message slots (`MAX_ROUNDS × MAX_WIDTH ≤ 64`, so slot sets and
/// reference lists fit in one `u64` bitmask each).
const MAX_SLOTS: usize = MAX_ROUNDS * MAX_WIDTH;

/// The same R-round execution as [`Execution::run`], on flat arrays: a
/// message `(round, author)` is the slot `(round-1)·width + author`,
/// presence and reference lists are `u64` bitmasks, visibility is a flat
/// per-slot array — no allocation anywhere on the per-execution path.
/// Pinned decision-identical to the naive engine by
/// `tests/reduced_equivalence.rs` and the in-module tests.
struct DenseExecution {
    width: usize,
    rounds: u32,
    /// Bit per present slot.
    present: u64,
    /// Value appended in each slot.
    value: [u8; MAX_SLOTS],
    /// Referenced slots, as a bitmask.
    refs: [u64; MAX_SLOTS],
    /// `seen_at[slot][i]` = round at which correct node `i` sees it.
    seen_at: [[u32; 8]; MAX_SLOTS],
}

impl DenseExecution {
    fn slot(&self, r: u32, author: usize) -> usize {
        (r as usize - 1) * self.width + author
    }

    /// Runs the protocol; mirrors [`Execution::run`] decision-for-decision.
    fn run(inputs: &[u8], n_byz: usize, rounds: u32, strategy: &ByzStrategy, tie: u8) -> Vec<u8> {
        let n_correct = inputs.len();
        let width = n_correct + n_byz.max(1);
        debug_assert!(width <= MAX_WIDTH && (rounds as usize) <= MAX_ROUNDS);
        let mut ex = DenseExecution {
            width,
            rounds,
            present: 0,
            value: [0; MAX_SLOTS],
            refs: [0; MAX_SLOTS],
            seen_at: [[u32::MAX; 8]; MAX_SLOTS],
        };

        for r in 1..=rounds {
            for (i, &input) in inputs.iter().enumerate() {
                let refs = if r == 1 { 0 } else { ex.visible_mask(i, r - 1) };
                let s = ex.slot(r, i);
                ex.present |= 1 << s;
                ex.value[s] = input;
                ex.refs[s] = refs;
                for vis in ex.seen_at[s].iter_mut().take(n_correct) {
                    *vis = r;
                }
            }
            if let Some(Some(a)) = strategy.get((r - 1) as usize) {
                let refs = if r == 1 { 0 } else { ex.round_mask(r - 1) };
                let s = ex.slot(r, n_correct + a.actor % n_byz.max(1));
                ex.present |= 1 << s;
                ex.value[s] = a.value;
                ex.refs[s] = refs;
                for (i, vis) in ex.seen_at[s].iter_mut().enumerate().take(n_correct) {
                    *vis = if (a.visible_now >> i) & 1 == 1 {
                        r
                    } else {
                        r + 1
                    };
                }
            }
        }

        (0..n_correct).map(|i| ex.decide(i, tie)).collect()
    }

    /// Slots visible to correct node `i` by the end of round `r`.
    fn visible_mask(&self, i: usize, r: u32) -> u64 {
        let mut m = self.present;
        let mut out = 0u64;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.seen_at[s][i] <= r {
                out |= 1 << s;
            }
        }
        out
    }

    /// Slots of round `r` (the Byzantine full-knowledge view).
    fn round_mask(&self, r: u32) -> u64 {
        let lo = (r as usize - 1) * self.width;
        let band = ((1u64 << self.width) - 1) << lo;
        self.present & band
    }

    /// Algorithm-1 acceptance: an `R`-chain of distinct authors from
    /// `(1, v)` whose final link node `i` sees in time.
    fn accepts(&self, i: usize, v: usize) -> bool {
        let start = v; // slot of (1, v)
        if self.present & (1 << start) == 0 {
            return false;
        }
        if self.rounds == 1 {
            return self.seen_at[start][i] <= 1;
        }
        let mut stack: [(usize, u64); MAX_SLOTS] = [(0, 0); MAX_SLOTS];
        let mut top = 0usize;
        stack[top] = (start, 1u64 << v);
        top += 1;
        while top > 0 {
            top -= 1;
            let (s, authors) = stack[top];
            let r = (s / self.width) as u32 + 1;
            if r == self.rounds {
                if self.seen_at[s][i] <= self.rounds {
                    return true;
                }
                continue;
            }
            let mut cand = self.round_mask(r + 1);
            while cand != 0 {
                let s2 = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                let na = s2 % self.width;
                if (authors >> na) & 1 == 0 && self.refs[s2] & (1 << s) != 0 {
                    stack[top] = (s2, authors | (1u64 << na));
                    top += 1;
                }
            }
        }
        false
    }

    /// Majority over accepted round-1 values, ties to `tie`.
    fn decide(&self, i: usize, tie: u8) -> u8 {
        let mut ones = 0usize;
        let mut zeros = 0usize;
        for v in 0..self.width {
            if self.present & (1 << v) != 0 && self.accepts(i, v) {
                if self.value[v] == 1 {
                    ones += 1;
                } else {
                    zeros += 1;
                }
            }
        }
        match ones.cmp(&zeros) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => tie,
        }
    }
}

/// Simulates one round-based execution on the dense engine (the hot
/// path of [`search_disagreement_t`]).
pub fn simulate_execution(
    inputs: &[u8],
    n_byz: usize,
    rounds: u32,
    strategy: &ByzStrategy,
    tie: u8,
) -> Vec<u8> {
    DenseExecution::run(inputs, n_byz, rounds, strategy, tie)
}

/// The naive `HashMap`-backed reference simulation, kept in-tree as the
/// baseline the dense engine is pinned (and benchmarked) against.
pub fn simulate_execution_naive(
    inputs: &[u8],
    n_byz: usize,
    rounds: u32,
    strategy: &ByzStrategy,
    tie: u8,
) -> Vec<u8> {
    Execution::run(inputs, n_byz, rounds, strategy, tie)
}

/// Enumerates every Byzantine strategy for `rounds` rounds over
/// `n_correct` correct nodes and `n_byz` Byzantine actors: silent, or
/// (actor × value ∈ {0,1} × 2^n_correct visibility subsets) per round.
fn strategies(n_correct: usize, n_byz: usize, rounds: u32) -> Vec<ByzStrategy> {
    let per_round: Vec<Option<ByzAction>> = {
        let mut v: Vec<Option<ByzAction>> = vec![None];
        for actor in 0..n_byz.max(1) {
            for value in 0..=1u8 {
                for mask in 0..(1u32 << n_correct) {
                    v.push(Some(ByzAction {
                        actor,
                        value,
                        visible_now: mask,
                    }));
                }
            }
        }
        v
    };
    let mut all: Vec<ByzStrategy> = vec![Vec::new()];
    for _ in 0..rounds {
        let mut next = Vec::with_capacity(all.len() * per_round.len());
        for s in &all {
            for a in &per_round {
                let mut s2 = s.clone();
                s2.push(*a);
                next.push(s2);
            }
        }
        all = next;
    }
    all
}

/// Exhaustive Lemma 3.1 search: `n_correct` correct nodes plus one
/// Byzantine node, protocol truncated to `rounds` rounds, ties to `tie`.
pub fn search_disagreement(n_correct: usize, rounds: u32, tie: u8) -> RoundLbOutcome {
    search_disagreement_t(n_correct, 1, rounds, tie)
}

/// Exhaustive Lemma 3.1 search with `t_byz` Byzantine nodes (one acting
/// per round, per the lemma's induction). `rounds ≤ t_byz` must find a
/// disagreement; `rounds = t_byz + 1` must not (for t < n/2).
pub fn search_disagreement_t(
    n_correct: usize,
    t_byz: usize,
    rounds: u32,
    tie: u8,
) -> RoundLbOutcome {
    assert!((2..=8).contains(&n_correct), "search is exponential in n");
    assert!((1..=3).contains(&rounds), "search is exponential in rounds");
    assert!((1..=3).contains(&t_byz), "search is exponential in t");
    let strats = strategies(n_correct, t_byz, rounds);
    let mut executions = 0usize;
    let mut disagreement = None;
    let mut validity_violation = None;

    for mask in 0..(1u32 << n_correct) {
        let inputs: Vec<u8> = (0..n_correct).map(|i| ((mask >> i) & 1) as u8).collect();
        let uniform = inputs.iter().all(|&b| b == inputs[0]);
        for s in &strats {
            executions += 1;
            let decisions = DenseExecution::run(&inputs, t_byz, rounds, s, tie);
            let split = decisions.iter().any(|&d| d != decisions[0]);
            if split && disagreement.is_none() {
                disagreement = Some(Disagreement {
                    inputs: inputs.clone(),
                    strategy: s.clone(),
                    decisions: decisions.clone(),
                });
            }
            if uniform && validity_violation.is_none() && decisions.iter().any(|&d| d != inputs[0])
            {
                validity_violation = Some(Disagreement {
                    inputs: inputs.clone(),
                    strategy: s.clone(),
                    decisions,
                });
            }
            if disagreement.is_some() && validity_violation.is_some() {
                return RoundLbOutcome {
                    executions,
                    disagreement,
                    validity_violation,
                };
            }
        }
    }
    RoundLbOutcome {
        executions,
        disagreement,
        validity_violation,
    }
}

/// Exhaustive parallel variant of [`search_disagreement_t`]: the input
/// masks are split into contiguous chunks, one scoped thread per chunk,
/// each scanning masks × strategies on the dense engine. Unlike the
/// sequential search it never early-exits, so `executions` is always the
/// full product — and the outcome (witnesses included) is byte-identical
/// for every `workers` count: each thread reports its first finds with
/// their global `(mask, strategy)` enumeration index and the merge keeps
/// the minimum, i.e. exactly the witness the sequential scan order picks.
pub fn search_disagreement_t_parallel(
    n_correct: usize,
    t_byz: usize,
    rounds: u32,
    tie: u8,
    workers: usize,
) -> RoundLbOutcome {
    let shard = search_disagreement_t_shard(n_correct, t_byz, rounds, tie, 0, 1, workers);
    merge_round_lb_shards(std::slice::from_ref(&shard))
}

/// One process's slice of the parallel search, ready to merge: firsts
/// carry their global `(mask, strategy)` enumeration index so
/// [`merge_round_lb_shards`] can reduce shards from any partition back
/// to the exact sequential-scan witness.
#[derive(Clone, Debug)]
pub struct RoundLbShard {
    /// Executions this shard simulated (its masks × all strategies).
    pub executions: usize,
    /// This shard's first disagreement, tagged with its global index.
    pub disagreement: Option<(usize, Disagreement)>,
    /// This shard's first validity violation, tagged likewise.
    pub validity_violation: Option<(usize, Disagreement)>,
}

/// Folds per-process shards back into the outcome the unsharded
/// parallel search produces: executions summed, witnesses min-reduced by
/// global enumeration index. Order of `shards` does not matter.
pub fn merge_round_lb_shards(shards: &[RoundLbShard]) -> RoundLbOutcome {
    let min_of = |pick: fn(&RoundLbShard) -> &Option<(usize, Disagreement)>| {
        shards
            .iter()
            .filter_map(|s| pick(s).as_ref())
            .min_by_key(|(idx, _)| *idx)
            .map(|(_, d)| d.clone())
    };
    RoundLbOutcome {
        executions: shards.iter().map(|s| s.executions).sum(),
        disagreement: min_of(|s| &s.disagreement),
        validity_violation: min_of(|s| &s.validity_violation),
    }
}

/// The multi-process form of [`search_disagreement_t_parallel`]: shard
/// `shard_index` of `shard_count` scans only the input masks in its
/// residue class (`mask % shard_count == shard_index`), each still
/// against every Byzantine strategy, splitting its masks over `workers`
/// threads. Merging every shard's result with [`merge_round_lb_shards`]
/// is byte-identical to the single-process search for any
/// `(shard_count, workers)` split, because witnesses carry their global
/// enumeration index.
pub fn search_disagreement_t_shard(
    n_correct: usize,
    t_byz: usize,
    rounds: u32,
    tie: u8,
    shard_index: u32,
    shard_count: u32,
    workers: usize,
) -> RoundLbShard {
    assert!((2..=8).contains(&n_correct), "search is exponential in n");
    assert!((1..=3).contains(&rounds), "search is exponential in rounds");
    assert!((1..=3).contains(&t_byz), "search is exponential in t");
    assert!(
        shard_count >= 1 && shard_index < shard_count,
        "shard index {shard_index} out of range (count {shard_count})"
    );
    let strats = strategies(n_correct, t_byz, rounds);
    let masks: Vec<u32> = (0..(1u32 << n_correct))
        .filter(|m| m % shard_count == shard_index)
        .collect();
    let workers = workers.clamp(1, masks.len().max(1));

    /// A chunk's first witness: `(global enumeration index, witness)`.
    type First = Option<(usize, Disagreement)>;

    // Scans one mask chunk; firsts are tagged with their global index in
    // the sequential (mask, strategy) enumeration order.
    let scan = |chunk: &[u32]| {
        let mut dis: First = None;
        let mut val: First = None;
        for &mask in chunk {
            let inputs: Vec<u8> = (0..n_correct).map(|i| ((mask >> i) & 1) as u8).collect();
            let uniform = inputs.iter().all(|&b| b == inputs[0]);
            for (si, s) in strats.iter().enumerate() {
                if dis.is_some() && (!uniform || val.is_some()) {
                    break;
                }
                let decisions = DenseExecution::run(&inputs, t_byz, rounds, s, tie);
                let idx = mask as usize * strats.len() + si;
                let split = decisions.iter().any(|&d| d != decisions[0]);
                if split && dis.is_none() {
                    dis = Some((
                        idx,
                        Disagreement {
                            inputs: inputs.clone(),
                            strategy: s.clone(),
                            decisions: decisions.clone(),
                        },
                    ));
                }
                if uniform && val.is_none() && decisions.iter().any(|&d| d != inputs[0]) {
                    val = Some((
                        idx,
                        Disagreement {
                            inputs: inputs.clone(),
                            strategy: s.clone(),
                            decisions,
                        },
                    ));
                }
            }
        }
        (dis, val)
    };

    let chunk = masks.len().div_ceil(workers).max(1);
    let parts: Vec<(First, First)> = if workers <= 1 || masks.len() <= 1 {
        vec![scan(&masks)]
    } else {
        std::thread::scope(|sc| {
            let handles: Vec<_> = masks.chunks(chunk).map(|c| sc.spawn(|| scan(c))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    let min_of = |pick: fn(&(First, First)) -> &First| {
        parts
            .iter()
            .filter_map(|p| pick(p).as_ref())
            .min_by_key(|(idx, _)| *idx)
            .cloned()
    };
    RoundLbShard {
        executions: masks.len() * strats.len(),
        disagreement: min_of(|p| &p.0),
        validity_violation: min_of(|p| &p.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_round_protocol_is_broken_by_straddling() {
        // t = 1 Byzantine, R = 1 ≤ t: disagreement must exist.
        for tie in [0u8, 1] {
            let out = search_disagreement(3, 1, tie);
            let d = out
                .disagreement
                .unwrap_or_else(|| panic!("R=1 must disagree (tie={tie})"));
            assert!(d.decisions.iter().any(|&x| x != d.decisions[0]));
        }
    }

    #[test]
    fn two_round_protocol_resists_one_byzantine() {
        // R = t + 1 = 2: the exhaustive search must find NO disagreement —
        // the executable content of Theorem 3.2 at t = 1.
        let out = search_disagreement(3, 2, 0);
        assert!(
            out.disagreement.is_none(),
            "Algorithm 1 with t+1 rounds must agree: {:?}",
            out.disagreement
        );
        assert!(out.executions > 1000, "search must be exhaustive");
    }

    #[test]
    fn two_round_protocol_preserves_validity() {
        let out = search_disagreement(3, 2, 0);
        assert!(
            out.validity_violation.is_none(),
            "uniform inputs must decide that input: {:?}",
            out.validity_violation
        );
    }

    #[test]
    fn disagreement_witness_is_replayable() {
        let out = search_disagreement(3, 1, 0);
        let d = out.disagreement.unwrap();
        // Re-run the found strategy and confirm the decisions replay.
        let replay = Execution::run(&d.inputs, 1, 1, &d.strategy, 0);
        assert_eq!(replay, d.decisions);
    }

    #[test]
    fn byz_silence_means_clean_majority() {
        // With a silent Byzantine node the correct nodes just take the
        // majority of their own inputs; no split possible.
        let silent: ByzStrategy = vec![None];
        for mask in 0..8u32 {
            let inputs: Vec<u8> = (0..3).map(|i| ((mask >> i) & 1) as u8).collect();
            let d = Execution::run(&inputs, 1, 1, &silent, 0);
            assert!(
                d.iter().all(|&x| x == d[0]),
                "inputs {inputs:?} split: {d:?}"
            );
        }
    }

    #[test]
    fn four_correct_nodes_still_safe_at_two_rounds() {
        let out = search_disagreement(4, 2, 1);
        assert!(out.disagreement.is_none());
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn guards_against_explosion() {
        let _ = search_disagreement(9, 1, 0);
    }

    #[test]
    fn two_byzantine_break_two_rounds() {
        // t = 2, R = 2 ≤ t: a relayed Byzantine chain (b1 round-1, b2
        // round-2) straddled at the decision boundary must split some
        // execution.
        let out = search_disagreement_t(3, 2, 2, 0);
        assert!(
            out.disagreement.is_some(),
            "R = 2 ≤ t = 2 must disagree somewhere"
        );
    }

    #[test]
    fn dense_engine_matches_naive_on_every_execution() {
        // Exhaustive decision-for-decision pin of the dense engine
        // against the HashMap reference: every input × strategy at
        // (n=3, t=1, R=2) and a straddled two-actor slice at R=2, t=2.
        for (t, rounds) in [(1usize, 2u32), (2, 2)] {
            let strats = strategies(3, t, rounds);
            for mask in 0..8u32 {
                let inputs: Vec<u8> = (0..3).map(|i| ((mask >> i) & 1) as u8).collect();
                for s in &strats {
                    for tie in [0u8, 1] {
                        assert_eq!(
                            DenseExecution::run(&inputs, t, rounds, s, tie),
                            Execution::run(&inputs, t, rounds, s, tie),
                            "inputs {inputs:?} strat {s:?} tie {tie}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_search_is_deterministic_and_agrees() {
        for (t, rounds) in [(1usize, 1u32), (1, 2)] {
            let seq = search_disagreement_t(3, t, rounds, 0);
            let p1 = search_disagreement_t_parallel(3, t, rounds, 0, 1);
            let p4 = search_disagreement_t_parallel(3, t, rounds, 0, 4);
            // Identical across worker counts, witnesses included.
            assert_eq!(p1.executions, p4.executions);
            assert_eq!(
                p1.disagreement.as_ref().map(|d| (&d.inputs, &d.decisions)),
                p4.disagreement.as_ref().map(|d| (&d.inputs, &d.decisions))
            );
            assert_eq!(
                p1.validity_violation.as_ref().map(|d| &d.inputs),
                p4.validity_violation.as_ref().map(|d| &d.inputs)
            );
            // Same verdict as the sequential early-exit search, and the
            // same first witness when one exists.
            assert_eq!(seq.disagreement.is_some(), p4.disagreement.is_some());
            if let (Some(a), Some(b)) = (&seq.disagreement, &p4.disagreement) {
                assert_eq!((&a.inputs, &a.strategy), (&b.inputs, &b.strategy));
            }
        }
    }

    #[test]
    fn sharded_search_merges_to_the_parallel_outcome() {
        // Any shard-count partition of the mask space, merged, must be
        // byte-identical to the single-process parallel search —
        // executions, witnesses, and all.
        for (t, rounds) in [(1usize, 1u32), (1, 2)] {
            let whole = search_disagreement_t_parallel(3, t, rounds, 0, 2);
            for count in [1u32, 2, 3, 5] {
                let shards: Vec<RoundLbShard> = (0..count)
                    .map(|i| search_disagreement_t_shard(3, t, rounds, 0, i, count, 2))
                    .collect();
                let merged = merge_round_lb_shards(&shards);
                assert_eq!(merged, whole, "{count} shards at t={t} R={rounds}");
                // Merge order must not matter.
                let mut reversed = shards.clone();
                reversed.reverse();
                assert_eq!(merge_round_lb_shards(&reversed), whole);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = search_disagreement_t_shard(3, 1, 1, 0, 4, 4, 1);
    }

    #[test]
    fn three_rounds_resist_two_byzantine() {
        // t = 2 < n/2 (n = 5), R = 3 = t + 1: exhaustive over every
        // two-actor straddling strategy — no disagreement.
        let out = search_disagreement_t(3, 2, 3, 0);
        assert!(
            out.disagreement.is_none(),
            "R = t+1 = 3 must resist: {:?}",
            out.disagreement
        );
        assert!(out.executions > 100_000, "search must be exhaustive");
    }
}
