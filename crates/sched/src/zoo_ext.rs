//! Extended protocol zoo: multi-phase candidates for the checker.
//!
//! The basic zoo ([`crate::proto`]) appends once and decides. These
//! protocols take more than one append step, exercising deeper regions of
//! the computation graph — and still fall to Theorem 2.1, as they must.

use crate::proto::{AsyncProtocol, Op, ViewRef};

/// Two-phase echo vote: append your input; once values from `quorum`
/// distinct authors are visible, append an *echo* of their majority; once
/// `quorum` echoes are visible, decide the majority of echoes (ties to
/// `tie`).
///
/// Echoing is the classic repair attempt for the quorum-vote disagreement
/// — and it narrows but cannot close the window: two nodes can still echo
/// from different first-phase quorums, and the checker finds the
/// interleaving.
#[derive(Clone, Debug)]
pub struct EchoVoteProtocol {
    n: usize,
    /// Distinct authors required in each phase.
    pub quorum: usize,
    /// Tie-break value.
    pub tie: u8,
}

impl EchoVoteProtocol {
    /// Creates the protocol.
    pub fn new(n: usize, quorum: usize, tie: u8) -> EchoVoteProtocol {
        assert!(quorum >= 1 && quorum <= n);
        assert!(tie <= 1);
        EchoVoteProtocol { n, quorum, tie }
    }

    /// Majority of the visible seq-`phase` values; `None` below quorum.
    fn phase_majority(&self, view: &ViewRef<'_>, phase: usize) -> Option<u8> {
        let mut ones = 0usize;
        let mut total = 0usize;
        for a in 0..self.n {
            if let Some(e) = view.of(a).get(phase) {
                total += 1;
                if e.value == 1 {
                    ones += 1;
                }
            }
        }
        if total < self.quorum {
            return None;
        }
        Some(match (2 * ones).cmp(&total) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => self.tie,
        })
    }
}

impl AsyncProtocol for EchoVoteProtocol {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!(
            "echo-vote(n={}, q={}, tie={})",
            self.n, self.quorum, self.tie
        )
    }

    fn symmetric(&self) -> bool {
        // Both phases aggregate per-author values by count only; no
        // author-index tie-breaks.
        true
    }

    fn next_op(&self, _node: usize, input: u8, own: usize, view: &ViewRef<'_>, fresh: bool) -> Op {
        match own {
            0 => Op::Append {
                value: input,
                parents: Vec::new(),
            },
            1 => match self.phase_majority(view, 0) {
                Some(m) => Op::Append {
                    value: m,
                    parents: Vec::new(),
                },
                None if fresh => Op::Read,
                None => Op::Idle,
            },
            _ => match self.phase_majority(view, 1) {
                Some(m) => Op::Decide(m),
                None if fresh => Op::Read,
                None => Op::Idle,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bivalence::{initial_bivalent, round_robin_witness, WitnessOutcome};
    use crate::explore::{Config, Explorer, Valency};

    #[test]
    fn echo_vote_validates_uniform_inputs() {
        let p = EchoVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 500_000);
        let a = ex.analyze(&Config::initial(&[1, 1, 1]));
        assert!(!a.truncated);
        assert_eq!(a.valency, Valency::One);
        let a0 = ex.analyze(&Config::initial(&[0, 0, 0]));
        assert_eq!(a0.valency, Valency::Zero);
    }

    #[test]
    fn echo_vote_still_fails_consensus() {
        // Theorem 2.1 applies to the echo repair too: somewhere in the
        // graph the protocol breaks agreement or a bivalent schedule runs
        // forever.
        let p = EchoVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 500_000);
        let mut any_violation = false;
        for mask in 0..8u32 {
            let inputs: Vec<u8> = (0..3).map(|i| ((mask >> i) & 1) as u8).collect();
            let a = ex.analyze(&Config::initial(&inputs));
            assert!(!a.truncated, "budget too small for inputs {inputs:?}");
            any_violation |= a.agreement_violation.is_some();
        }
        let bivalent = initial_bivalent(&p, 500_000).is_some();
        assert!(
            any_violation || bivalent,
            "echo-vote must fail in one of the predicted ways"
        );
    }

    #[test]
    fn echo_vote_round_robin_witness() {
        let p = EchoVoteProtocol::new(3, 2, 0);
        let w = round_robin_witness(&p, 8, 500_000);
        assert!(
            matches!(w.outcome, WitnessOutcome::KeptBivalent)
                || matches!(w.outcome, WitnessOutcome::StuckAt { .. }),
            "unexpected witness outcome: {:?}",
            w.outcome
        );
    }

    #[test]
    fn phase_majority_respects_quorum_and_tie() {
        use crate::explore::Entry;
        let p = EchoVoteProtocol::new(3, 2, 1);
        let e = |v: u8| Entry {
            value: v,
            parents: Vec::new(),
        };
        let logs = [vec![e(1)], vec![e(0)], vec![]];
        let slices: Vec<&[Entry]> = logs.iter().map(Vec::as_slice).collect();
        let counts = [1u8, 1, 0];
        let view = ViewRef {
            logs: &slices,
            counts: &counts,
        };
        // Tie at quorum: tie value wins.
        assert_eq!(p.phase_majority(&view, 0), Some(1));
        // Below quorum: none.
        let counts1 = [1u8, 0, 0];
        let view1 = ViewRef {
            logs: &slices,
            counts: &counts1,
        };
        assert_eq!(p.phase_majority(&view1, 0), None);
    }
}
