//! Bivalence witnesses: the constructive content of Theorem 2.1.
//!
//! The theorem's proof builds an infinite non-deciding computation in which
//! every node takes infinitely many steps: start from a bivalent initial
//! configuration (Lemma 2.2) and repeatedly extend to another bivalent
//! configuration through an event of the next node round-robin (Lemma 2.3).
//! This module performs both steps by *search* over the computation graph,
//! so the adversarial schedule the paper proves to exist is produced
//! explicitly for concrete protocols.

use crate::explore::{Config, Explorer, Valency};
use crate::proto::AsyncProtocol;
use crate::search::{
    state_fingerprint, successors_compact, valency_fast, CState, LogArena, SearchOptions,
};
use std::collections::{HashMap, VecDeque};

/// Lemma 2.2 (search form): scans all `2^n` input vectors and returns a
/// bivalent initial configuration, together with its input vector, if one
/// exists. For any protocol satisfying validity and 1-resilience, one must.
pub fn initial_bivalent(
    proto: &dyn AsyncProtocol,
    max_configs: usize,
) -> Option<(Vec<u8>, Config)> {
    let n = proto.n();
    let ex = Explorer::new(proto, max_configs);
    for mask in 0..(1u32 << n) {
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let c = Config::initial(&inputs);
        if ex.valency_of(&c) == Valency::Bivalent {
            return Some((inputs, c));
        }
    }
    None
}

/// Outcome of a round-robin bivalence-extension attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessOutcome {
    /// The schedule reached the requested length with the system still
    /// bivalent — the protocol was successfully kept from deciding while
    /// every node took steps (what Theorem 2.1 predicts for any protocol
    /// that doesn't violate safety first).
    KeptBivalent,
    /// No bivalent initial configuration exists — the protocol must be
    /// violating validity (or is trivial).
    NoBivalentStart,
    /// Extension failed for a node: every reachable configuration through
    /// an event of that node is univalent. For a correct protocol this
    /// contradicts Lemma 2.3; it happens only for protocols that escape by
    /// breaking agreement (the violation is then reported by
    /// [`Explorer::analyze`](crate::explore::Explorer::analyze)).
    StuckAt {
        /// Index of the node that could not be extended.
        node: usize,
        /// Number of real steps achieved before getting stuck.
        steps: usize,
    },
}

/// A round-robin bivalence witness.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The input vector of the bivalent start (when one exists).
    pub inputs: Vec<u8>,
    /// Real (state-changing) events in the schedule, as node indices.
    pub schedule: Vec<usize>,
    /// Rule-(b) self-loop steps taken (reads of unchanged memory).
    pub null_steps: usize,
    /// How the attempt ended.
    pub outcome: WitnessOutcome,
}

/// Lemma 2.3 (search form): BFS from bivalent `c` for a bivalent `c'`
/// reachable via a path containing at least one event of `node`. Returns
/// the event path (as node indices) and the final configuration.
fn extend_through_node(
    ex: &Explorer<'_>,
    c: &Config,
    node: usize,
    valency_cache: &mut HashMap<Config, Valency>,
    max_frontier: usize,
) -> Option<(Vec<usize>, Config)> {
    let n_nodes = c.nodes.len();
    // BFS state: (config, has-node-event-on-path, path).
    let mut queue: VecDeque<(Config, bool, Vec<usize>)> = VecDeque::new();
    let mut seen: HashMap<(Config, bool), ()> = HashMap::new();
    queue.push_back((c.clone(), false, Vec::new()));
    seen.insert((c.clone(), false), ());
    let mut visited = 0usize;

    while let Some((cur, hit, path)) = queue.pop_front() {
        visited += 1;
        if visited > max_frontier {
            return None;
        }
        if hit {
            let val = *valency_cache
                .entry(cur.clone())
                .or_insert_with(|| ex.valency_of(&cur));
            if val == Valency::Bivalent {
                return Some((path, cur));
            }
        }
        for v in 0..n_nodes {
            if let Some((_, c2)) = ex.apply(&cur, v) {
                let hit2 = hit || v == node;
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry((c2.clone(), hit2))
                {
                    e.insert(());
                    let mut p2 = path.clone();
                    p2.push(v);
                    queue.push_back((c2, hit2, p2));
                }
            }
        }
    }
    None
}

/// Theorem 2.1 (constructive form): builds a schedule of length
/// `target_steps` real events in which each node takes steps round-robin
/// and the system remains bivalent throughout.
///
/// A node whose only available step is the rule-(b) self-loop (a read of an
/// unchanged memory) takes that step — it counts toward the node's
/// infinitely-many-operations obligation without changing the
/// configuration; such steps are tallied in
/// [`Witness::null_steps`].
/// ```
/// use am_sched::{round_robin_witness, QuorumVoteProtocol, WitnessOutcome};
/// let proto = QuorumVoteProtocol::new(3, 2, 0);
/// let w = round_robin_witness(&proto, 6, 300_000);
/// assert_eq!(w.outcome, WitnessOutcome::KeptBivalent);
/// ```
pub fn round_robin_witness(
    proto: &dyn AsyncProtocol,
    target_steps: usize,
    max_configs: usize,
) -> Witness {
    let Some((inputs, start)) = initial_bivalent(proto, max_configs) else {
        return Witness {
            inputs: Vec::new(),
            schedule: Vec::new(),
            null_steps: 0,
            outcome: WitnessOutcome::NoBivalentStart,
        };
    };
    let ex = Explorer::new(proto, max_configs);
    let mut valency_cache: HashMap<Config, Valency> = HashMap::new();
    let mut cur = start;
    let mut schedule: Vec<usize> = Vec::new();
    let mut null_steps = 0usize;
    let n = proto.n();
    let mut rr = 0usize;

    while schedule.len() < target_steps {
        let node = rr % n;
        rr += 1;
        // If the node currently has no state-changing event, it performs a
        // rule-(b) read: configuration unchanged, obligation satisfied.
        if ex.is_passive(&cur, node) {
            null_steps += 1;
            // Guard against a fully-stuck system spinning forever: if every
            // node is passive, the run is an infinite null-step computation
            // — trivially non-deciding, so the witness holds.
            if (0..n).all(|v| ex.is_passive(&cur, v)) {
                let remaining = target_steps - schedule.len();
                return Witness {
                    inputs,
                    schedule,
                    null_steps: null_steps + remaining,
                    outcome: WitnessOutcome::KeptBivalent,
                };
            }
            continue;
        }
        match extend_through_node(&ex, &cur, node, &mut valency_cache, 200_000) {
            Some((path, c2)) => {
                schedule.extend_from_slice(&path);
                cur = c2;
            }
            None => {
                let steps = schedule.len();
                return Witness {
                    inputs,
                    schedule,
                    null_steps,
                    outcome: WitnessOutcome::StuckAt { node, steps },
                };
            }
        }
    }
    Witness {
        inputs,
        schedule,
        null_steps,
        outcome: WitnessOutcome::KeptBivalent,
    }
}

// ---------------------------------------------------------------------------
// Fast variants on the compact search core
// ---------------------------------------------------------------------------

/// Lemma 2.2 on the compact core: like [`initial_bivalent`] but every
/// valency query runs the reduced search with early exit on bivalence,
/// so the scan reaches input vectors the naive explorer cannot.
pub fn initial_bivalent_fast(
    proto: &dyn AsyncProtocol,
    opts: &SearchOptions,
) -> Option<(Vec<u8>, Config)> {
    let n = proto.n();
    for mask in 0..(1u32 << n) {
        let inputs: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
        let c = Config::initial(&inputs);
        if valency_fast(proto, &c, opts) == Valency::Bivalent {
            return Some((inputs, c));
        }
    }
    None
}

/// Lemma 2.3 on the compact core: BFS over fingerprinted compact states
/// for a bivalent configuration reachable via at least one event of
/// `node`. Valency queries are cached by state fingerprint.
fn extend_through_node_fast(
    proto: &dyn AsyncProtocol,
    arena: &mut LogArena,
    start: &CState,
    node: usize,
    valency_cache: &mut HashMap<u128, Valency>,
    opts: &SearchOptions,
    max_frontier: usize,
) -> Option<(Vec<usize>, CState)> {
    let n = proto.n();
    let mut queue: VecDeque<(CState, bool, Vec<usize>)> = VecDeque::new();
    let mut seen: HashMap<(u128, bool), ()> = HashMap::new();
    queue.push_back((*start, false, Vec::new()));
    seen.insert((state_fingerprint(start), false), ());
    let mut visited = 0usize;

    while let Some((cur, hit, path)) = queue.pop_front() {
        visited += 1;
        if visited > max_frontier {
            return None;
        }
        if hit {
            let fp = state_fingerprint(&cur);
            let val = match valency_cache.get(&fp) {
                Some(&v) => v,
                None => {
                    let v = valency_fast(proto, &cur.to_config(n, arena), opts);
                    valency_cache.insert(fp, v);
                    v
                }
            };
            if val == Valency::Bivalent {
                return Some((path, cur));
            }
        }
        for (v, c2) in successors_compact(proto, &cur, arena) {
            let hit2 = hit || v == node;
            let key = (state_fingerprint(&c2), hit2);
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                e.insert(());
                let mut p2 = path.clone();
                p2.push(v);
                queue.push_back((c2, hit2, p2));
            }
        }
    }
    None
}

/// Theorem 2.1 on the compact core: like [`round_robin_witness`] but
/// with interned states, fingerprinted dedup, and reduced valency
/// queries throughout — the witness construction that scales past the
/// naive explorer's n.
pub fn round_robin_witness_fast(
    proto: &dyn AsyncProtocol,
    target_steps: usize,
    opts: &SearchOptions,
) -> Witness {
    let Some((inputs, start)) = initial_bivalent_fast(proto, opts) else {
        return Witness {
            inputs: Vec::new(),
            schedule: Vec::new(),
            null_steps: 0,
            outcome: WitnessOutcome::NoBivalentStart,
        };
    };
    let n = proto.n();
    let mut arena = LogArena::new();
    let mut cur = CState::from_config(&start, &mut arena);
    let mut valency_cache: HashMap<u128, Valency> = HashMap::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut null_steps = 0usize;
    let mut rr = 0usize;

    while schedule.len() < target_steps {
        let node = rr % n;
        rr += 1;
        let succs = successors_compact(proto, &cur, &mut arena);
        if !succs.iter().any(|(v, _)| *v == node) {
            null_steps += 1;
            if succs.is_empty() {
                // Fully stuck: an infinite null-step computation —
                // trivially non-deciding, the witness holds.
                let remaining = target_steps - schedule.len();
                return Witness {
                    inputs,
                    schedule,
                    null_steps: null_steps + remaining,
                    outcome: WitnessOutcome::KeptBivalent,
                };
            }
            continue;
        }
        match extend_through_node_fast(
            proto,
            &mut arena,
            &cur,
            node,
            &mut valency_cache,
            opts,
            200_000,
        ) {
            Some((path, c2)) => {
                schedule.extend_from_slice(&path);
                cur = c2;
            }
            None => {
                let steps = schedule.len();
                return Witness {
                    inputs,
                    schedule,
                    null_steps,
                    outcome: WitnessOutcome::StuckAt { node, steps },
                };
            }
        }
    }
    Witness {
        inputs,
        schedule,
        null_steps,
        outcome: WitnessOutcome::KeptBivalent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FirstSeenProtocol, QuorumVoteProtocol};

    #[test]
    fn first_seen_has_bivalent_start() {
        let p = FirstSeenProtocol::new(3);
        let (inputs, _) = initial_bivalent(&p, 100_000).expect("must exist");
        // Mixed inputs are required for bivalence under validity.
        assert!(inputs.contains(&0));
        assert!(inputs.contains(&1));
    }

    #[test]
    fn quorum_vote_has_bivalent_start() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        assert!(initial_bivalent(&p, 300_000).is_some());
    }

    #[test]
    fn witness_keeps_first_seen_bivalent() {
        let p = FirstSeenProtocol::new(3);
        let w = round_robin_witness(&p, 6, 100_000);
        assert_eq!(w.outcome, WitnessOutcome::KeptBivalent, "witness: {w:?}");
        assert!(w.schedule.len() >= 6 || w.null_steps > 0);
        // Every node appears in the combined schedule (round-robin drove
        // each of them).
        for v in 0..3 {
            assert!(
                w.schedule.contains(&v) || w.null_steps > 0,
                "node {v} never stepped"
            );
        }
    }

    #[test]
    fn witness_keeps_quorum_vote_bivalent() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let w = round_robin_witness(&p, 8, 300_000);
        assert_eq!(w.outcome, WitnessOutcome::KeptBivalent, "witness: {w:?}");
    }

    #[test]
    fn fast_witness_matches_naive_outcome() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let naive = round_robin_witness(&p, 8, 300_000);
        let fast = round_robin_witness_fast(&p, 8, &SearchOptions::reduced(300_000));
        assert_eq!(naive.outcome, fast.outcome);
        assert_eq!(naive.inputs, fast.inputs, "same bivalent start found");
    }

    #[test]
    fn fast_initial_bivalent_matches_naive() {
        let p = FirstSeenProtocol::new(3);
        let naive = initial_bivalent(&p, 100_000).expect("must exist");
        let fast = initial_bivalent_fast(&p, &SearchOptions::reduced(100_000)).expect("must exist");
        assert_eq!(naive.0, fast.0, "mask scan order pins the same inputs");
    }

    #[test]
    fn trivial_protocol_has_no_bivalent_start() {
        /// Always decides its own input immediately — violates agreement,
        /// but each *initial* configuration is univalent or bivalent per
        /// inputs; with uniform inputs univalent. Mixed inputs: both
        /// decisions reachable → bivalent! So use a constant protocol
        /// instead: always decides 0. Validity broken; no bivalence.
        struct Constant;
        impl crate::proto::AsyncProtocol for Constant {
            fn n(&self) -> usize {
                2
            }
            fn name(&self) -> String {
                "constant-0".into()
            }
            fn next_op(
                &self,
                _node: usize,
                _input: u8,
                _own: usize,
                _view: &crate::proto::ViewRef<'_>,
                _fresh: bool,
            ) -> crate::proto::Op {
                crate::proto::Op::Decide(0)
            }
        }
        let w = round_robin_witness(&Constant, 4, 10_000);
        assert_eq!(w.outcome, WitnessOutcome::NoBivalentStart);
    }
}
