//! Configurations, events, and exhaustive exploration of the computation
//! graph (Section 2.1 formalism).
//!
//! A configuration `C = {s_1, …, s_n} × M(τ*)` is modelled as per-author
//! logs plus per-node local states; an event is one node executing its
//! deterministic next operation. The explorer interns configurations,
//! builds the reachable computation graph, and classifies valency.

use crate::proto::{AsyncProtocol, Op, ViewRef};
use std::collections::{HashMap, VecDeque};

/// Reference to a message by `(author, seq)` — the content-derived identity
/// nodes can actually name (the memory exposes no arrival order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref {
    /// Authoring node.
    pub author: u8,
    /// Index in that author's own append order.
    pub seq: u8,
}

/// One appended command in a per-author log.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Entry {
    /// The appended value.
    pub value: u8,
    /// Parent references.
    pub parents: Vec<Ref>,
}

/// Local state of one node: `s_i = (M(τ), val_i)` of the paper, realised as
/// the per-author counts the node saw at its last read plus its decision
/// status. A node always sees its own appends.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LocalState {
    /// Binary input value.
    pub input: u8,
    /// Per-author visible counts at last read (own appends included).
    pub view: Vec<u8>,
    /// Number of appends this node has performed.
    pub own: u8,
    /// The decision, once taken.
    pub decided: Option<u8>,
}

/// A configuration of the system: the memory (as per-author logs — set
/// semantics, so concurrent appends commute) and all node states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    /// Per-author append logs.
    pub logs: Vec<Vec<Entry>>,
    /// Per-node local states.
    pub nodes: Vec<LocalState>,
}

impl Config {
    /// The initial configuration for the given binary inputs: empty memory,
    /// every node knowing only its input (Section 2.1's `C_0`).
    pub fn initial(inputs: &[u8]) -> Config {
        let n = inputs.len();
        Config {
            logs: vec![Vec::new(); n],
            nodes: inputs
                .iter()
                .map(|&b| {
                    assert!(b <= 1, "inputs are binary");
                    LocalState {
                        input: b,
                        view: vec![0; n],
                        own: 0,
                        decided: None,
                    }
                })
                .collect(),
        }
    }

    /// Total number of appends in the memory.
    pub fn total_appends(&self) -> usize {
        self.logs.iter().map(Vec::len).sum()
    }

    /// Bitmask of decisions present in this configuration: bit `v` is set
    /// iff some node decided `v`. Allocation-free — this is the hot-path
    /// form every search loop should use.
    pub fn decision_bits(&self) -> u8 {
        self.nodes
            .iter()
            .filter_map(|s| s.decided)
            .fold(0u8, |m, d| m | (1 << d))
    }

    /// Set of decisions present in this configuration, sorted and deduped.
    /// Convenience wrapper over [`Config::decision_bits`] for callers that
    /// want a list; searches should use the bitmask directly.
    pub fn decisions(&self) -> Vec<u8> {
        let bits = self.decision_bits();
        (0..2).filter(|v| bits & (1 << v) != 0).collect()
    }

    /// Whether two nodes have decided on different values — an agreement
    /// violation witnessed directly by this configuration.
    pub fn violates_agreement(&self) -> bool {
        self.decision_bits() == 0b11
    }

    /// Whether every node has decided.
    pub fn all_decided(&self) -> bool {
        self.nodes.iter().all(|s| s.decided.is_some())
    }
}

/// An event: node `node` executed operation `op` (Section 2.1's `e_v`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The acting node.
    pub node: usize,
    /// The operation it performed.
    pub op: Op,
}

/// Valency of a configuration (Section 2.1 definitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Valency {
    /// Only decision 0 is reachable.
    Zero,
    /// Only decision 1 is reachable.
    One,
    /// Both decisions are reachable — bivalent.
    Bivalent,
    /// No decision is reachable (non-terminating region or truncated).
    NoDecision,
}

impl Valency {
    /// Builds a valency from "decision 0 reachable" / "decision 1
    /// reachable" bits.
    pub fn from_bits(zero: bool, one: bool) -> Valency {
        match (zero, one) {
            (true, true) => Valency::Bivalent,
            (true, false) => Valency::Zero,
            (false, true) => Valency::One,
            (false, false) => Valency::NoDecision,
        }
    }
}

/// Result of exhaustively analysing the computation graph from one initial
/// configuration.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Number of distinct configurations reached.
    pub configs: usize,
    /// Whether exploration hit the configuration budget (results are then
    /// lower bounds).
    pub truncated: bool,
    /// Valency of the initial configuration.
    pub valency: Valency,
    /// A reachable configuration where two nodes decided differently.
    pub agreement_violation: Option<Config>,
    /// A reachable configuration where all of a (n−1)-subset of nodes are
    /// permanently stuck undecided — a v-free computation that cannot
    /// terminate, i.e. the protocol is not 1-resilient. Stored as
    /// `(crashed_node, stuck_config)`.
    pub vfree_nontermination: Option<(usize, Config)>,
}

/// Exhaustive explorer of a protocol's computation graph.
pub struct Explorer<'p> {
    proto: &'p dyn AsyncProtocol,
    /// Configuration budget; exploration past it sets `truncated`.
    pub max_configs: usize,
}

impl<'p> Explorer<'p> {
    /// Creates an explorer with a configuration budget.
    pub fn new(proto: &'p dyn AsyncProtocol, max_configs: usize) -> Explorer<'p> {
        Explorer { proto, max_configs }
    }

    /// Applies node `v`'s next operation to `c`.
    ///
    /// Returns `Some((event, c'))` when the operation changes the
    /// configuration, `None` when the node has halted (decided) or its
    /// operation is the rule-(b) self-loop (a read of an unchanged memory
    /// or an explicit `Idle`).
    pub fn apply(&self, c: &Config, v: usize) -> Option<(Event, Config)> {
        let st = &c.nodes[v];
        if st.decided.is_some() {
            return None;
        }
        let fresh = (0..c.logs.len()).any(|a| c.logs[a].len() > st.view[a] as usize);
        let slices: Vec<&[Entry]> = c.logs.iter().map(Vec::as_slice).collect();
        let op = self.proto.next_op(
            v,
            st.input,
            st.own as usize,
            &ViewRef {
                logs: &slices,
                counts: &st.view,
            },
            fresh,
        );
        match op {
            Op::Idle => None,
            Op::Read => {
                if !fresh {
                    return None; // rule (b): e_v(C) = C
                }
                let mut c2 = c.clone();
                for a in 0..c2.logs.len() {
                    c2.nodes[v].view[a] = c2.logs[a].len() as u8;
                }
                Some((
                    Event {
                        node: v,
                        op: Op::Read,
                    },
                    c2,
                ))
            }
            Op::Append { value, parents } => {
                let mut c2 = c.clone();
                c2.logs[v].push(Entry {
                    value,
                    parents: parents.clone(),
                });
                c2.nodes[v].own += 1;
                // A node always knows its own appends.
                c2.nodes[v].view[v] = c2.nodes[v].view[v].max(c2.logs[v].len() as u8);
                Some((
                    Event {
                        node: v,
                        op: Op::Append { value, parents },
                    },
                    c2,
                ))
            }
            Op::Decide(d) => {
                let mut c2 = c.clone();
                c2.nodes[v].decided = Some(d);
                Some((
                    Event {
                        node: v,
                        op: Op::Decide(d),
                    },
                    c2,
                ))
            }
        }
    }

    /// Whether node `v` is permanently passive in `c`: decided, or idle
    /// with nothing fresh to read (its state can only change if *someone
    /// else* appends).
    pub fn is_passive(&self, c: &Config, v: usize) -> bool {
        self.apply(c, v).is_none()
    }

    /// Exhaustive BFS from `init`: builds the reachable set, classifies
    /// valency, and hunts for agreement violations and v-free
    /// non-termination.
    pub fn analyze(&self, init: &Config) -> Analysis {
        let n = self.proto.n();
        let mut index: HashMap<Config, usize> = HashMap::new();
        let mut configs: Vec<Config> = Vec::new();
        let mut succs: Vec<Vec<usize>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut truncated = false;
        let mut agreement_violation = None;
        let mut vfree_nontermination = None;

        index.insert(init.clone(), 0);
        configs.push(init.clone());
        succs.push(Vec::new());
        queue.push_back(0);

        while let Some(ci) = queue.pop_front() {
            if configs.len() > self.max_configs {
                truncated = true;
                break;
            }
            let c = configs[ci].clone();
            if agreement_violation.is_none() && c.violates_agreement() {
                agreement_violation = Some(c.clone());
            }
            // v-free non-termination: some node v such that all others are
            // passive and at least one other is undecided. (Passivity here
            // is permanent unless an *active* node appends; if all others
            // are passive, nobody ever appends again.)
            if vfree_nontermination.is_none() {
                for v in 0..n {
                    let others_passive = (0..n).filter(|&u| u != v).all(|u| self.is_passive(&c, u));
                    let someone_stuck = (0..n)
                        .filter(|&u| u != v)
                        .any(|u| c.nodes[u].decided.is_none());
                    if others_passive && someone_stuck {
                        vfree_nontermination = Some((v, c.clone()));
                        break;
                    }
                }
            }
            let mut kids = Vec::new();
            for v in 0..n {
                if let Some((_, c2)) = self.apply(&c, v) {
                    let next_id = match index.get(&c2) {
                        Some(&id) => id,
                        None => {
                            let id = configs.len();
                            index.insert(c2.clone(), id);
                            configs.push(c2);
                            succs.push(Vec::new());
                            queue.push_back(id);
                            id
                        }
                    };
                    kids.push(next_id);
                }
            }
            succs[ci] = kids;
        }

        // Valency: propagate reachable decisions backwards by iterating to
        // a fixed point (the graph can contain cycles through re-reads).
        let m = configs.len();
        let mut zero = vec![false; m];
        let mut one = vec![false; m];
        for (i, c) in configs.iter().enumerate() {
            let bits = c.decision_bits();
            zero[i] = bits & 1 != 0;
            one[i] = bits & 2 != 0;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..m).rev() {
                for &k in &succs[i] {
                    if zero[k] && !zero[i] {
                        zero[i] = true;
                        changed = true;
                    }
                    if one[k] && !one[i] {
                        one[i] = true;
                        changed = true;
                    }
                }
            }
        }

        Analysis {
            configs: m,
            truncated,
            valency: Valency::from_bits(zero[0], one[0]),
            agreement_violation,
            vfree_nontermination,
        }
    }

    /// Valency of an arbitrary configuration (runs a fresh bounded
    /// exploration from it).
    pub fn valency_of(&self, c: &Config) -> Valency {
        self.analyze(c).valency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{FirstSeenProtocol, QuorumVoteProtocol};

    #[test]
    fn initial_config_shape() {
        let c = Config::initial(&[0, 1, 1]);
        assert_eq!(c.logs.len(), 3);
        assert_eq!(c.total_appends(), 0);
        assert_eq!(c.nodes[2].input, 1);
        assert!(c.decisions().is_empty());
        assert!(!c.violates_agreement());
        assert!(!c.all_decided());
    }

    #[test]
    fn decision_bits_matches_decisions() {
        // Regression for the allocation-free hot path: the bitmask form
        // must agree with the list form at every decision census.
        let mut c = Config::initial(&[0, 1, 1]);
        assert_eq!(c.decision_bits(), 0);
        assert!(c.decisions().is_empty());
        c.nodes[0].decided = Some(1);
        assert_eq!(c.decision_bits(), 0b10);
        assert_eq!(c.decisions(), vec![1]);
        assert!(!c.violates_agreement());
        c.nodes[1].decided = Some(1);
        assert_eq!(c.decision_bits(), 0b10, "same value twice: one bit");
        assert!(!c.violates_agreement());
        c.nodes[2].decided = Some(0);
        assert_eq!(c.decision_bits(), 0b11);
        assert_eq!(c.decisions(), vec![0, 1]);
        assert!(c.violates_agreement());
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn initial_rejects_non_binary() {
        let _ = Config::initial(&[0, 2]);
    }

    #[test]
    fn appends_commute_across_authors() {
        let p = FirstSeenProtocol::new(2);
        let ex = Explorer::new(&p, 10_000);
        let c = Config::initial(&[0, 1]);
        let (_, c_a) = ex.apply(&c, 0).unwrap();
        let (_, c_ab) = ex.apply(&c_a, 1).unwrap();
        let (_, c_b) = ex.apply(&c, 1).unwrap();
        let (_, c_ba) = ex.apply(&c_b, 0).unwrap();
        assert_eq!(c_ab, c_ba, "concurrent appends must commute");
    }

    #[test]
    fn read_of_unchanged_memory_is_self_loop() {
        let p = QuorumVoteProtocol::new(2, 2, 0);
        let ex = Explorer::new(&p, 10_000);
        let c = Config::initial(&[0, 1]);
        let (_, c1) = ex.apply(&c, 0).unwrap(); // node 0 appends
                                                // Node 0 has nothing new (it sees its own append): passive until
                                                // node 1 appends.
        assert!(ex.is_passive(&c1, 0));
        let (_, c2) = ex.apply(&c1, 1).unwrap(); // node 1 appends
        assert!(!ex.is_passive(&c2, 0), "fresh data wakes node 0");
    }

    #[test]
    fn first_seen_violates_agreement() {
        let p = FirstSeenProtocol::new(3);
        let ex = Explorer::new(&p, 200_000);
        let a = ex.analyze(&Config::initial(&[0, 1, 1]));
        assert!(!a.truncated);
        assert!(
            a.agreement_violation.is_some(),
            "first-seen must be caught disagreeing"
        );
        assert_eq!(a.valency, Valency::Bivalent);
    }

    #[test]
    fn first_seen_uniform_inputs_are_univalent() {
        let p = FirstSeenProtocol::new(3);
        let ex = Explorer::new(&p, 200_000);
        let a0 = ex.analyze(&Config::initial(&[0, 0, 0]));
        assert_eq!(a0.valency, Valency::Zero, "validity direction 0");
        let a1 = ex.analyze(&Config::initial(&[1, 1, 1]));
        assert_eq!(a1.valency, Valency::One, "validity direction 1");
    }

    #[test]
    fn full_quorum_is_not_crash_tolerant() {
        let p = QuorumVoteProtocol::new(3, 3, 0);
        let ex = Explorer::new(&p, 200_000);
        let a = ex.analyze(&Config::initial(&[0, 1, 0]));
        assert!(!a.truncated);
        let (crashed, stuck) = a
            .vfree_nontermination
            .expect("waiting for all n nodes must block under one crash");
        assert!(crashed < 3);
        assert!(!stuck.all_decided());
    }

    #[test]
    fn partial_quorum_violates_agreement() {
        // q = n-1 = 2 with inputs (0,1,1): nodes deciding on different
        // 2-subsets disagree (e.g. {0,1} ties to 0 vs {1,1} → 1).
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 500_000);
        let a = ex.analyze(&Config::initial(&[0, 1, 1]));
        assert!(!a.truncated);
        assert!(a.agreement_violation.is_some());
    }

    #[test]
    fn analysis_counts_configs() {
        let p = QuorumVoteProtocol::new(2, 2, 0);
        let ex = Explorer::new(&p, 100_000);
        let a = ex.analyze(&Config::initial(&[0, 0]));
        assert!(a.configs > 1);
        assert!(!a.truncated);
        assert_eq!(a.valency, Valency::Zero);
    }

    #[test]
    fn truncation_flag_fires_on_tiny_budget() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 3);
        let a = ex.analyze(&Config::initial(&[0, 1, 0]));
        assert!(a.truncated);
    }
}
