//! Nonforking of the embedded finality layer, model-checked.
//!
//! The am-bft oracle claims an *invariant*, not a statistical tendency:
//! whatever order blocks are authored and observed in, and whatever
//! stale views Byzantine authors build on, the finalized chain only
//! ever grows, and any two observation schedules of the same history
//! finalize extension-ordered chains. The Monte-Carlo drivers sample
//! that claim; this module checks it *exhaustively* over a bounded
//! universe, in the spirit of the Section 2 explorer.
//!
//! The universe: `n` authors grow one block DAG. A correct author has
//! exactly one move per state — append on its full current view with a
//! self-parent (the honest rule of the protocol drivers). A Byzantine
//! author may append on **any** id-prefix of the history, without a
//! self-parent — the stale-prefix moves that manufacture equivocation
//! (two blocks by one author at the same round). Every interleaving up
//! to `max_blocks` appends is explored.
//!
//! At each reachable state the finality oracle replays the history and
//! three invariants are checked:
//!
//! 1. **No conflict** — the oracle never certifies two incompatible
//!    candidates ([`FinalityOracle::conflict_detected`] stays false).
//! 2. **Monotonicity** — along every edge, the child state's finalized
//!    chain extends the parent state's: observing more never retracts.
//! 3. **Cross-schedule agreement** — states holding the *same logical
//!    blocks* (identified structurally, so ids assigned by different
//!    interleavings don't matter) finalize pairwise extension-ordered
//!    chains, even when their watermarks differ.

use am_bft::FinalityOracle;
use am_core::{MsgId, GENESIS};
use std::collections::HashMap;

/// splitmix64-style mixer for structural block identities.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One appended block of a history under exploration.
#[derive(Clone)]
struct Block {
    author: usize,
    parents: Vec<MsgId>,
    depth: u32,
    /// Structural identity: a pure function of `(author, parent cids,
    /// duplicate index)` — equal across interleavings that assign
    /// different global ids to the same logical block.
    cid: u64,
}

/// Outcome of one exhaustive nonforking search.
#[derive(Clone, Debug)]
pub struct NonforkingReport {
    /// Distinct states (interleavings) visited.
    pub states: usize,
    /// Whether the state budget cut the search short (results are then
    /// lower bounds; the invariants still held on everything visited).
    pub truncated: bool,
    /// States in which the observer had finalized at least one block.
    pub finalizing_states: usize,
    /// States in which the observer had caught an equivocator.
    pub equivocating_states: usize,
    /// Deepest finalized chain seen anywhere.
    pub max_finalized: usize,
    /// The first invariant violation found, if any — `None` is the
    /// theorem (over this bounded universe).
    pub violation: Option<String>,
    /// Duplicate ordered histories pruned by the fingerprint cache
    /// (distinct Byzantine prefix choices that manufactured the very
    /// same block — the subtree is byte-identical, so it is cut). Zero
    /// in the naive search.
    pub fingerprint_hits: u64,
    /// Oracle observations saved by carrying the finality oracle
    /// incrementally down the DFS instead of replaying every history
    /// from scratch. Zero in the naive search.
    pub observes_saved: u64,
}

impl NonforkingReport {
    /// Publishes the search and reduction counters as am-obs aggregates.
    pub fn publish_obs(&self) {
        am_obs::counter("sched.nonforking.states").add(self.states as u64);
        am_obs::counter("sched.nonforking.finalizing_states").add(self.finalizing_states as u64);
        am_obs::counter("sched.nonforking.fingerprint_hits").add(self.fingerprint_hits);
        am_obs::counter("sched.nonforking.observes_saved").add(self.observes_saved);
    }
}

struct Search {
    n: usize,
    byz: Vec<bool>,
    max_blocks: usize,
    max_states: usize,
    /// Reduced mode: incremental oracle + ordered-history dedup. Off =
    /// the naive baseline (replay every visit, no pruning).
    reduced: bool,
    report: NonforkingReport,
    /// Structural block-set key → finalized chains (as cid sequences)
    /// seen at states holding exactly that set.
    groups: HashMap<u64, Vec<Vec<u64>>>,
    /// Fingerprints of *ordered* histories already visited (reduced
    /// mode). Two lanes folded over the cid sequence.
    seen: HashMap<u128, ()>,
}

/// The parent list an append on the prefix of the first `p` blocks
/// (plus genesis) uses: the deepest visible block (ties to the smallest
/// id), the author's own last block when `own` is given and visible,
/// and every remaining visible tip — the same rule the protocol
/// drivers follow.
fn view_parents(blocks: &[Block], p: usize, own: MsgId) -> Vec<MsgId> {
    let mut best_d = 0u32;
    let mut sel = GENESIS;
    for (i, b) in blocks[..p].iter().enumerate() {
        if b.depth > best_d {
            best_d = b.depth;
            sel = MsgId(i as u64 + 1);
        }
    }
    let mut has_child = vec![false; p + 1];
    for b in &blocks[..p] {
        for par in &b.parents {
            has_child[par.index()] = true;
        }
    }
    let mut parents = vec![sel];
    if own != sel && own != GENESIS && own.index() <= p {
        parents.push(own);
    }
    for (idx, taken) in has_child.iter().enumerate() {
        let id = MsgId(idx as u64);
        if !taken && id != sel && id != own {
            parents.push(id);
        }
    }
    parents
}

/// Replays `blocks` into a fresh oracle; returns the finalized chain,
/// whether a conflict was certified, and the equivocator count.
fn replay(n: usize, blocks: &[Block]) -> (Vec<MsgId>, bool, usize) {
    let mut oracle = FinalityOracle::new(n);
    for (i, b) in blocks.iter().enumerate() {
        oracle.observe(MsgId(i as u64 + 1), b.author, &b.parents);
    }
    (
        oracle.finalized_chain(),
        oracle.conflict_detected(),
        oracle.equivocator_count(),
    )
}

impl Search {
    fn chain_cids(blocks: &[Block], chain: &[MsgId]) -> Vec<u64> {
        chain
            .iter()
            .map(|id| {
                if *id == GENESIS {
                    0
                } else {
                    blocks[id.index() - 1].cid
                }
            })
            .collect()
    }

    fn set_key(blocks: &[Block]) -> u64 {
        let mut cids: Vec<u64> = blocks.iter().map(|b| b.cid).collect();
        cids.sort_unstable();
        cids.into_iter().fold(0x006e_6f6e_666f_726b_u64, mix)
    }

    fn fail(&mut self, why: String) {
        if self.report.violation.is_none() {
            self.report.violation = Some(why);
        }
    }

    /// Pushes a cid onto an ordered-history fingerprint (two independent
    /// splitmix lanes — the hash-compaction key of the reduced search).
    fn hist_push(fp: u128, cid: u64) -> u128 {
        let hi = mix((fp >> 64) as u64, cid);
        let lo = mix(
            fp as u64 ^ 0x5deb_8c2a_91ff_7a31,
            cid.wrapping_mul(0xff51_afd7_ed55_8ccd),
        );
        ((hi as u128) << 64) | lo as u128
    }

    /// DFS from `blocks`, whose own replay produced `chain`; `oracle` is
    /// the finality oracle after observing exactly `blocks` (only used
    /// in reduced mode), `hist_fp` the ordered-history fingerprint.
    fn explore(
        &mut self,
        blocks: &mut Vec<Block>,
        chain: &[MsgId],
        oracle: &FinalityOracle,
        hist_fp: u128,
    ) {
        if self.report.violation.is_some() || blocks.len() >= self.max_blocks {
            return;
        }
        for node in 0..self.n {
            // A correct author's single move uses the full view with a
            // self-parent; a Byzantine author picks any prefix, dropping
            // the self-parent (the equivocation device).
            let prefixes = if self.byz[node] {
                0..=blocks.len()
            } else {
                blocks.len()..=blocks.len()
            };
            for p in prefixes {
                if self.report.states >= self.max_states {
                    self.report.truncated = true;
                    return;
                }
                let own = if self.byz[node] {
                    GENESIS
                } else {
                    blocks
                        .iter()
                        .rposition(|b| b.author == node)
                        .map(|i| MsgId(i as u64 + 1))
                        .unwrap_or(GENESIS)
                };
                let parents = view_parents(blocks, p, own);
                let depth = parents
                    .iter()
                    .map(|pa| {
                        if *pa == GENESIS {
                            1
                        } else {
                            blocks[pa.index() - 1].depth + 1
                        }
                    })
                    .max()
                    .unwrap();
                let base = parents
                    .iter()
                    .map(|pa| {
                        if *pa == GENESIS {
                            0
                        } else {
                            blocks[pa.index() - 1].cid
                        }
                    })
                    .fold(mix(0, node as u64 + 1), mix);
                // Structural twins (same author, same parents — i.e.
                // equivocation duplicates) get distinct cids via a
                // duplicate index, so chains over them stay comparable.
                let mut twin = 0u64;
                let mut cid = mix(base, twin);
                while blocks.iter().any(|b| b.cid == cid) {
                    twin += 1;
                    cid = mix(base, twin);
                }
                let child_fp = Search::hist_push(hist_fp, cid);
                if self.reduced {
                    // Identical ordered histories have identical oracle
                    // states and identical subtrees — cut them. Under
                    // the current move rule every move extends the
                    // parent set with a fresh block, so this fires only
                    // if a future universe (or a cid collision) ever
                    // manufactures a duplicate; it is a guard whose
                    // hit count *measures* that risk (DESIGN.md §14).
                    if self.seen.contains_key(&child_fp) {
                        self.report.fingerprint_hits += 1;
                        continue;
                    }
                    self.seen.insert(child_fp, ());
                }
                blocks.push(Block {
                    author: node,
                    parents,
                    depth,
                    cid,
                });
                self.visit(blocks, chain, oracle, child_fp);
                blocks.pop();
                if self.report.violation.is_some() {
                    return;
                }
            }
        }
    }

    fn visit(
        &mut self,
        blocks: &mut Vec<Block>,
        parent_chain: &[MsgId],
        parent_oracle: &FinalityOracle,
        hist_fp: u128,
    ) {
        self.report.states += 1;
        let mut incr_oracle = None;
        let (chain, conflict, equivocators) = if self.reduced {
            // Incremental: clone the parent's oracle and observe only
            // the newest block instead of replaying the whole history.
            let mut o = parent_oracle.clone();
            let last = blocks.last().expect("visit is only called post-append");
            o.observe(MsgId(blocks.len() as u64), last.author, &last.parents);
            self.report.observes_saved += blocks.len() as u64 - 1;
            let out = (
                o.finalized_chain(),
                o.conflict_detected(),
                o.equivocator_count(),
            );
            incr_oracle = Some(o);
            out
        } else {
            replay(self.n, blocks)
        };
        if conflict {
            self.fail(format!(
                "conflicting quorum certified after {} blocks",
                blocks.len()
            ));
            return;
        }
        if equivocators > 0 {
            self.report.equivocating_states += 1;
        }
        if chain.len() > 1 {
            self.report.finalizing_states += 1;
            self.report.max_finalized = self.report.max_finalized.max(chain.len() - 1);
        }
        // Monotonicity: the child's chain extends the parent's.
        if chain.len() < parent_chain.len() || chain[..parent_chain.len()] != *parent_chain {
            self.fail(format!(
                "finality retracted: {parent_chain:?} -> {chain:?} after {} blocks",
                blocks.len()
            ));
            return;
        }
        // Cross-schedule agreement: same logical block set, extension-
        // ordered chains (watermarks may differ; prefixes may not).
        let cids = Search::chain_cids(blocks, &chain);
        let peers = self.groups.entry(Search::set_key(blocks)).or_default();
        let fork = peers.iter().find(|peer| {
            let m = peer.len().min(cids.len());
            peer[..m] != cids[..m]
        });
        if let Some(peer) = fork {
            let why = format!("two schedules of one history fork: {peer:?} vs {cids:?}");
            self.fail(why);
            return;
        }
        peers.push(cids);
        let oracle = incr_oracle.as_ref().unwrap_or(parent_oracle);
        self.explore(blocks, &chain, oracle, hist_fp);
    }
}

fn run_search(
    n: usize,
    byz: &[usize],
    max_blocks: usize,
    max_states: usize,
    reduced: bool,
) -> NonforkingReport {
    let mut byz_mask = vec![false; n];
    for &b in byz {
        byz_mask[b] = true;
    }
    let mut search = Search {
        n,
        byz: byz_mask,
        max_blocks,
        max_states,
        reduced,
        report: NonforkingReport {
            states: 0,
            truncated: false,
            finalizing_states: 0,
            equivocating_states: 0,
            max_finalized: 0,
            violation: None,
            fingerprint_hits: 0,
            observes_saved: 0,
        },
        groups: HashMap::new(),
        seen: HashMap::new(),
    };
    let mut blocks = Vec::new();
    let (chain, _, _) = replay(n, &blocks);
    let oracle = FinalityOracle::new(n);
    search.explore(&mut blocks, &chain, &oracle, 0x006e_6f6e_666f_726b_u128);
    search.report
}

/// Exhaustively explores every interleaving of up to `max_blocks`
/// appends by `n` authors (those in `byz` using arbitrary stale-prefix
/// views without self-parents) and checks the nonforking invariants at
/// every reachable state. `max_states` bounds the search; hitting it
/// sets [`NonforkingReport::truncated`] rather than failing.
///
/// Runs the reduced search: incremental finality oracles and
/// fingerprint-deduped ordered histories ([`check_nonforking_naive`] is
/// the unreduced baseline it is pinned against). Reduction counters are
/// published through am-obs.
pub fn check_nonforking(
    n: usize,
    byz: &[usize],
    max_blocks: usize,
    max_states: usize,
) -> NonforkingReport {
    let rep = run_search(n, byz, max_blocks, max_states, true);
    rep.publish_obs();
    rep
}

/// The naive baseline: full oracle replay at every state, no history
/// dedup — every interleaving of every stale-prefix choice is visited
/// verbatim. Kept in-tree so the reduced search's verdicts (and its
/// speedup) stay measurable against it.
pub fn check_nonforking_naive(
    n: usize,
    byz: &[usize],
    max_blocks: usize,
    max_states: usize,
) -> NonforkingReport {
    run_search(n, byz, max_blocks, max_states, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_histories_finalize_and_never_fork() {
        let rep = check_nonforking(3, &[], 6, 100_000);
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
        assert!(rep.finalizing_states > 0, "nothing finalized: {rep:?}");
        assert_eq!(rep.equivocating_states, 0, "honest authors can't collide");
        assert!(rep.max_finalized >= 1);
    }

    #[test]
    fn stale_prefix_byzantine_equivocates_but_never_forks() {
        // Author 2 may build on any stale prefix without a self-parent:
        // the search reaches states where it equivocates, states where
        // the two correct authors finalized first, and every interleaving
        // between — none may retract or fork finality.
        let rep = check_nonforking(3, &[2], 6, 400_000);
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated, "raise the budget: {} states", rep.states);
        assert!(rep.equivocating_states > 0, "no equivocation reached");
        assert!(rep.finalizing_states > 0, "no finality reached");
    }

    #[test]
    fn two_byzantine_authors_cannot_fork_either() {
        // Beyond the n = 3 tolerance (quorum 3 needs every author):
        // finality may become unreachable, forking must stay impossible.
        let rep = check_nonforking(3, &[1, 2], 4, 400_000);
        assert!(rep.violation.is_none(), "{:?}", rep.violation);
        assert!(!rep.truncated);
    }

    #[test]
    fn reduced_search_is_a_drop_in_for_naive() {
        // The incremental oracle must be *observationally identical* to
        // replay-from-scratch: every counter and verdict equal. (The
        // history fingerprint cache is a guard, not a reduction, under
        // the current move rule — see DESIGN.md §14 — so state counts
        // match exactly.)
        for byz in [&[][..], &[2][..]] {
            let naive = check_nonforking_naive(3, byz, 5, 400_000);
            let fast = check_nonforking(3, byz, 5, 400_000);
            assert!(!naive.truncated && !fast.truncated);
            assert_eq!(naive.violation, fast.violation, "byz {byz:?}");
            assert_eq!(naive.states, fast.states, "byz {byz:?}");
            assert_eq!(naive.max_finalized, fast.max_finalized, "byz {byz:?}");
            assert_eq!(naive.finalizing_states, fast.finalizing_states);
            assert_eq!(naive.equivocating_states, fast.equivocating_states);
            assert_eq!(naive.fingerprint_hits, 0, "naive search must not prune");
            assert!(
                fast.observes_saved > naive.states as u64,
                "incremental oracles must save more than one observe per state"
            );
        }
    }

    #[test]
    fn state_budget_truncates_gracefully() {
        let rep = check_nonforking(3, &[2], 6, 500);
        assert!(rep.truncated);
        assert!(rep.states <= 500);
        assert!(rep.violation.is_none());
    }

    #[test]
    fn view_parents_selects_deepest_and_tips() {
        // genesis <- b1 <- b2, plus b3 off genesis: full view selects b2
        // (deepest), keeps b3 as a tip.
        let blocks = vec![
            Block {
                author: 0,
                parents: vec![GENESIS],
                depth: 1,
                cid: 1,
            },
            Block {
                author: 1,
                parents: vec![MsgId(1)],
                depth: 2,
                cid: 2,
            },
            Block {
                author: 2,
                parents: vec![GENESIS],
                depth: 1,
                cid: 3,
            },
        ];
        let ps = view_parents(&blocks, 3, GENESIS);
        assert_eq!(ps, vec![MsgId(2), MsgId(3)]);
        // Self-parent joins when it isn't already the selection.
        let ps = view_parents(&blocks, 3, MsgId(1));
        assert_eq!(ps, vec![MsgId(2), MsgId(1), MsgId(3)]);
    }
}
