//! # am-sched — execution formalism and model checker
//!
//! This crate implements Section 2 of the paper ("Impossibility of
//! asynchronous deterministic consensus in the append memory") and the
//! Section 3.1 round lower bound as *executable* artifacts: the
//! configuration/event formalism, valency classification, and searches that
//! construct the adversarial schedules whose existence the paper proves.
//!
//! ## Memory representation and commutativity
//!
//! The append memory "cannot order the access threads from different
//! nodes". We therefore represent a memory state as **per-author logs**
//! (a map author → totally-ordered list of that author's appends) rather
//! than a global log. Two concurrent appends by different authors then
//! commute *by construction* — applying `e_p` then `e_q` produces the
//! identical [`explore::Config`] as `e_q` then `e_p` — which is
//! precisely the indistinguishability that drives Lemma 2.3. A protocol
//! modelled on top of this representation is structurally unable to cheat
//! by observing arrival order.
//!
//! ## What the checker produces
//!
//! * [`bivalence::initial_bivalent`] — a bivalent initial configuration
//!   (Lemma 2.2) for a given protocol.
//! * [`bivalence::round_robin_witness`] — an adversarial schedule that
//!   keeps the system bivalent while every node takes steps round-robin
//!   (the constructive content of Theorem 2.1): for a correct consensus
//!   protocol this extends forever; the checker extends it to a requested
//!   length. Protocols that escape it are caught violating agreement or
//!   validity instead — [`explore::Analysis`] reports which.
//! * [`round_lb`] — the Lemma 3.1 search: a synchronous, round-based
//!   adversary (one straddling Byzantine node) that forces disagreement in
//!   every `r ≤ t`-round protocol and fails against `t+1` rounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bivalence;
pub mod explore;
pub mod nonforking;
pub mod proto;
pub mod round_lb;
pub mod search;
pub mod zoo_ext;

pub use bivalence::{
    initial_bivalent, initial_bivalent_fast, round_robin_witness, round_robin_witness_fast,
    Witness, WitnessOutcome,
};
pub use explore::{Analysis, Config, Entry, Event, Explorer, LocalState, Ref, Valency};
pub use nonforking::{check_nonforking, check_nonforking_naive, NonforkingReport};
pub use proto::{AsyncProtocol, FirstSeenProtocol, Op, QuorumVoteProtocol, ViewRef};
pub use round_lb::{
    merge_round_lb_shards, search_disagreement, search_disagreement_t,
    search_disagreement_t_parallel, search_disagreement_t_shard, simulate_execution,
    simulate_execution_naive, Disagreement, RoundLbOutcome, RoundLbShard,
};
pub use search::{canonical_key, search, valency_fast, SearchMode, SearchOptions, SearchReport};
pub use zoo_ext::EchoVoteProtocol;
