//! Compact search core: interned states, hash-compacted visited sets,
//! symmetry and partial-order reduction, and a level-synchronized
//! parallel frontier (DESIGN.md §14).
//!
//! The naive [`crate::explore::Explorer`] clones whole [`Config`] values
//! (nested `Vec`s) per transition and stores them verbatim in a
//! `HashMap` visited set. This module replaces that hot path for every
//! search in the crate:
//!
//! * **Interning** — per-author logs live once in a [`LogArena`]; a
//!   state is a fixed-size, `Copy` [`CState`] of arena ids, counts and
//!   incremental content hashes (≈150 bytes, no heap).
//! * **Hash compaction** — the visited set keys 128-bit fingerprints
//!   (two independent splitmix64 lanes over the canonical encoding).
//!   `exact: true` keys full decoded configurations instead and counts
//!   how many fingerprints would have collided, so the collision risk
//!   of the compacted mode is *measured*, not assumed.
//! * **Symmetry reduction** — for protocols that declare themselves
//!   [`AsyncProtocol::symmetric`], states are canonicalized under the
//!   node-ID permutations that fix the input vector (the stabilizer of
//!   the initial configuration); one representative per orbit is
//!   explored.
//! * **Partial-order reduction** — sleep sets over the commutation
//!   structure of the append memory (reads/appends/decides by distinct
//!   nodes commute unless an append changes what the other node would
//!   do), plus an ample-set rule that commits pending stable decisions
//!   immediately. The soundness argument is in DESIGN.md §14 and the
//!   reduced search is pinned to the naive one by
//!   `tests/reduced_equivalence.rs`.
//! * **Parallel frontier** — level-synchronized BFS: successor
//!   generation is fanned out over `workers` threads against the
//!   read-only arena, then merged sequentially in frontier order, so
//!   every counter and witness is deterministic for any worker count.

use crate::explore::{Config, Entry, LocalState, Valency};
use crate::proto::{AsyncProtocol, Op, ViewRef};
use std::collections::HashMap;

/// Maximum node count the compact state representation supports.
pub const MAX_N: usize = 8;

/// Words in the canonical state encoding (see [`encode`]).
const ENC_WORDS: usize = 2 * MAX_N + 4;

/// Sentinel for "undecided" in [`CState::decided`].
const UNDECIDED: u8 = 0xff;

// ---------------------------------------------------------------------------
// Hashing primitives
// ---------------------------------------------------------------------------

/// splitmix64 finalizer — the crate-wide cheap mixer (cf. `nonforking`).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Content hash of one log entry (value + parent refs, order-sensitive).
fn entry_hash(e: &Entry) -> u64 {
    let mut h = mix64(0x5ca1_ab1e ^ e.value as u64);
    for r in &e.parents {
        h = mix64(h ^ ((r.author as u64) << 8 | r.seq as u64));
    }
    h
}

/// Incremental log hash: hash of `log ++ [entry]` from hash of `log`.
fn log_push_hash(log_hash: u64, eh: u64) -> u64 {
    mix64(log_hash.wrapping_mul(0x100_0000_01b3) ^ eh)
}

/// Hash of the empty log.
const EMPTY_LOG_HASH: u64 = 0x8422_2015_a5a5_a5a5;

// ---------------------------------------------------------------------------
// Log arena
// ---------------------------------------------------------------------------

/// Interner for per-author logs. Every distinct log (sequence of entries
/// by one author) is stored once and named by a `u32` id; an append is an
/// edge `(parent id, entry) → child id`, so the arena is a trie over
/// entries and ids are a function of log *content* alone.
pub struct LogArena {
    logs: Vec<Vec<Entry>>,
    children: HashMap<(u32, u64), Vec<u32>>,
}

/// Id of the empty log.
pub const EMPTY_LOG: u32 = 0;

impl LogArena {
    /// Creates an arena holding only the empty log.
    pub fn new() -> LogArena {
        LogArena {
            logs: vec![Vec::new()],
            children: HashMap::new(),
        }
    }

    /// The entries of log `id`.
    pub fn get(&self, id: u32) -> &[Entry] {
        &self.logs[id as usize]
    }

    /// Interns `parent ++ [entry]`, returning the child id.
    pub fn push(&mut self, parent: u32, entry: Entry) -> u32 {
        let eh = entry_hash(&entry);
        if let Some(cands) = self.children.get(&(parent, eh)) {
            for &c in cands {
                if self.logs[c as usize].last() == Some(&entry) {
                    return c;
                }
            }
        }
        let id = self.logs.len() as u32;
        let mut log = self.logs[parent as usize].clone();
        log.push(entry);
        self.logs.push(log);
        self.children.entry((parent, eh)).or_default().push(id);
        id
    }

    /// Interns a full log, returning its id.
    pub fn intern(&mut self, log: &[Entry]) -> u32 {
        let mut id = EMPTY_LOG;
        for e in log {
            id = self.push(id, e.clone());
        }
        id
    }

    /// Number of distinct logs interned (including the empty log).
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Whether the arena holds only the empty log.
    pub fn is_empty(&self) -> bool {
        self.logs.len() == 1
    }
}

impl Default for LogArena {
    fn default() -> LogArena {
        LogArena::new()
    }
}

// ---------------------------------------------------------------------------
// Compact state
// ---------------------------------------------------------------------------

/// A configuration in compact, fixed-size, `Copy` form. Logs are named by
/// arena ids; `logh` carries an incremental content hash per author so
/// canonical encodings never have to touch the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CState {
    /// Arena id of each author's log.
    pub logs: [u32; MAX_N],
    /// Length of each author's log.
    pub loglen: [u8; MAX_N],
    /// Incremental content hash of each author's log.
    pub logh: [u64; MAX_N],
    /// `view[v][a]` = how many of author `a`'s appends node `v` saw.
    pub view: [[u8; MAX_N]; MAX_N],
    /// Appends performed per node.
    pub own: [u8; MAX_N],
    /// Decision per node (`UNDECIDED` if none).
    pub decided: [u8; MAX_N],
    /// Binary input per node.
    pub input: [u8; MAX_N],
}

impl CState {
    /// Encodes a [`Config`] (interning its logs into `arena`).
    pub fn from_config(c: &Config, arena: &mut LogArena) -> CState {
        let n = c.logs.len();
        assert!(n <= MAX_N, "compact search supports n <= {MAX_N}");
        let mut s = CState {
            logs: [EMPTY_LOG; MAX_N],
            loglen: [0; MAX_N],
            logh: [EMPTY_LOG_HASH; MAX_N],
            view: [[0; MAX_N]; MAX_N],
            own: [0; MAX_N],
            decided: [UNDECIDED; MAX_N],
            input: [0; MAX_N],
        };
        for a in 0..n {
            s.logs[a] = arena.intern(&c.logs[a]);
            s.loglen[a] = c.logs[a].len() as u8;
            s.logh[a] = c.logs[a]
                .iter()
                .fold(EMPTY_LOG_HASH, |h, e| log_push_hash(h, entry_hash(e)));
        }
        for (v, st) in c.nodes.iter().enumerate() {
            for a in 0..n {
                s.view[v][a] = st.view[a];
            }
            s.own[v] = st.own;
            s.decided[v] = st.decided.unwrap_or(UNDECIDED);
            s.input[v] = st.input;
        }
        s
    }

    /// Decodes back to the naive representation.
    pub fn to_config(&self, n: usize, arena: &LogArena) -> Config {
        Config {
            logs: (0..n).map(|a| arena.get(self.logs[a]).to_vec()).collect(),
            nodes: (0..n)
                .map(|v| LocalState {
                    input: self.input[v],
                    view: self.view[v][..n].to_vec(),
                    own: self.own[v],
                    decided: match self.decided[v] {
                        UNDECIDED => None,
                        d => Some(d),
                    },
                })
                .collect(),
        }
    }

    /// Bitmask of decisions present (bit `v` set iff some node decided
    /// `v`) — mirrors [`Config::decision_bits`].
    pub fn decision_bits(&self, n: usize) -> u8 {
        let mut m = 0u8;
        for v in 0..n {
            if self.decided[v] != UNDECIDED {
                m |= 1 << self.decided[v];
            }
        }
        m
    }
}

/// Canonical fixed-width encoding of a state. Logs enter via their
/// content hashes (`logh`) so the encoding is arena-independent: the
/// same abstract configuration encodes identically no matter which
/// arena (or discovery order) interned it.
fn encode(s: &CState) -> [u64; ENC_WORDS] {
    let mut w = [0u64; ENC_WORDS];
    w[..MAX_N].copy_from_slice(&s.logh);
    for v in 0..MAX_N {
        w[MAX_N + v] = u64::from_le_bytes(s.view[v]);
    }
    w[2 * MAX_N] = u64::from_le_bytes(s.loglen);
    w[2 * MAX_N + 1] = u64::from_le_bytes(s.own);
    w[2 * MAX_N + 2] = u64::from_le_bytes(s.decided);
    w[2 * MAX_N + 3] = u64::from_le_bytes(s.input);
    w
}

/// 128-bit fingerprint of an encoding: two independent splitmix64 lanes.
fn fingerprint(enc: &[u64; ENC_WORDS]) -> u128 {
    let mut a = 0x243f_6a88_85a3_08d3u64;
    let mut b = 0x1319_8a2e_0370_7344u64;
    for (i, &w) in enc.iter().enumerate() {
        a = mix64(a ^ w);
        b = mix64(b.wrapping_add(w).wrapping_add((i as u64) << 56));
    }
    ((a as u128) << 64) | b as u128
}

/// Applies node-ID permutation `p` (node `v` ↦ `p[v]`) to a state.
fn apply_perm(s: &CState, p: &[u8; MAX_N]) -> CState {
    let mut t = *s;
    for v in 0..MAX_N {
        let pv = p[v] as usize;
        t.logs[pv] = s.logs[v];
        t.loglen[pv] = s.loglen[v];
        t.logh[pv] = s.logh[v];
        t.own[pv] = s.own[v];
        t.decided[pv] = s.decided[v];
        t.input[pv] = s.input[v];
        for (a, &pa) in p.iter().enumerate() {
            t.view[pv][pa as usize] = s.view[v][a];
        }
    }
    t
}

/// Enumerates the stabilizer of the input vector: all permutations of
/// `0..n` that map equal-input nodes to equal-input nodes (identity on
/// `n..MAX_N`). The identity is always first.
fn stabilizer_perms(inputs: &[u8]) -> Vec<[u8; MAX_N]> {
    let n = inputs.len();
    let mut id = [0u8; MAX_N];
    for (v, slot) in id.iter_mut().enumerate() {
        *slot = v as u8;
    }
    let zeros: Vec<usize> = (0..n).filter(|&v| inputs[v] == 0).collect();
    let ones: Vec<usize> = (0..n).filter(|&v| inputs[v] == 1).collect();
    let mut out = Vec::new();
    let mut perm = id;
    // Recursive product of the two class permutation groups.
    fn rec(
        classes: &[Vec<usize>],
        ci: usize,
        used: &mut u16,
        perm: &mut [u8; MAX_N],
        out: &mut Vec<[u8; MAX_N]>,
    ) {
        if ci == classes.len() {
            out.push(*perm);
            return;
        }
        let class = &classes[ci];
        fn assign(
            class: &[usize],
            i: usize,
            used: &mut u16,
            perm: &mut [u8; MAX_N],
            classes: &[Vec<usize>],
            ci: usize,
            out: &mut Vec<[u8; MAX_N]>,
        ) {
            if i == class.len() {
                rec(classes, ci + 1, used, perm, out);
                return;
            }
            for &target in class {
                if *used & (1 << target) == 0 {
                    *used |= 1 << target;
                    perm[class[i]] = target as u8;
                    assign(class, i + 1, used, perm, classes, ci, out);
                    *used &= !(1 << target);
                }
            }
        }
        assign(class, 0, used, perm, classes, ci, out);
    }
    let classes = [zeros, ones];
    let mut used = 0u16;
    rec(&classes, 0, &mut used, &mut perm, &mut out);
    // Identity first (deterministic tie handling in callers).
    if let Some(pos) = out.iter().position(|p| *p == id) {
        out.swap(0, pos);
    }
    out
}

/// Canonicalizes `s` under `perms`: returns the permuted state with the
/// lexicographically smallest encoding, that encoding, and the
/// permutation used. Deterministic: first minimal permutation wins.
fn canonicalize(s: &CState, perms: &[[u8; MAX_N]]) -> (CState, [u64; ENC_WORDS], [u8; MAX_N]) {
    let mut best_enc = encode(s);
    let mut best_state = *s;
    let mut best_perm = perms[0];
    for p in &perms[1..] {
        let t = apply_perm(s, p);
        let e = encode(&t);
        if e < best_enc {
            best_enc = e;
            best_state = t;
            best_perm = *p;
        }
    }
    (best_state, best_enc, best_perm)
}

/// Canonical key of a configuration under input-stabilizer symmetry —
/// exposed so property tests can check the quotient is well defined:
/// `canonical_key(perm(c)) == canonical_key(c)` for any permutation
/// fixing the input vector. With `symmetric: false` the key is just the
/// plain encoding (no folding).
pub fn canonical_key(c: &Config, symmetric: bool) -> Vec<u64> {
    let mut arena = LogArena::new();
    let s = CState::from_config(c, &mut arena);
    let inputs: Vec<u8> = c.nodes.iter().map(|st| st.input).collect();
    if !symmetric {
        return encode(&s).to_vec();
    }
    let perms = stabilizer_perms(&inputs);
    let (_, enc, _) = canonicalize(&s, &perms);
    enc.to_vec()
}

// ---------------------------------------------------------------------------
// Search options / report
// ---------------------------------------------------------------------------

/// What facts the search must establish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// Everything the naive `Explorer::analyze` reports: valency,
    /// agreement violations, v-free non-termination.
    Full,
    /// Valency only — exploration stops as soon as both decision values
    /// have been seen (the state is then provably bivalent).
    ValencyOnly,
}

/// Knobs of the compact search. `Default` enables every reduction with
/// hash compaction and a single worker.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// State budget; exploration past it sets `truncated`.
    pub max_states: usize,
    /// Sleep-set partial-order reduction (prunes redundant transitions;
    /// preserves the reachable state set exactly).
    pub sleep_sets: bool,
    /// Ample-set rule: commit pending fresh-insensitive decisions
    /// immediately (prunes states; preserves valency / violation /
    /// v-free facts — DESIGN.md §14).
    pub ample_decide: bool,
    /// Symmetry reduction for protocols that opt in via
    /// [`AsyncProtocol::symmetric`].
    pub symmetry: bool,
    /// Key the visited set by full configurations instead of 128-bit
    /// fingerprints, and count would-be fingerprint collisions.
    pub exact: bool,
    /// Worker threads for the frontier (1 = fully sequential).
    pub workers: usize,
    /// What to establish (full analysis vs valency-only early exit).
    pub mode: SearchMode,
}

impl SearchOptions {
    /// All reductions on, hash-compacted, sequential, full analysis.
    pub fn reduced(max_states: usize) -> SearchOptions {
        SearchOptions {
            max_states,
            sleep_sets: true,
            ample_decide: true,
            symmetry: true,
            exact: false,
            workers: 1,
            mode: SearchMode::Full,
        }
    }

    /// No reductions, exact visited set — the compact core degenerates
    /// to the naive state graph (used by the equivalence suite).
    pub fn unreduced(max_states: usize) -> SearchOptions {
        SearchOptions {
            max_states,
            sleep_sets: false,
            ample_decide: false,
            symmetry: false,
            exact: true,
            workers: 1,
            mode: SearchMode::Full,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> SearchOptions {
        self.workers = workers.max(1);
        self
    }

    /// Sets the search mode.
    pub fn with_mode(mut self, mode: SearchMode) -> SearchOptions {
        self.mode = mode;
        self
    }
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions::reduced(1_000_000)
    }
}

/// Result of a compact search, superset of the naive
/// [`crate::explore::Analysis`] facts plus reduction counters.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Distinct states visited (post-reduction).
    pub states: usize,
    /// Transitions executed.
    pub transitions: u64,
    /// Whether the state budget was hit.
    pub truncated: bool,
    /// Valency of the root (union of decisions over explored states).
    pub valency: Valency,
    /// A reachable configuration where two nodes decided differently.
    pub agreement_violation: Option<Config>,
    /// `(crashed_node, stuck_config)` — a v-free non-termination
    /// witness, as in the naive analysis (only hunted in
    /// [`SearchMode::Full`]).
    pub vfree_nontermination: Option<(usize, Config)>,
    /// Enabled transitions skipped by sleep sets.
    pub por_sleep_skipped: u64,
    /// States where the ample rule committed a pending decision (and
    /// pruned every other enabled move).
    pub ample_commits: u64,
    /// Successor states folded onto a different orbit representative.
    pub symmetry_folds: u64,
    /// Successor states already present in the visited set.
    pub fingerprint_hits: u64,
    /// Distinct states sharing a fingerprint (only measurable — and
    /// only counted — in `exact` mode).
    pub collisions: u64,
}

impl SearchReport {
    /// Publishes the reduction counters as am-obs aggregates.
    pub fn publish_obs(&self, prefix: &str) {
        am_obs::counter(&format!("{prefix}.states")).add(self.states as u64);
        am_obs::counter(&format!("{prefix}.transitions")).add(self.transitions);
        am_obs::counter(&format!("{prefix}.por_sleep_skipped")).add(self.por_sleep_skipped);
        am_obs::counter(&format!("{prefix}.ample_commits")).add(self.ample_commits);
        am_obs::counter(&format!("{prefix}.symmetry_folds")).add(self.symmetry_folds);
        am_obs::counter(&format!("{prefix}.fingerprint_hits")).add(self.fingerprint_hits);
        am_obs::counter(&format!("{prefix}.collisions")).add(self.collisions);
    }
}

// ---------------------------------------------------------------------------
// Move computation
// ---------------------------------------------------------------------------

/// One enabled move of a node, pre-applied where possible.
#[derive(Clone, Debug)]
enum Move {
    Read,
    Append(Entry),
    Decide(u8),
}

/// Per-node move analysis at one state.
struct NodeMoves {
    /// The enabled move, if any (None = passive: decided, idle, or a
    /// rule-(b) self-loop read).
    mv: [Option<Move>; MAX_N],
    /// Whether the node's pending op is insensitive to the `fresh` flag
    /// (so a concurrent append cannot change what it does next).
    stable: [bool; MAX_N],
    /// Whether anything unseen exists for the node.
    fresh: [bool; MAX_N],
}

/// Computes every node's enabled move at `s`, reading logs from the
/// arena (immutable — safe to run from worker threads).
fn node_moves(proto: &dyn AsyncProtocol, s: &CState, arena: &LogArena, n: usize) -> NodeMoves {
    let mut slices: [&[Entry]; MAX_N] = [&[]; MAX_N];
    for (a, slot) in slices.iter_mut().enumerate().take(n) {
        *slot = arena.get(s.logs[a]);
    }
    let mut out = NodeMoves {
        mv: Default::default(),
        stable: [true; MAX_N],
        fresh: [false; MAX_N],
    };
    for v in 0..n {
        if s.decided[v] != UNDECIDED {
            continue; // halted: no move, trivially stable
        }
        let fresh = (0..n).any(|a| s.loglen[a] > s.view[v][a]);
        out.fresh[v] = fresh;
        let view = ViewRef {
            logs: &slices[..n],
            counts: &s.view[v][..n],
        };
        let op = proto.next_op(v, s.input[v], s.own[v] as usize, &view, fresh);
        // Stability: would the op differ under the flipped fresh flag?
        // (Only meaningful when nothing is fresh — once fresh, appends
        // keep it fresh; we still record it for the dependence rule.)
        let flipped = proto.next_op(v, s.input[v], s.own[v] as usize, &view, !fresh);
        out.stable[v] = op == flipped;
        out.mv[v] = match op {
            Op::Idle => None,
            Op::Read => {
                if fresh {
                    Some(Move::Read)
                } else {
                    None // rule (b): e_v(C) = C
                }
            }
            Op::Append { value, parents } => Some(Move::Append(Entry { value, parents })),
            Op::Decide(d) => Some(Move::Decide(d)),
        };
    }
    out
}

/// Conditional independence of the enabled moves of nodes `x` and `y`
/// at the state `moves` was computed for: they commute and neither
/// changes what the other does next. Reads and decides touch only the
/// acting node's state; an append by `x` affects `y` iff `y` is about
/// to read (the read result changes) or `y`'s pending op flips with the
/// fresh flag.
fn independent(moves: &NodeMoves, x: usize, y: usize) -> bool {
    let affects = |a: usize, b: usize| -> bool {
        match moves.mv[a] {
            Some(Move::Append(_)) => match moves.mv[b] {
                Some(Move::Read) => true,
                _ => !moves.fresh[b] && !moves.stable[b],
            },
            _ => false, // reads/decides touch only the acting node
        }
    };
    !affects(x, y) && !affects(y, x)
}

/// Applies a move to the compact state. Appends return the entry to be
/// interned (the arena id is patched in by the sequential merge phase).
fn apply_move(s: &CState, v: usize, mv: &Move, n: usize) -> (CState, Option<Entry>) {
    let mut t = *s;
    match mv {
        Move::Read => {
            for a in 0..n {
                t.view[v][a] = t.loglen[a];
            }
            (t, None)
        }
        Move::Append(e) => {
            t.logh[v] = log_push_hash(t.logh[v], entry_hash(e));
            t.loglen[v] += 1;
            t.own[v] += 1;
            t.view[v][v] = t.view[v][v].max(t.loglen[v]);
            // t.logs[v] patched by the merge phase after interning.
            (t, Some(e.clone()))
        }
        Move::Decide(d) => {
            t.decided[v] = *d;
            (t, None)
        }
    }
}

// ---------------------------------------------------------------------------
// The search proper
// ---------------------------------------------------------------------------

/// A successor produced by the generation phase, before interning.
struct SuccProto {
    state: CState,
    /// Sleep mask for the successor (bit v = node v's move sleeps).
    sleep: u8,
    /// Author + entry to intern (appends only).
    intern: Option<(usize, Entry)>,
}

/// Facts and successors produced for one frontier state.
struct GenOut {
    decision_bits: u8,
    violation: bool,
    /// Crashed-node index of a v-free non-termination witness.
    vfree: Option<usize>,
    succs: Vec<SuccProto>,
    sleep_skipped: u64,
    ample: bool,
    transitions: u64,
}

/// Expands one frontier state: facts, POR-filtered moves, successors.
fn expand(
    proto: &dyn AsyncProtocol,
    s: &CState,
    sleep: u8,
    arena: &LogArena,
    n: usize,
    opts: &SearchOptions,
) -> GenOut {
    let moves = node_moves(proto, s, arena, n);
    let bits = s.decision_bits(n);
    let violation = bits == 0b11;
    // v-free non-termination: some v with every other node passive and
    // at least one other node undecided (passivity is permanent unless
    // an active node appends; if all others are passive, nobody ever
    // appends again).
    let mut vfree = None;
    if opts.mode == SearchMode::Full {
        for v in 0..n {
            let others_passive = (0..n).filter(|&u| u != v).all(|u| moves.mv[u].is_none());
            let someone_stuck = (0..n)
                .filter(|&u| u != v)
                .any(|u| s.decided[u] == UNDECIDED);
            if others_passive && someone_stuck {
                vfree = Some(v);
                break;
            }
        }
    }

    let mut out = GenOut {
        decision_bits: bits,
        violation,
        vfree,
        succs: Vec::new(),
        sleep_skipped: 0,
        ample: false,
        transitions: 0,
    };

    // Ample rule: a pending decision whose op is fresh-insensitive
    // commutes with every other move and can never be disabled — commit
    // the lowest-index one immediately and prune all other moves.
    if opts.ample_decide {
        let ample_v =
            (0..n).find(|&v| matches!(moves.mv[v], Some(Move::Decide(_))) && moves.stable[v]);
        if let Some(v) = ample_v {
            out.ample = true;
            if sleep & (1 << v) == 0 {
                let (t, intern) = apply_move(s, v, moves.mv[v].as_ref().unwrap(), n);
                out.transitions = 1;
                out.succs.push(SuccProto {
                    state: t,
                    sleep: 0,
                    intern: intern.map(|e| (v, e)),
                });
            }
            return out;
        }
    }

    // Sleep-set expansion (or plain expansion when POR is off).
    let mut explored_mask = 0u8;
    for v in 0..n {
        let Some(mv) = &moves.mv[v] else { continue };
        if opts.sleep_sets && sleep & (1 << v) != 0 {
            out.sleep_skipped += 1;
            continue;
        }
        let mut succ_sleep = 0u8;
        if opts.sleep_sets {
            let candidates = sleep | explored_mask;
            for u in 0..n {
                if candidates & (1 << u) != 0 && moves.mv[u].is_some() && independent(&moves, u, v)
                {
                    succ_sleep |= 1 << u;
                }
            }
        }
        let (t, intern) = apply_move(s, v, mv, n);
        out.transitions += 1;
        out.succs.push(SuccProto {
            state: t,
            sleep: succ_sleep,
            intern: intern.map(|e| (v, e)),
        });
        explored_mask |= 1 << v;
    }
    out
}

/// Visited-set key: fingerprint (compact) or full configuration (exact).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Fp(u128),
    Exact(Config),
}

/// Runs the compact search from `init`.
pub fn search(proto: &dyn AsyncProtocol, init: &Config, opts: &SearchOptions) -> SearchReport {
    let n = proto.n();
    assert!(n <= MAX_N, "compact search supports n <= {MAX_N}");
    assert_eq!(init.logs.len(), n);

    let mut arena = LogArena::new();
    let root_raw = CState::from_config(init, &mut arena);
    let inputs: Vec<u8> = init.nodes.iter().map(|s| s.input).collect();

    // Symmetry applies only to protocols that declare equivariance, and
    // only while logs stay parent-free (permuting authors would
    // otherwise have to rewrite refs inside entries).
    let perms = if opts.symmetry && proto.symmetric() {
        stabilizer_perms(&inputs)
    } else {
        Vec::new()
    };
    let use_sym = perms.len() > 1;

    let mut report = SearchReport {
        states: 0,
        transitions: 0,
        truncated: false,
        valency: Valency::NoDecision,
        agreement_violation: None,
        vfree_nontermination: None,
        por_sleep_skipped: 0,
        ample_commits: 0,
        symmetry_folds: 0,
        fingerprint_hits: 0,
        collisions: 0,
    };

    let root = if use_sym {
        canonicalize(&root_raw, &perms).0
    } else {
        root_raw
    };

    // visited: key → sleep mask the state was explored with. A revisit
    // whose mask is not a superset must be re-explored with the
    // intersection (strictly smaller → terminates).
    let mut visited: HashMap<Key, u8> = HashMap::new();
    // Fingerprint audit map for exact mode: fp → representative index.
    let mut fp_audit: HashMap<u128, Config> = HashMap::new();

    let key_of = |s: &CState, arena: &LogArena, exact: bool| -> (Key, u128) {
        let fp = fingerprint(&encode(s));
        if exact {
            (Key::Exact(s.to_config(n, arena)), fp)
        } else {
            (Key::Fp(fp), fp)
        }
    };

    let (root_key, root_fp) = key_of(&root, &arena, opts.exact);
    if opts.exact {
        fp_audit.insert(root_fp, root.to_config(n, &arena));
    }
    visited.insert(root_key, 0);
    report.states = 1;

    let mut frontier: Vec<(CState, u8)> = vec![(root, 0)];
    let mut seen_bits = 0u8;

    'levels: while !frontier.is_empty() {
        // --- Generation phase: parallel over the frontier, arena
        // read-only, output in frontier order. ---
        let outs: Vec<GenOut> = if opts.workers <= 1 || frontier.len() < 2 {
            frontier
                .iter()
                .map(|(s, sl)| expand(proto, s, *sl, &arena, n, opts))
                .collect()
        } else {
            let workers = opts.workers.min(frontier.len());
            let chunk = frontier.len().div_ceil(workers);
            let arena_ref = &arena;
            let frontier_ref = &frontier;
            let mut chunks: Vec<Vec<GenOut>> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(frontier_ref.len());
                        scope.spawn(move || {
                            frontier_ref[lo..hi]
                                .iter()
                                .map(|(s, sl)| expand(proto, s, *sl, arena_ref, n, opts))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    chunks.push(h.join().expect("search worker panicked"));
                }
            });
            chunks.into_iter().flatten().collect()
        };

        // --- Merge phase: sequential, deterministic in frontier order. ---
        let mut next: Vec<(CState, u8)> = Vec::new();
        for (fi, out) in outs.into_iter().enumerate() {
            seen_bits |= out.decision_bits;
            report.por_sleep_skipped += out.sleep_skipped;
            report.transitions += out.transitions;
            if out.ample {
                report.ample_commits += 1;
            }
            if out.violation && report.agreement_violation.is_none() {
                report.agreement_violation = Some(frontier[fi].0.to_config(n, &arena));
            }
            if let Some(v) = out.vfree {
                if report.vfree_nontermination.is_none() {
                    report.vfree_nontermination = Some((v, frontier[fi].0.to_config(n, &arena)));
                }
            }
            if opts.mode == SearchMode::ValencyOnly && seen_bits == 0b11 {
                break 'levels;
            }
            for mut sp in out.succs {
                if let Some((author, entry)) = sp.intern.take() {
                    sp.state.logs[author] = arena.push(sp.state.logs[author], entry);
                }
                let (canon, mut sleep) = if use_sym {
                    let (c, _, p) = canonicalize(&sp.state, &perms);
                    if c != sp.state {
                        report.symmetry_folds += 1;
                    }
                    // Sleep masks name node indices: permute along.
                    let mut m = 0u8;
                    for (v, &pv) in p.iter().enumerate().take(n) {
                        if sp.sleep & (1 << v) != 0 {
                            m |= 1 << pv;
                        }
                    }
                    (c, m)
                } else {
                    (sp.state, sp.sleep)
                };
                if !opts.sleep_sets {
                    sleep = 0;
                }
                let (key, fp) = key_of(&canon, &arena, opts.exact);
                if opts.exact {
                    match fp_audit.get(&fp) {
                        None => {
                            fp_audit.insert(fp, canon.to_config(n, &arena));
                        }
                        Some(rep) => {
                            if *rep != canon.to_config(n, &arena) {
                                report.collisions += 1;
                            }
                        }
                    }
                }
                match visited.get_mut(&key) {
                    None => {
                        visited.insert(key, sleep);
                        report.states += 1;
                        if report.states > opts.max_states {
                            report.truncated = true;
                            break 'levels;
                        }
                        next.push((canon, sleep));
                    }
                    Some(stored) => {
                        report.fingerprint_hits += 1;
                        // Already explored with mask `stored`: only a
                        // strictly smaller sleep set warrants re-entry.
                        if sleep & *stored != *stored {
                            let inter = sleep & *stored;
                            *stored = inter;
                            next.push((canon, inter));
                        }
                    }
                }
            }
        }
        frontier = next;
    }

    report.valency = Valency::from_bits(seen_bits & 1 != 0, seen_bits & 2 != 0);
    report
}

/// Valency of `init` with early exit on bivalence — the fast primitive
/// behind the witness searches.
pub fn valency_fast(proto: &dyn AsyncProtocol, init: &Config, opts: &SearchOptions) -> Valency {
    search(proto, init, &opts.with_mode(SearchMode::ValencyOnly)).valency
}

/// Enabled successor states of `s` in node order, interning appends into
/// `arena` — the unreduced building block for path-level searches (the
/// bivalence extension walk) that must see every individual event.
pub fn successors_compact(
    proto: &dyn AsyncProtocol,
    s: &CState,
    arena: &mut LogArena,
) -> Vec<(usize, CState)> {
    let n = proto.n();
    let moves = node_moves(proto, s, arena, n);
    let mut out = Vec::new();
    for v in 0..n {
        if let Some(mv) = &moves.mv[v] {
            let (mut t, intern) = apply_move(s, v, mv, n);
            if let Some(e) = intern {
                t.logs[v] = arena.push(t.logs[v], e);
            }
            out.push((v, t));
        }
    }
    out
}

/// 128-bit fingerprint of a compact state (hash-compaction key).
pub fn state_fingerprint(s: &CState) -> u128 {
    fingerprint(&encode(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::proto::{FirstSeenProtocol, QuorumVoteProtocol};
    use crate::zoo_ext::EchoVoteProtocol;

    #[test]
    fn arena_interns_by_content() {
        let mut a = LogArena::new();
        let e1 = Entry {
            value: 1,
            parents: Vec::new(),
        };
        let e0 = Entry {
            value: 0,
            parents: Vec::new(),
        };
        let l1 = a.intern(&[e1.clone(), e0.clone()]);
        let l2 = a.intern(&[e1.clone(), e0.clone()]);
        assert_eq!(l1, l2, "same content, same id");
        let l3 = a.intern(&[e0, e1]);
        assert_ne!(l1, l3, "order matters");
        assert_eq!(a.len(), 5); // empty, [1], [1,0], [0], [0,1]
    }

    #[test]
    fn cstate_round_trips_through_config() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 10_000);
        let mut c = Config::initial(&[0, 1, 1]);
        for v in [0usize, 1, 0, 2, 1] {
            if let Some((_, c2)) = ex.apply(&c, v) {
                c = c2;
            }
        }
        let mut arena = LogArena::new();
        let s = CState::from_config(&c, &mut arena);
        assert_eq!(s.to_config(3, &arena), c);
    }

    #[test]
    fn stabilizer_size_matches_class_factorials() {
        assert_eq!(stabilizer_perms(&[0, 1, 1]).len(), 2); // 1! * 2!
        assert_eq!(stabilizer_perms(&[0, 0, 1, 1]).len(), 4); // 2! * 2!
        assert_eq!(stabilizer_perms(&[1, 1, 1]).len(), 6); // 3!
        assert_eq!(stabilizer_perms(&[0, 1])[0], {
            let mut id = [0u8; MAX_N];
            for (v, s) in id.iter_mut().enumerate() {
                *s = v as u8;
            }
            id
        });
    }

    #[test]
    fn canonical_key_is_permutation_invariant() {
        // Build a state, permute two same-input nodes, check equal keys.
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let ex = Explorer::new(&p, 10_000);
        let c0 = Config::initial(&[0, 1, 1]);
        let (_, c1) = ex.apply(&c0, 1).unwrap(); // node 1 appends
                                                 // Mirror image: node 2 appends instead (nodes 1 and 2 share input).
        let (_, c2) = ex.apply(&c0, 2).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(canonical_key(&c1, true), canonical_key(&c2, true));
        assert_ne!(canonical_key(&c1, false), canonical_key(&c2, false));
    }

    #[test]
    fn unreduced_search_matches_naive_counts_and_facts() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let init = Config::initial(&[0, 1, 1]);
        let naive = Explorer::new(&p, 500_000).analyze(&init);
        let rep = search(&p, &init, &SearchOptions::unreduced(500_000));
        assert!(!rep.truncated);
        assert_eq!(rep.states, naive.configs);
        assert_eq!(rep.valency, naive.valency);
        assert_eq!(
            rep.agreement_violation.is_some(),
            naive.agreement_violation.is_some()
        );
        assert_eq!(
            rep.collisions, 0,
            "128-bit fingerprints must not collide here"
        );
    }

    #[test]
    fn sleep_sets_preserve_the_state_set() {
        // Sleep sets prune transitions, never states.
        for inputs in [[0u8, 1, 1], [0, 0, 1], [1, 1, 1]] {
            let p = QuorumVoteProtocol::new(3, 2, 0);
            let naive = Explorer::new(&p, 500_000).analyze(&Config::initial(&inputs));
            let mut opts = SearchOptions::unreduced(500_000);
            opts.sleep_sets = true;
            let rep = search(&p, &Config::initial(&inputs), &opts);
            assert_eq!(rep.states, naive.configs, "inputs {inputs:?}");
            assert!(rep.por_sleep_skipped > 0 || rep.transitions <= naive.configs as u64 * 3);
            assert!(
                rep.transitions < naive.configs as u64 * 3,
                "sleep sets must cut transitions below the n-per-state ceiling"
            );
        }
    }

    #[test]
    fn reduced_search_agrees_on_verdicts() {
        let p = FirstSeenProtocol::new(3);
        let init = Config::initial(&[0, 1, 1]);
        let naive = Explorer::new(&p, 500_000).analyze(&init);
        let rep = search(&p, &init, &SearchOptions::reduced(500_000));
        assert!(!rep.truncated);
        assert_eq!(rep.valency, naive.valency);
        assert_eq!(
            rep.agreement_violation.is_some(),
            naive.agreement_violation.is_some()
        );
        if let Some(w) = &rep.agreement_violation {
            assert!(w.violates_agreement());
        }
    }

    #[test]
    fn symmetry_folds_orbit_states() {
        let p = QuorumVoteProtocol::new(4, 3, 0);
        let init = Config::initial(&[0, 0, 1, 1]);
        let mut no_sym = SearchOptions::reduced(2_000_000);
        no_sym.symmetry = false;
        let base = search(&p, &init, &no_sym);
        let folded = search(&p, &init, &SearchOptions::reduced(2_000_000));
        assert!(folded.symmetry_folds > 0);
        assert!(
            folded.states < base.states,
            "orbit folding must shrink the state count ({} vs {})",
            folded.states,
            base.states
        );
        assert_eq!(folded.valency, base.valency);
        assert_eq!(
            folded.vfree_nontermination.is_some(),
            base.vfree_nontermination.is_some()
        );
    }

    #[test]
    fn vfree_detection_matches_naive() {
        let p = QuorumVoteProtocol::new(3, 3, 0);
        let init = Config::initial(&[0, 1, 0]);
        let naive = Explorer::new(&p, 500_000).analyze(&init);
        let rep = search(&p, &init, &SearchOptions::reduced(500_000));
        assert!(naive.vfree_nontermination.is_some());
        let (crashed, stuck) = rep
            .vfree_nontermination
            .expect("reduced search must also find the stuck computation");
        assert!(crashed < 3);
        assert!(!stuck.all_decided());
    }

    #[test]
    fn parallel_frontier_is_deterministic() {
        let p = EchoVoteProtocol::new(3, 2, 0);
        let init = Config::initial(&[0, 1, 1]);
        let seq = search(&p, &init, &SearchOptions::reduced(500_000));
        let par = search(&p, &init, &SearchOptions::reduced(500_000).with_workers(4));
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.transitions, par.transitions);
        assert_eq!(seq.valency, par.valency);
        assert_eq!(seq.symmetry_folds, par.symmetry_folds);
        assert_eq!(seq.fingerprint_hits, par.fingerprint_hits);
        assert_eq!(
            seq.agreement_violation, par.agreement_violation,
            "witness configs must be byte-identical across worker counts"
        );
    }

    #[test]
    fn valency_only_mode_early_exits() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let init = Config::initial(&[0, 1, 1]);
        let full = search(&p, &init, &SearchOptions::reduced(500_000));
        let fast = search(
            &p,
            &init,
            &SearchOptions::reduced(500_000).with_mode(SearchMode::ValencyOnly),
        );
        assert_eq!(full.valency, fast.valency);
        assert!(fast.states <= full.states);
        assert_eq!(
            valency_fast(&p, &init, &SearchOptions::reduced(500_000)),
            full.valency
        );
    }

    #[test]
    fn truncation_fires_on_tiny_budget() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let rep = search(&p, &Config::initial(&[0, 1, 0]), &SearchOptions::reduced(3));
        assert!(rep.truncated);
    }
}
