//! Deterministic asynchronous protocols over the append memory, and the
//! protocol zoo the Theorem 2.1 checker runs against.
//!
//! A protocol specifies, for each node, a deterministic next operation as a
//! function of the node's *local state* (its input, what it last read, and
//! its own appends). The adversarial scheduler controls only *which* node
//! moves next — exactly the Section 2.1 setting.

use crate::explore::{Entry, Ref};

/// What a node sees: the per-author prefixes it observed at its last read
/// (plus its own appends, which it always knows).
///
/// The logs are borrowed as per-author *slices* so both the naive
/// [`crate::explore::Explorer`] (which owns `Vec<Vec<Entry>>`) and the
/// compact [`crate::search`] core (which decodes interned logs into
/// per-worker scratch buffers) can serve the same protocol trait without
/// materialising a nested allocation per call.
pub struct ViewRef<'a> {
    /// Per-author logs of the *memory* (full).
    pub logs: &'a [&'a [Entry]],
    /// Per-author counts visible to this node.
    pub counts: &'a [u8],
}

impl<'a> ViewRef<'a> {
    /// The visible entries of `author`, in that author's order.
    pub fn of(&self, author: usize) -> &'a [Entry] {
        &self.logs[author][..self.counts[author] as usize]
    }

    /// Total number of visible non-genesis appends.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Iterates `(author, entry)` over all visible entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a Entry)> + '_ {
        (0..self.logs.len()).flat_map(move |a| self.of(a).iter().map(move |e| (a, e)))
    }

    /// Count of visible entries whose value equals `v`.
    pub fn count_value(&self, v: u8) -> usize {
        self.iter().filter(|(_, e)| e.value == v).count()
    }

    /// Number of distinct authors with at least one visible entry.
    pub fn distinct_authors(&self) -> usize {
        (0..self.logs.len()).filter(|&a| self.counts[a] > 0).count()
    }
}

/// The deterministic next operation of a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the whole memory (updates the node's view).
    Read,
    /// Append a value with parent references.
    Append {
        /// The appended value.
        value: u8,
        /// References to previously seen messages.
        parents: Vec<Ref>,
    },
    /// Decide on a bit and halt.
    Decide(u8),
    /// Nothing to do: the node's next read would not change its state and
    /// it is not ready to decide. In the computation graph this is the
    /// self-loop of rule (b).
    Idle,
}

/// A deterministic protocol for `n` nodes with binary inputs.
pub trait AsyncProtocol: Send + Sync {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Protocol name for reports.
    fn name(&self) -> String;

    /// Whether the protocol is equivariant under node-ID permutations:
    /// `next_op` must not depend on the numeric node/author indices, only
    /// on inputs, values, and counts. Opting in lets the compact search
    /// core quotient the state space by input-preserving permutations
    /// (DESIGN.md §14); protocols that break ties by author index (e.g.
    /// [`FirstSeenProtocol`]) must leave this `false`.
    fn symmetric(&self) -> bool {
        false
    }

    /// The node's next operation, as a pure function of its local state.
    ///
    /// * `node` — the acting node's index.
    /// * `input` — its binary input.
    /// * `own` — how many appends it has already performed.
    /// * `view` — what it saw at its last read (own appends included).
    /// * `fresh` — whether the memory has grown beyond `view` (the node
    ///   cannot see *what* is new without reading, only that a read would
    ///   change its state; this drives rule (b) self-loop detection).
    fn next_op(&self, node: usize, input: u8, own: usize, view: &ViewRef<'_>, fresh: bool) -> Op;
}

/// Zoo protocol 1: append your input once, then decide on the value of the
/// "first" visible message, where first = smallest author index among
/// visible appends (a deterministic content-derived rule — the memory
/// provides no arrival order to use).
///
/// Plausible but wrong: two nodes whose reads straddle an append decide
/// differently. The checker catches the agreement violation.
#[derive(Clone, Debug)]
pub struct FirstSeenProtocol {
    n: usize,
}

impl FirstSeenProtocol {
    /// Creates the protocol for `n` nodes.
    pub fn new(n: usize) -> FirstSeenProtocol {
        FirstSeenProtocol { n }
    }
}

impl AsyncProtocol for FirstSeenProtocol {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("first-seen(n={})", self.n)
    }

    fn next_op(&self, _node: usize, input: u8, own: usize, view: &ViewRef<'_>, fresh: bool) -> Op {
        if own == 0 {
            return Op::Append {
                value: input,
                parents: Vec::new(),
            };
        }
        // Decide on the smallest-author visible value.
        for a in 0..self.n {
            if let Some(e) = view.of(a).first() {
                return Op::Decide(e.value);
            }
        }
        if fresh {
            Op::Read
        } else {
            Op::Idle
        }
    }
}

/// Zoo protocol 2: append your input once, wait until values from at least
/// `quorum` distinct authors are visible, then decide the majority (ties
/// broken to `tie`).
///
/// * `quorum = n` is not 1-resilient: a crashed node blocks termination
///   (the checker finds a stuck v-free computation).
/// * `quorum = n-1` terminates despite one crash but violates agreement:
///   two nodes can decide on different (n-1)-subsets. The checker finds it.
#[derive(Clone, Debug)]
pub struct QuorumVoteProtocol {
    n: usize,
    /// Distinct authors required before deciding.
    pub quorum: usize,
    /// Tie-break value for even splits.
    pub tie: u8,
}

impl QuorumVoteProtocol {
    /// Creates the protocol.
    pub fn new(n: usize, quorum: usize, tie: u8) -> QuorumVoteProtocol {
        assert!(quorum >= 1 && quorum <= n);
        assert!(tie <= 1);
        QuorumVoteProtocol { n, quorum, tie }
    }
}

impl AsyncProtocol for QuorumVoteProtocol {
    fn n(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!(
            "quorum-vote(n={}, q={}, tie={})",
            self.n, self.quorum, self.tie
        )
    }

    fn symmetric(&self) -> bool {
        // Decisions depend only on value counts and the number of distinct
        // authors — never on which author index said what.
        true
    }

    fn next_op(&self, _node: usize, input: u8, own: usize, view: &ViewRef<'_>, fresh: bool) -> Op {
        if own == 0 {
            return Op::Append {
                value: input,
                parents: Vec::new(),
            };
        }
        if view.distinct_authors() >= self.quorum {
            let ones = view.count_value(1);
            let zeros = view.count_value(0);
            let d = match ones.cmp(&zeros) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => 0,
                std::cmp::Ordering::Equal => self.tie,
            };
            return Op::Decide(d);
        }
        if fresh {
            Op::Read
        } else {
            Op::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(logs: &'a [&'a [Entry]], counts: &'a [u8]) -> ViewRef<'a> {
        ViewRef { logs, counts }
    }

    fn slices(logs: &[Vec<Entry>]) -> Vec<&[Entry]> {
        logs.iter().map(Vec::as_slice).collect()
    }

    fn e(v: u8) -> Entry {
        Entry {
            value: v,
            parents: Vec::new(),
        }
    }

    #[test]
    fn view_ref_accessors() {
        let logs = vec![vec![e(1), e(0)], vec![], vec![e(1)]];
        let logs = slices(&logs);
        let counts = [1u8, 0, 1];
        let v = view(&logs, &counts);
        assert_eq!(v.of(0).len(), 1); // only first entry of author 0 visible
        assert_eq!(v.total(), 2);
        assert_eq!(v.count_value(1), 2);
        assert_eq!(v.count_value(0), 0);
        assert_eq!(v.distinct_authors(), 2);
    }

    #[test]
    fn first_seen_appends_then_decides() {
        let p = FirstSeenProtocol::new(3);
        let logs = vec![vec![], vec![], vec![]];
        let counts = [0u8, 0, 0];
        // First op: append own input.
        assert_eq!(
            p.next_op(0, 1, 0, &view(&slices(&logs), &counts), false),
            Op::Append {
                value: 1,
                parents: vec![]
            }
        );
        // With a visible value: decide the smallest author's value.
        let logs2 = vec![vec![], vec![e(0)], vec![e(1)]];
        let counts2 = [0u8, 1, 1];
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs2), &counts2), false),
            Op::Decide(0)
        );
    }

    #[test]
    fn first_seen_idles_without_info() {
        let p = FirstSeenProtocol::new(3);
        let logs = vec![vec![], vec![], vec![]];
        let counts = [0u8, 0, 0];
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs), &counts), false),
            Op::Idle
        );
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs), &counts), true),
            Op::Read
        );
    }

    #[test]
    fn quorum_vote_waits_for_quorum() {
        let p = QuorumVoteProtocol::new(3, 2, 0);
        let logs = vec![vec![e(1)], vec![], vec![]];
        let counts = [1u8, 0, 0];
        // Quorum of 2 not met: read or idle.
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs), &counts), true),
            Op::Read
        );
        // Quorum met: majority decision.
        let logs2 = vec![vec![e(1)], vec![e(1)], vec![e(0)]];
        let counts2 = [1u8, 1, 1];
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs2), &counts2), false),
            Op::Decide(1)
        );
    }

    #[test]
    fn quorum_vote_tie_break() {
        let p = QuorumVoteProtocol::new(2, 2, 1);
        let logs = vec![vec![e(1)], vec![e(0)]];
        let counts = [1u8, 1];
        assert_eq!(
            p.next_op(0, 1, 1, &view(&slices(&logs), &counts), false),
            Op::Decide(1)
        );
        let p0 = QuorumVoteProtocol::new(2, 2, 0);
        assert_eq!(
            p0.next_op(0, 1, 1, &view(&slices(&logs), &counts), false),
            Op::Decide(0)
        );
    }

    #[test]
    #[should_panic]
    fn quorum_bounds_checked() {
        let _ = QuorumVoteProtocol::new(3, 4, 0);
    }

    #[test]
    fn names_are_descriptive() {
        assert!(FirstSeenProtocol::new(3).name().contains("first-seen"));
        assert!(QuorumVoteProtocol::new(3, 2, 0).name().contains("q=2"));
    }
}
