//! Cross-node agreement of the embedded finality layer, 300 seeds.
//!
//! Each trial runs the full networked driver (`run_bft_net_full`): every
//! node gossips blocks over the fault-injected simulator, runs its own
//! finality oracle over exactly the sub-DAG it admitted, and reports its
//! finalized chain at three growth stages — the decision gate, after
//! in-flight delivery settles, and after an omniscient heal. The suite
//! sweeps four fault families (drops, duplication+reordering,
//! partition+heal, equivocator+drops) over 75 seeds each and asserts
//! the invariants the paper's safety argument needs:
//!
//! 1. No conflicting certificate, ever.
//! 2. At every stage, correct nodes' finalized chains are pairwise
//!    extension-ordered (each is a prefix of every longer one).
//! 3. Per node, the stages only grow: gate ⊑ settled ⊑ healed.
//! 4. For crash-free families the heal *equalizes* the watermarks —
//!    every correct node ends on the identical chain.

use am_core::MsgId;
use am_net::{LatencyModel, NetConfig, NetProfile};
use am_protocols::{run_bft_net_full, BftAdversary, Params};

const DELTA_NS: u64 = 1_000_000_000;
const SEEDS: u64 = 75;

fn extension_ordered(chains: &[Vec<MsgId>], correct: usize) -> bool {
    chains[..correct].iter().all(|a| {
        chains[..correct].iter().all(|b| {
            let m = a.len().min(b.len());
            a[..m] == b[..m]
        })
    })
}

fn is_prefix(short: &[MsgId], long: &[MsgId]) -> bool {
    short.len() <= long.len() && long[..short.len()] == *short
}

/// Runs one fault family over `SEEDS` seeds; `equalizes` additionally
/// demands identical healed chains across correct nodes.
fn family(name: &str, p: &Params, adv: BftAdversary, profile: &NetConfig, equalizes: bool) {
    let correct = p.n - p.t;
    let mut finalized = 0u64;
    for s in 0..SEEDS {
        let q = p.with_seed(p.seed ^ (s.wrapping_mul(0x9e37_79b9).wrapping_add(s)));
        let run = run_bft_net_full(&q, adv, profile);
        assert!(
            !run.conflict_any,
            "{name}/seed {s}: conflicting certificate"
        );
        for (stage, chains) in [
            ("gate", &run.chains_at_gate),
            ("settled", &run.chains_settled),
            ("healed", &run.chains_healed),
        ] {
            assert!(
                extension_ordered(chains, correct),
                "{name}/seed {s}: {stage} chains not extension-ordered"
            );
        }
        for node in 0..correct {
            assert!(
                is_prefix(&run.chains_at_gate[node], &run.chains_settled[node]),
                "{name}/seed {s}/node {node}: settling retracted finality"
            );
            assert!(
                is_prefix(&run.chains_settled[node], &run.chains_healed[node]),
                "{name}/seed {s}/node {node}: healing retracted finality"
            );
        }
        if equalizes {
            let first = &run.chains_healed[0];
            for node in 1..correct {
                assert_eq!(
                    &run.chains_healed[node], first,
                    "{name}/seed {s}: heal left node {node}'s watermark apart"
                );
            }
        }
        finalized += run.trial.finality as u64;
    }
    assert!(
        finalized * 2 > SEEDS,
        "{name}: finality reached in only {finalized}/{SEEDS} trials — \
         the family is supposed to stress agreement, not liveness"
    );
}

#[test]
fn agreement_under_drops() {
    let latency = LatencyModel::Constant(DELTA_NS / 20);
    let profile = NetProfile::ideal(latency).with_drop(0.2);
    let p = Params::new(5, 0, 0.5, 4, 0xa9);
    family("drop 0.2", &p, BftAdversary::Absent, &profile.into(), true);
}

#[test]
fn agreement_under_dup_and_reorder() {
    let latency = LatencyModel::Constant(DELTA_NS / 20);
    let profile = NetProfile::ideal(latency).with_dup(0.25).with_reorder(0.25);
    let p = Params::new(5, 0, 0.5, 4, 0xa9d);
    family(
        "dup+reorder",
        &p,
        BftAdversary::Absent,
        &profile.into(),
        true,
    );
}

#[test]
fn agreement_across_partition_heal() {
    let latency = LatencyModel::Constant(DELTA_NS / 20);
    let profile = NetProfile::ideal(latency).with_partition(0, 8 * DELTA_NS);
    let p = Params::new(5, 0, 0.5, 4, 0xa9e);
    family(
        "partition 8Δ",
        &p,
        BftAdversary::Absent,
        &profile.into(),
        true,
    );
}

#[test]
fn agreement_with_equivocator_on_lossy_wire() {
    // Byzantine observers keep sticky per-observer certificates, so a
    // transient quorum can leave one watermark a step ahead permanently:
    // the heal guarantees extension order, not equality, here.
    let latency = LatencyModel::Constant(DELTA_NS / 20);
    let profile = NetProfile::ideal(latency).with_drop(0.1);
    let p = Params::new(5, 1, 0.5, 4, 0xa9f);
    family(
        "eq + drop 0.1",
        &p,
        BftAdversary::Equivocator,
        &profile.into(),
        false,
    );
}
