//! Statistical quality of the per-trial seed derivation.
//!
//! The whole sweep engine leans on `trial_seed`: adaptive runs must see
//! the same trial stream as fixed runs (prefix property), and parallel
//! batches must not correlate. That only works if the SplitMix
//! derivation is collision-free over realistic index ranges and its
//! output bits are unbiased.

use am_protocols::trial_seed;
use std::collections::HashSet;

#[test]
fn one_million_indices_yield_one_million_distinct_seeds() {
    for base in [0u64, 1, 0xdead_beef_cafe] {
        let mut seen = HashSet::with_capacity(1 << 20);
        for i in 0..1_000_000u64 {
            assert!(
                seen.insert(trial_seed(base, i)),
                "collision at base {base}, index {i}"
            );
        }
    }
}

#[test]
fn output_bits_are_roughly_balanced() {
    // Over 100k consecutive indices every output bit should be set about
    // half the time; 40–60% is a loose bound a biased mix would miss.
    let n = 100_000u64;
    let mut ones = [0u64; 64];
    for i in 0..n {
        let z = trial_seed(42, i);
        for (b, count) in ones.iter_mut().enumerate() {
            *count += (z >> b) & 1;
        }
    }
    for (b, &count) in ones.iter().enumerate() {
        let frac = count as f64 / n as f64;
        assert!(
            (0.4..=0.6).contains(&frac),
            "bit {b} set {frac:.3} of the time"
        );
    }
}

#[test]
fn adjacent_indices_and_bases_decorrelate() {
    // Flipping the index by one should flip ~half the output bits.
    let mut total = 0u32;
    let pairs = 1000u64;
    for i in 0..pairs {
        total += (trial_seed(7, i) ^ trial_seed(7, i + 1)).count_ones();
    }
    let mean = total as f64 / pairs as f64;
    assert!(
        (24.0..=40.0).contains(&mean),
        "mean flipped bits {mean:.1}, want ≈32"
    );
    // And different bases must not produce shifted copies of the stream.
    assert_ne!(trial_seed(1, 5), trial_seed(2, 5));
    assert_ne!(trial_seed(1, 5), trial_seed(2, 4));
}
