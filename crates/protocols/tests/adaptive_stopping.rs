//! Sequential-stopping correctness: on a seeded E8-style grid the
//! adaptive engine must agree with the fixed-budget engine within the
//! target half-width, honour the target whenever it claims a half-width
//! stop, and spend meaningfully fewer trials overall.

use am_protocols::{ChainAdversary, Params, SweepConfig, SweepRunner, TieBreak, TrialKind};
use am_stats::StopReason;

#[test]
fn adaptive_agrees_with_fixed_within_the_target_and_saves_trials() {
    let target = 0.08;
    let budget = 600u64;
    let fixed = SweepRunner::new(SweepConfig::fixed());
    let adaptive = SweepRunner::new(SweepConfig::adaptive(target));
    let kind = TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker);

    let mut fixed_total = 0u64;
    let mut adaptive_total = 0u64;
    for t in 1..=5usize {
        let p = Params::new(12, t, 0.4, 41, 7);
        let f = fixed.measure(&format!("fixed/t{t}"), &p, kind, budget);
        let a = adaptive.measure(&format!("adaptive/t{t}"), &p, kind, budget);
        fixed_total += f.trials_used();
        adaptive_total += a.trials_used();

        assert_eq!(f.trials_used(), budget, "fixed mode must spend the budget");
        assert!(a.trials_used() <= budget);

        // Same seeds ⇒ the adaptive tally is a prefix of the fixed trial
        // stream, so the two estimates can only differ by sampling noise
        // both intervals account for.
        let (fw, aw) = (f.ci95(), a.ci95());
        let half = |w: am_stats::WilsonInterval| (w.hi - w.lo) / 2.0;
        assert!(
            (f.estimate() - a.estimate()).abs() <= half(fw) + half(aw),
            "t={t}: fixed {:.3} vs adaptive {:.3} beyond combined CI",
            f.estimate(),
            a.estimate()
        );

        // A half-width stop must actually have achieved the target.
        if a.stop == StopReason::HalfWidth {
            assert!(
                half(aw) <= target,
                "t={t}: claimed half-width stop at {:.4} > {target}",
                half(aw)
            );
        }
    }

    assert!(
        adaptive_total * 2 <= fixed_total,
        "adaptive used {adaptive_total} trials vs fixed {fixed_total}: \
         expected ≥2× savings on this grid"
    );
}

#[test]
fn adaptive_results_are_schedule_independent() {
    // Rerunning the same adaptive point must reproduce the tally exactly
    // — trials are index-seeded, not order-seeded.
    let adaptive = SweepRunner::new(SweepConfig::adaptive(0.05));
    let p = Params::new(10, 3, 0.5, 31, 99);
    let kind = TrialKind::Chain(TieBreak::Randomized, ChainAdversary::Dissenter);
    let a = adaptive.measure("pt", &p, kind, 400);
    let b = adaptive.measure("pt", &p, kind, 400);
    assert_eq!(a.tally, b.tally);
    assert_eq!(a.trials_used(), b.trials_used());
    assert_eq!(a.stop, b.stop);
}
