//! Shared parameters of the Section 5 experiments.

use am_core::NodeId;
use am_net::NetProfile;

/// How a correct node's append-time view lags the true memory (both are
/// admissible readings of "synchronous nodes with bound Δ"; ablation A5
/// checks the thresholds agree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewPolicy {
    /// The view is the memory at the start of the current Δ-interval
    /// (view age < Δ) — appends within one interval are mutually
    /// concurrent.
    IntervalSnapshot,
    /// The view is the memory as of `grant time − Δ` (view age exactly
    /// Δ) — the conservative worst case of the synchrony bound; orphans
    /// at least as much as the interval snapshot.
    LaggedDelta,
}

/// Parameters of one randomized-access trial.
///
/// Correct nodes are `0 .. n-t` and all hold input `+1` (the validity
/// scenario — the paper's adversary analysis assumes the all-same-input
/// case and a Byzantine side writing `-1`, "otherwise the Byzantine
/// strategy would not be optimal"). Byzantine nodes are `n-t .. n`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Total nodes.
    pub n: usize,
    /// Byzantine count.
    pub t: usize,
    /// Per-node token rate per interval Δ (the paper's λ).
    pub lambda: f64,
    /// The synchrony interval Δ.
    pub delta: f64,
    /// Decision prefix size k (choose odd to avoid ties).
    pub k: usize,
    /// Token lifetime in units of Δ (see crate docs; 1.0 is the model
    /// default).
    pub token_ttl: f64,
    /// How correct views lag the memory.
    pub view_policy: ViewPolicy,
    /// Trial seed.
    pub seed: u64,
    /// Optional network profile: when set, trials run with real block
    /// propagation over an `am-net` simulator instead of the abstract
    /// interval-snapshot views (see [`crate::propagation`]).
    pub net: Option<NetProfile>,
}

impl Params {
    /// Conventional defaults: Δ = 1, TTL = 1Δ.
    pub fn new(n: usize, t: usize, lambda: f64, k: usize, seed: u64) -> Params {
        assert!(t < n, "need t < n");
        assert!(lambda > 0.0);
        assert!(k >= 1);
        Params {
            n,
            t,
            lambda,
            delta: 1.0,
            k,
            token_ttl: 1.0,
            view_policy: ViewPolicy::IntervalSnapshot,
            seed,
            net: None,
        }
    }

    /// Same parameters with a different view policy (ablation A5).
    #[must_use]
    pub fn with_view_policy(mut self, vp: ViewPolicy) -> Params {
        self.view_policy = vp;
        self
    }

    /// Same parameters with trials run over a faulty network (E14).
    #[must_use]
    pub fn with_net(mut self, profile: NetProfile) -> Params {
        self.net = Some(profile);
        self
    }

    /// Number of correct nodes.
    pub fn n_correct(&self) -> usize {
        self.n - self.t
    }

    /// The Byzantine node ids.
    pub fn byz_nodes(&self) -> Vec<NodeId> {
        (self.n_correct()..self.n)
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The correct-append rate per interval, λ·(n−t) — the quantity the
    /// Theorem 5.4 resilience bound is phrased in.
    pub fn correct_rate(&self) -> f64 {
        self.lambda * self.n_correct() as f64
    }

    /// The Byzantine token rate per interval, λ·t.
    pub fn byz_rate(&self) -> f64 {
        self.lambda * self.t as f64
    }

    /// Same parameters with a different seed (Monte-Carlo fan-out).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Params {
        self.seed = seed;
        self
    }

    /// Same parameters with a different Byzantine count.
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Params {
        assert!(t < self.n);
        self.t = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = Params::new(10, 3, 0.5, 21, 1);
        assert_eq!(p.n_correct(), 7);
        assert_eq!(p.byz_nodes().len(), 3);
        assert_eq!(p.byz_nodes()[0], NodeId(7));
        assert!((p.correct_rate() - 3.5).abs() < 1e-12);
        assert!((p.byz_rate() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn with_seed_and_t() {
        let p = Params::new(8, 2, 1.0, 11, 5);
        assert_eq!(p.with_seed(9).seed, 9);
        assert_eq!(p.with_t(3).t, 3);
        assert_eq!(p.with_t(3).n, 8);
    }

    #[test]
    #[should_panic(expected = "t < n")]
    fn rejects_t_ge_n() {
        let _ = Params::new(4, 4, 1.0, 3, 0);
    }
}
