//! Shared parameters of the Section 5 experiments.

use am_core::NodeId;
use am_net::NetConfig;

/// How a correct node's append-time view lags the true memory (both are
/// admissible readings of "synchronous nodes with bound Δ"; ablation A5
/// checks the thresholds agree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewPolicy {
    /// The view is the memory at the start of the current Δ-interval
    /// (view age < Δ) — appends within one interval are mutually
    /// concurrent.
    IntervalSnapshot,
    /// The view is the memory as of `grant time − Δ` (view age exactly
    /// Δ) — the conservative worst case of the synchrony bound; orphans
    /// at least as much as the interval snapshot.
    LaggedDelta,
}

/// Parameters of one randomized-access trial.
///
/// Correct nodes are `0 .. n-t` and all hold input `+1` (the validity
/// scenario — the paper's adversary analysis assumes the all-same-input
/// case and a Byzantine side writing `-1`, "otherwise the Byzantine
/// strategy would not be optimal"). Byzantine nodes are `n-t .. n`.
///
/// Construct through [`Params::builder`] (validating, returns
/// `Result`) or [`Params::new`] (panicking shorthand for tests and
/// fixed scripts). The fields stay public for reading, but building a
/// `Params` literal by hand skips validation and is deprecated — a
/// `t ≥ n` or `λ ≤ 0` literal produces trials whose failure tallies are
/// meaningless.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Total nodes.
    pub n: usize,
    /// Byzantine count.
    pub t: usize,
    /// Per-node token rate per interval Δ (the paper's λ).
    pub lambda: f64,
    /// The synchrony interval Δ.
    pub delta: f64,
    /// Decision prefix size k (choose odd to avoid ties).
    pub k: usize,
    /// Token lifetime in units of Δ (see crate docs; 1.0 is the model
    /// default).
    pub token_ttl: f64,
    /// How correct views lag the memory.
    pub view_policy: ViewPolicy,
    /// Trial seed.
    pub seed: u64,
    /// Optional network configuration: when set, trials run with real
    /// block propagation over an `am-net` simulator instead of the
    /// abstract interval-snapshot views (see [`crate::propagation`]).
    pub net: Option<NetConfig>,
}

/// Why a [`ParamsBuilder`] rejected its inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamError {
    /// `t ≥ n`: there must be at least one correct node.
    ByzantineMajority {
        /// The offending Byzantine count.
        t: usize,
        /// The total node count.
        n: usize,
    },
    /// `λ ≤ 0` (or NaN): the token process needs a positive rate.
    NonPositiveLambda(f64),
    /// `k = 0`: the decision prefix must contain at least one append.
    ZeroHorizon,
    /// `Δ ≤ 0` (or NaN): the synchrony interval must be positive.
    NonPositiveDelta(f64),
    /// Token TTL ≤ 0 (or NaN): grants must live for a positive time.
    NonPositiveTtl(f64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::ByzantineMajority { t, n } => {
                write!(f, "need t < n, got t = {t}, n = {n}")
            }
            ParamError::NonPositiveLambda(l) => write!(f, "need λ > 0, got {l}"),
            ParamError::ZeroHorizon => write!(f, "need decision prefix k ≥ 1, got 0"),
            ParamError::NonPositiveDelta(d) => write!(f, "need Δ > 0, got {d}"),
            ParamError::NonPositiveTtl(ttl) => write!(f, "need token TTL > 0, got {ttl}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Validating builder for [`Params`]; see [`Params::builder`].
#[derive(Clone, Copy, Debug)]
pub struct ParamsBuilder {
    n: usize,
    t: usize,
    lambda: f64,
    delta: f64,
    k: usize,
    token_ttl: f64,
    view_policy: ViewPolicy,
    seed: u64,
    net: Option<NetConfig>,
}

impl ParamsBuilder {
    /// Total nodes.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Byzantine count.
    #[must_use]
    pub fn t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Per-node token rate per interval Δ.
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// The synchrony interval Δ.
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Decision prefix size k.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Token lifetime in units of Δ.
    #[must_use]
    pub fn token_ttl(mut self, ttl: f64) -> Self {
        self.token_ttl = ttl;
        self
    }

    /// How correct views lag the memory.
    #[must_use]
    pub fn view_policy(mut self, vp: ViewPolicy) -> Self {
        self.view_policy = vp;
        self
    }

    /// Trial seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run trials over a faulty network. Accepts a [`NetConfig`] or a
    /// legacy `NetProfile` (converted, trace on).
    #[must_use]
    pub fn net(mut self, cfg: impl Into<NetConfig>) -> Self {
        self.net = Some(cfg.into());
        self
    }

    /// Validates and builds. Rejects `t ≥ n`, non-positive `λ`/`Δ`/TTL,
    /// and a zero decision horizon.
    pub fn build(self) -> Result<Params, ParamError> {
        if self.t >= self.n {
            return Err(ParamError::ByzantineMajority {
                t: self.t,
                n: self.n,
            });
        }
        // `is_nan() ||` keeps the checks rejecting NaN alongside x ≤ 0.
        if self.lambda.is_nan() || self.lambda <= 0.0 {
            return Err(ParamError::NonPositiveLambda(self.lambda));
        }
        if self.k == 0 {
            return Err(ParamError::ZeroHorizon);
        }
        if self.delta.is_nan() || self.delta <= 0.0 {
            return Err(ParamError::NonPositiveDelta(self.delta));
        }
        if self.token_ttl.is_nan() || self.token_ttl <= 0.0 {
            return Err(ParamError::NonPositiveTtl(self.token_ttl));
        }
        Ok(Params {
            n: self.n,
            t: self.t,
            lambda: self.lambda,
            delta: self.delta,
            k: self.k,
            token_ttl: self.token_ttl,
            view_policy: self.view_policy,
            seed: self.seed,
            net: self.net,
        })
    }
}

impl Params {
    /// A validating builder with the conventional defaults (Δ = 1,
    /// TTL = 1Δ, interval-snapshot views, seed 0, reliable network):
    ///
    /// ```
    /// use am_protocols::Params;
    /// let p = Params::builder().n(8).t(3).lambda(0.5).k(21).build().unwrap();
    /// assert_eq!(p.n_correct(), 5);
    /// assert!(Params::builder().n(4).t(4).lambda(1.0).k(3).build().is_err());
    /// ```
    pub fn builder() -> ParamsBuilder {
        ParamsBuilder {
            n: 4,
            t: 0,
            lambda: 1.0,
            delta: 1.0,
            k: 1,
            token_ttl: 1.0,
            view_policy: ViewPolicy::IntervalSnapshot,
            seed: 0,
            net: None,
        }
    }

    /// Conventional defaults: Δ = 1, TTL = 1Δ. Panicking wrapper over
    /// [`Params::builder`] for tests and fixed experiment scripts; use
    /// the builder when the inputs are not compile-time constants.
    pub fn new(n: usize, t: usize, lambda: f64, k: usize, seed: u64) -> Params {
        match Params::builder()
            .n(n)
            .t(t)
            .lambda(lambda)
            .k(k)
            .seed(seed)
            .build()
        {
            Ok(p) => p,
            Err(e) => panic!("invalid Params (need t < n, λ > 0, k ≥ 1): {e}"),
        }
    }

    /// Same parameters with a different view policy (ablation A5).
    #[must_use]
    pub fn with_view_policy(mut self, vp: ViewPolicy) -> Params {
        self.view_policy = vp;
        self
    }

    /// Same parameters with trials run over a faulty network (E14/E17/
    /// E18). Accepts a [`NetConfig`] or a legacy `NetProfile`
    /// (converted, trace on).
    #[must_use]
    pub fn with_net(mut self, cfg: impl Into<NetConfig>) -> Params {
        self.net = Some(cfg.into());
        self
    }

    /// Number of correct nodes.
    pub fn n_correct(&self) -> usize {
        self.n - self.t
    }

    /// The Byzantine node ids.
    pub fn byz_nodes(&self) -> Vec<NodeId> {
        (self.n_correct()..self.n)
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The correct-append rate per interval, λ·(n−t) — the quantity the
    /// Theorem 5.4 resilience bound is phrased in.
    pub fn correct_rate(&self) -> f64 {
        self.lambda * self.n_correct() as f64
    }

    /// The Byzantine token rate per interval, λ·t.
    pub fn byz_rate(&self) -> f64 {
        self.lambda * self.t as f64
    }

    /// Same parameters with a different seed (Monte-Carlo fan-out).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Params {
        self.seed = seed;
        self
    }

    /// Same parameters with a different Byzantine count.
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Params {
        assert!(t < self.n);
        self.t = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = Params::new(10, 3, 0.5, 21, 1);
        assert_eq!(p.n_correct(), 7);
        assert_eq!(p.byz_nodes().len(), 3);
        assert_eq!(p.byz_nodes()[0], NodeId(7));
        assert!((p.correct_rate() - 3.5).abs() < 1e-12);
        assert!((p.byz_rate() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn with_seed_and_t() {
        let p = Params::new(8, 2, 1.0, 11, 5);
        assert_eq!(p.with_seed(9).seed, 9);
        assert_eq!(p.with_t(3).t, 3);
        assert_eq!(p.with_t(3).n, 8);
    }

    #[test]
    #[should_panic(expected = "t < n")]
    fn rejects_t_ge_n() {
        let _ = Params::new(4, 4, 1.0, 3, 0);
    }

    #[test]
    fn builder_accepts_and_matches_new() {
        let built = Params::builder()
            .n(10)
            .t(3)
            .lambda(0.5)
            .k(21)
            .seed(7)
            .build()
            .expect("valid params");
        assert_eq!(built, Params::new(10, 3, 0.5, 21, 7));
        let full = Params::builder()
            .n(8)
            .t(2)
            .lambda(0.4)
            .delta(2.0)
            .k(11)
            .token_ttl(3.0)
            .view_policy(ViewPolicy::LaggedDelta)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(full.delta, 2.0);
        assert_eq!(full.token_ttl, 3.0);
        assert_eq!(full.view_policy, ViewPolicy::LaggedDelta);
    }

    #[test]
    fn builder_rejects_each_invalid_input() {
        let base = || Params::builder().n(8).t(3).lambda(0.5).k(21);
        assert_eq!(
            base().t(8).build(),
            Err(ParamError::ByzantineMajority { t: 8, n: 8 })
        );
        assert_eq!(
            base().lambda(0.0).build(),
            Err(ParamError::NonPositiveLambda(0.0))
        );
        assert!(matches!(
            base().lambda(f64::NAN).build(),
            Err(ParamError::NonPositiveLambda(_))
        ));
        assert_eq!(base().k(0).build(), Err(ParamError::ZeroHorizon));
        assert_eq!(
            base().delta(-1.0).build(),
            Err(ParamError::NonPositiveDelta(-1.0))
        );
        assert_eq!(
            base().token_ttl(0.0).build(),
            Err(ParamError::NonPositiveTtl(0.0))
        );
    }

    #[test]
    fn param_errors_render_their_constraint() {
        let e = ParamError::ByzantineMajority { t: 5, n: 4 };
        assert!(e.to_string().contains("t < n"));
        assert!(ParamError::ZeroHorizon.to_string().contains("k ≥ 1"));
        assert!(ParamError::NonPositiveLambda(-0.5)
            .to_string()
            .contains("λ > 0"));
    }
}
