//! Weak agreement and temporal asynchrony (Section 5.3, final paragraph).
//!
//! The paper closes with a warning: Byzantine *agreement* (unlike Nakamoto
//! consensus) requires finality at a fixed prefix, so
//!
//! > "in the case of a temporal asynchrony, the Byzantine nodes could make
//! > sure to add more Byzantine values into the set of the first k
//! > appends. Therefore, temporarily asynchronous nodes would reduce the
//! > resilience of Byzantine agreement on the DAG."
//!
//! This module makes both effects measurable:
//!
//! * [`run_dag_staggered`] — nodes do not all decide on the same snapshot:
//!   an *early* decider reads the moment the k-value condition first
//!   holds; a *late* decider reads up to one Δ later, after the adversary
//!   has released a withheld **reorg chain** (a private side chain forked
//!   below the tip that overtakes the public chain). If the reorg changes
//!   the first-k ordering, the two deciders disagree — agreement holds
//!   only w.h.p., i.e. *weak agreement*.
//! * Temporal asynchrony is modelled by a TTL multiplier: during an
//!   asynchrony window the token authority cannot expire Byzantine grants
//!   (their "Δ" stretches), so the bank — and with it the reorg depth —
//!   grows by that factor.

use crate::chain::ChainSim;
use crate::dag::{covered_of_lin, select_chain, select_chain_with, DagRule, DagSim};
use crate::params::Params;
use am_core::{linearize_with, DagIndex, MsgId, Sign, Value};
use am_poisson::{Grant, TokenAuthority};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outcome of a staggered-decision DAG trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaggeredTrial {
    /// Decision of the node that read at the first condition-satisfying
    /// moment.
    pub early: Option<Sign>,
    /// Decision of a node reading one Δ later, after the reorg release.
    pub late: Option<Sign>,
    /// Whether the two agree.
    pub agreement: bool,
    /// Whether *both* decisions satisfied validity (+1).
    pub validity: bool,
    /// Length of the released reorg chain.
    pub reorg_len: usize,
}

/// Runs one staggered-decision trial of Algorithm 6 against the
/// withhold-reorg adversary, with the Byzantine TTL stretched by
/// `ttl_factor` (1.0 = fully synchronous; > 1 models a temporal
/// asynchrony window).
pub fn run_dag_staggered(p: &Params, rule: DagRule, ttl_factor: f64) -> StaggeredTrial {
    assert!(ttl_factor >= 1.0);
    let mut sim = DagSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let ttl = p.token_ttl * p.delta * ttl_factor;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    // Phase 1: run until the k-value condition first holds; the adversary
    // only banks (it wants a maximal reorg at the decision boundary).
    loop {
        if sim.mem.len() > p.k && sim.gate_covered() >= p.k {
            break;
        }
        grants += 1;
        if grants > max_grants {
            break;
        }
        let g = auth.next_grant();
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());
        if auth.is_byz(g.node) {
            banked.push(g);
        } else {
            let prefix = sim.view_prefix(p.view_policy, boundary_len, g.time, p.delta);
            sim.append_referencing_prefix(g.node, Value::plus(), prefix, g.time);
        }
    }

    // Early decider: snapshot now. One index serves both the early
    // decision and the adversary's fork-point computation below.
    let early_view = sim.mem.read();
    let early_dag = DagIndex::new(&early_view);
    let early_chain = select_chain_with(rule, &early_dag);
    let early = decide_on_chain(p, &early_view, &early_dag, &early_chain);

    // Phase 2: the adversary releases its bank as a *reorg chain*: a
    // private chain forked from a canonical-chain block deep enough that
    // the release strictly overtakes the public tip, rerouting chain
    // selection for anyone who reads after it.
    let reorg_len = banked.len();
    if reorg_len > 0 {
        let chain = early_chain;
        let max_depth = chain.len() - 1; // genesis at depth 0
                                         // Fork so that fork_depth + reorg_len > max_depth.
        let fork_depth = max_depth
            .saturating_sub(reorg_len.saturating_sub(2))
            .min(max_depth);
        let mut tip: MsgId = chain[fork_depth];
        let at = sim.mem.now();
        for tok in banked.drain(..) {
            tip = sim.append(tok.node, Value::minus(), &[tip], at);
        }
    }
    crate::scratch::put_banked(banked);

    // Late decider: reads after the release (one Δ of skew).
    let late_view = sim.mem.read();
    let late = decide_on(p, rule, &late_view);

    StaggeredTrial {
        early,
        late,
        agreement: early == late,
        validity: early == Some(Sign::Plus) && late == Some(Sign::Plus),
        reorg_len,
    }
}

/// The Algorithm 6 decision on a given snapshot: builds one index, selects
/// the chain, and decides.
fn decide_on(p: &Params, rule: DagRule, view: &am_core::MemoryView) -> Option<Sign> {
    let dag = DagIndex::new(view);
    let chain = select_chain_with(rule, &dag);
    decide_on_chain(p, view, &dag, &chain)
}

/// The Algorithm 6 decision given an already-built index and selected
/// chain (so callers that need the chain for other purposes pay for one
/// index build only).
fn decide_on_chain(
    p: &Params,
    view: &am_core::MemoryView,
    dag: &DagIndex,
    chain: &[MsgId],
) -> Option<Sign> {
    let lin = linearize_with(dag, chain);
    let prefix = lin.first_k_values(view, p.k);
    Sign::of_sum(
        prefix
            .iter()
            .filter_map(|id| view.get(*id))
            .map(|m| m.value.spin_contribution())
            .sum(),
    )
}

/// Runs one staggered-decision trial of **Algorithm 5** (the chain)
/// against the withhold-reorg adversary — the classic private-side-chain
/// / 51%-style attack. The adversary banks tokens (TTL × `ttl_factor`)
/// and, the moment the public chain reaches length k, releases a private
/// side chain that overtakes it; a decider reading one Δ later follows
/// the replacement chain. Because the chain *orphans* instead of
/// including, a successful reorg replaces the decided suffix wholesale —
/// the chain's weak agreement is strictly more fragile than the DAG's at
/// the same parameters (measured in E12).
pub fn run_chain_staggered(p: &Params, ttl_factor: f64) -> StaggeredTrial {
    assert!(ttl_factor >= 1.0);
    let mut sim = ChainSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(p.seed ^ 0x5eed5eed5eed5eed);

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let ttl = p.token_ttl * p.delta * ttl_factor;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    // Phase 1: correct nodes build; the adversary only banks.
    while (sim.max_depth() as usize) < p.k {
        grants += 1;
        if grants > max_grants {
            break;
        }
        let g = auth.next_grant();
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());
        if auth.is_byz(g.node) {
            banked.push(g);
            continue;
        }
        let tips = sim.deepest_in_prefix(boundary_len);
        let tip = tips[rng.gen_range(0..tips.len())];
        sim.append(g.node, Value::plus(), tip, g.time);
    }

    // Early decider: first k blocks of the canonical chain.
    let early = chain_decide(p, &sim);

    // Phase 2: release the private side chain, forked deep enough to
    // strictly overtake the public tip.
    let reorg_len = banked.len();
    if reorg_len > 0 {
        let chain = canonical_chain(&sim);
        let max_depth = chain.len() - 1;
        let fork_depth = max_depth
            .saturating_sub(reorg_len.saturating_sub(2))
            .min(max_depth);
        let mut tip = chain[fork_depth];
        let at = sim.mem.now();
        for tok in banked.drain(..) {
            tip = sim.append(tok.node, Value::minus(), tip, at);
        }
    }
    crate::scratch::put_banked(banked);

    // Late decider.
    let late = chain_decide(p, &sim);

    StaggeredTrial {
        early,
        late,
        agreement: early == late,
        validity: early == Some(Sign::Plus) && late == Some(Sign::Plus),
        reorg_len,
    }
}

/// Canonical chain (root-first ids) of the current chain simulation.
fn canonical_chain(sim: &ChainSim) -> Vec<MsgId> {
    let tips = sim.deepest_in_prefix(sim.mem.len());
    let tip = tips[0];
    let view = sim.mem.read();
    let mut chain = Vec::new();
    let mut cur = tip;
    loop {
        chain.push(cur);
        match view.get(cur).and_then(|m| m.parents.first().copied()) {
            Some(parent) => cur = parent,
            None => break,
        }
    }
    chain.reverse();
    chain
}

/// The Algorithm 5 decision on the current state: sign of the sum of the
/// first k blocks of the canonical chain.
fn chain_decide(p: &Params, sim: &ChainSim) -> Option<Sign> {
    let chain = canonical_chain(sim);
    let view = sim.mem.read();
    let sum: i64 = chain
        .iter()
        .skip(1)
        .take(p.k)
        .filter_map(|id| view.get(*id))
        .map(|m| m.value.spin_contribution())
        .sum();
    Sign::of_sum(sum)
}

/// Outcome of a full multi-node staggered-decision trial: every correct
/// node decides at its own read.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiTrial {
    /// Per-correct-node decisions, in node order.
    pub decisions: Vec<Option<Sign>>,
    /// Simulated decision time per node.
    pub decide_times: Vec<f64>,
    /// Whether all correct nodes decided the same value.
    pub agreement: bool,
    /// Whether all decided `+1`.
    pub validity: bool,
}

/// Runs Algorithm 6 with *per-node* decision points: each correct node
/// reads every Δ (staggered phases), and decides at its first read where
/// the selected chain covers ≥ k values. The withhold adversary banks
/// tokens (TTL × `ttl_factor`) and releases its reorg the moment the
/// first correct node could decide — so later readers see a different
/// history than early ones.
pub fn run_dag_multinode(p: &Params, rule: DagRule, ttl_factor: f64) -> MultiTrial {
    assert!(ttl_factor >= 1.0);
    let n_corr = p.n_correct();
    let mut sim = DagSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let ttl = p.token_ttl * p.delta * ttl_factor;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    // Per-node read schedule: node i reads at (j + i/n_corr)·Δ.
    let mut next_read: Vec<f64> = (0..n_corr)
        .map(|i| p.delta * (1.0 + i as f64 / n_corr as f64))
        .collect();
    let mut decisions: Vec<Option<Sign>> = vec![None; n_corr];
    let mut decide_times: Vec<f64> = vec![f64::INFINITY; n_corr];
    let mut released = false;

    'outer: loop {
        grants += 1;
        if grants > max_grants {
            break;
        }
        let g = auth.next_grant();

        // Process reads scheduled before this grant, in time order.
        loop {
            let (i, &t) = match next_read
                .iter()
                .enumerate()
                .filter(|&(i, _)| decisions[i].is_none())
                .min_by(|a, b| a.1.total_cmp(b.1))
            {
                Some(x) => x,
                None => break 'outer, // everyone decided
            };
            if t > g.time.seconds() {
                break;
            }
            next_read[i] = t + p.delta;
            // The adversary releases its reorg the instant a decision is
            // possible, before slower readers catch up. The coverage probe
            // uses the incremental tracker — no snapshot, no DFS.
            if !released && sim.gate_covered() >= p.k && !banked.is_empty() {
                released = true;
                let view = sim.mem.read();
                let chain = select_chain(rule, &view);
                let max_depth = chain.len() - 1;
                let fork_depth = max_depth
                    .saturating_sub(banked.len().saturating_sub(2))
                    .min(max_depth);
                let mut tip: MsgId = chain[fork_depth];
                let at = sim.mem.now();
                for tok in banked.drain(..) {
                    tip = sim.append(tok.node, Value::minus(), &[tip], at);
                }
            }
            // This reader's decision: one index build serves chain
            // selection, coverage, and the decision itself.
            let view = sim.mem.read();
            let dag = DagIndex::new(&view);
            let chain = select_chain_with(rule, &dag);
            let lin = linearize_with(&dag, &chain);
            if covered_of_lin(&view, &chain, &lin) >= p.k {
                let prefix = lin.first_k_values(&view, p.k);
                decisions[i] = Sign::of_sum(
                    prefix
                        .iter()
                        .filter_map(|id| view.get(*id))
                        .map(|m| m.value.spin_contribution())
                        .sum(),
                );
                decide_times[i] = t;
            }
        }

        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());
        if auth.is_byz(g.node) {
            banked.push(g);
        } else {
            let prefix = sim.view_prefix(p.view_policy, boundary_len, g.time, p.delta);
            sim.append_referencing_prefix(g.node, Value::plus(), prefix, g.time);
        }
    }

    crate::scratch::put_banked(banked);
    let first = decisions.iter().flatten().next().copied();
    let agreement = decisions.iter().all(|d| d.is_some()) && decisions.iter().all(|d| *d == first);
    let validity = decisions.iter().all(|d| *d == Some(Sign::Plus));
    MultiTrial {
        decisions,
        decide_times,
        agreement,
        validity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disagreement_rate(p0: Params, rule: DagRule, ttl_factor: f64, trials: u64) -> f64 {
        let miss = (0..trials)
            .filter(|&s| !run_dag_staggered(&p0.with_seed(s), rule, ttl_factor).agreement)
            .count();
        miss as f64 / trials as f64
    }

    #[test]
    fn no_byzantine_always_agrees() {
        for seed in 0..10 {
            let p = Params::new(8, 0, 0.4, 21, seed);
            let out = run_dag_staggered(&p, DagRule::LongestChain, 1.0);
            assert!(out.agreement);
            assert!(out.validity);
            assert_eq!(out.reorg_len, 0);
        }
    }

    #[test]
    fn synchronous_staggering_is_mostly_harmless() {
        // TTL factor 1: the bank is one Δ of Byzantine tokens — a shallow
        // reorg that rarely flips a k=41 prefix at t/n = 1/4.
        let p = Params::new(12, 3, 0.4, 41, 0);
        let rate = disagreement_rate(p, DagRule::LongestChain, 1.0, 60);
        assert!(rate < 0.3, "synchronous staggered disagreement {rate}");
    }

    #[test]
    fn temporal_asynchrony_degrades_agreement() {
        // The Section 5.3 claim: stretching the Byzantine TTL (temporal
        // asynchrony) deepens the reorg and hurts weak agreement and/or
        // validity.
        let p = Params::new(12, 4, 0.4, 41, 0);
        let trials = 60;
        let sync_bad = (0..trials)
            .filter(|&s| {
                let o = run_dag_staggered(&p.with_seed(s), DagRule::LongestChain, 1.0);
                !(o.agreement && o.validity)
            })
            .count();
        let async_bad = (0..trials)
            .filter(|&s| {
                let o = run_dag_staggered(&p.with_seed(s), DagRule::LongestChain, 8.0);
                !(o.agreement && o.validity)
            })
            .count();
        assert!(
            async_bad > sync_bad,
            "asynchrony must hurt: sync {sync_bad}, async {async_bad} (of {trials})"
        );
    }

    #[test]
    fn reorg_length_tracks_ttl_factor() {
        let p = Params::new(12, 4, 0.4, 41, 5);
        let short = run_dag_staggered(&p, DagRule::LongestChain, 1.0).reorg_len;
        let mut long_sum = 0usize;
        let mut short_sum = 0usize;
        for s in 0..20 {
            short_sum += run_dag_staggered(&p.with_seed(s), DagRule::LongestChain, 1.0).reorg_len;
            long_sum += run_dag_staggered(&p.with_seed(s), DagRule::LongestChain, 6.0).reorg_len;
        }
        assert!(
            long_sum > 2 * short_sum,
            "TTL×6 must bank much more: {short_sum} vs {long_sum}"
        );
        let _ = short;
    }

    #[test]
    fn larger_k_restores_agreement() {
        // Weak agreement: the disagreement probability shrinks as k grows
        // (the reorg touches a vanishing fraction of the prefix).
        let small = disagreement_rate(
            Params::new(12, 4, 0.4, 15, 0),
            DagRule::LongestChain,
            3.0,
            60,
        );
        let large = disagreement_rate(
            Params::new(12, 4, 0.4, 121, 0),
            DagRule::LongestChain,
            3.0,
            60,
        );
        assert!(
            large <= small,
            "disagreement must not grow with k: k=15 → {small}, k=121 → {large}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Params::new(10, 3, 0.4, 21, 77);
        assert_eq!(
            run_dag_staggered(&p, DagRule::Ghost, 2.0),
            run_dag_staggered(&p, DagRule::Ghost, 2.0)
        );
    }

    #[test]
    fn chain_staggered_runs_and_no_byz_is_clean() {
        for seed in 0..10 {
            let p = Params::new(8, 0, 0.3, 21, seed);
            let out = run_chain_staggered(&p, 1.0);
            assert!(out.agreement && out.validity);
            assert_eq!(out.reorg_len, 0);
        }
    }

    #[test]
    fn reorg_failure_modes_differ_between_structures() {
        // A genuinely asymmetric finding: under a *moderate* asynchrony
        // stretch the two structures fail differently.
        //
        // * The chain decides when its LENGTH reaches k, so a boundary
        //   reorg only swaps a suffix of the k-prefix — the sign of the
        //   sum survives until the bank exceeds ~k/2. Moderate stretches
        //   leave the chain's decision untouched.
        // * The DAG decides when its COVERAGE reaches k, so a reorg that
        //   forks below the tip orphans most of the covered set and can
        //   starve / flip the late decision at much smaller banks.
        let trials = 60;
        let mut chain_bad_mod = 0;
        let mut dag_bad_mod = 0;
        for s in 0..trials {
            let p = Params::new(12, 4, 0.4, 21, s);
            if !{
                let c = run_chain_staggered(&p, 4.0);
                c.agreement && c.validity
            } {
                chain_bad_mod += 1;
            }
            let d = run_dag_staggered(&p, DagRule::LongestChain, 4.0);
            if !(d.agreement && d.validity) {
                dag_bad_mod += 1;
            }
        }
        assert!(
            dag_bad_mod > chain_bad_mod,
            "moderate stretch: coverage-triggered DAG ({dag_bad_mod}) should \
             out-fail length-triggered chain ({chain_bad_mod})"
        );

        // But a *deep* stretch (bank > k/2) flips the chain's majority
        // wholesale — the 51%-style rewrite.
        let mut chain_bad_deep = 0;
        for s in 0..trials {
            let p = Params::new(12, 4, 0.4, 21, s);
            let c = run_chain_staggered(&p, 12.0);
            if !(c.agreement && c.validity) {
                chain_bad_deep += 1;
            }
        }
        assert!(
            chain_bad_deep > trials / 2,
            "deep stretch must rewrite the chain majority: {chain_bad_deep}/{trials}"
        );
    }

    #[test]
    fn chain_staggered_deterministic() {
        let p = Params::new(10, 3, 0.4, 21, 5);
        assert_eq!(run_chain_staggered(&p, 2.0), run_chain_staggered(&p, 2.0));
    }

    #[test]
    fn multinode_all_decide_and_agree_without_byz() {
        let p = Params::new(8, 0, 0.4, 21, 3);
        let out = run_dag_multinode(&p, DagRule::LongestChain, 1.0);
        assert!(out.decisions.iter().all(Option::is_some));
        assert!(out.agreement);
        assert!(out.validity);
        // Decision times are staggered but within a couple of Δ.
        let min = out
            .decide_times
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = out.decide_times.iter().cloned().fold(0.0, f64::max);
        assert!(max - min <= 2.0 * p.delta + 1e-9, "spread {}", max - min);
    }

    #[test]
    fn multinode_agreement_whp_at_large_k() {
        let mut bad = 0;
        let trials = 40;
        for s in 0..trials {
            let p = Params::new(12, 4, 0.4, 81, s);
            let out = run_dag_multinode(&p, DagRule::LongestChain, 1.0);
            if !out.agreement {
                bad += 1;
            }
        }
        assert!(bad <= 2, "large-k multinode disagreements: {bad}/{trials}");
    }

    #[test]
    fn multinode_asynchrony_splits_small_k() {
        // With a stretched TTL and a small k, the mid-decision reorg must
        // split at least some runs — the multi-node form of E11.
        let mut split = 0;
        let trials = 40;
        for s in 0..trials {
            let p = Params::new(12, 4, 0.4, 15, s);
            let out = run_dag_multinode(&p, DagRule::LongestChain, 8.0);
            if !(out.agreement && out.validity) {
                split += 1;
            }
        }
        assert!(split > 0, "stretched-TTL reorg never bit at k=15");
    }

    #[test]
    fn multinode_deterministic_per_seed() {
        let p = Params::new(10, 3, 0.4, 21, 77);
        assert_eq!(
            run_dag_multinode(&p, DagRule::Ghost, 2.0),
            run_dag_multinode(&p, DagRule::Ghost, 2.0)
        );
    }

    #[test]
    fn pivot_rule_also_runs() {
        let p = Params::new(10, 3, 0.4, 21, 3);
        let out = run_dag_staggered(&p, DagRule::Pivot, 1.0);
        assert!(out.early.is_some() || out.late.is_some());
    }
}
