//! Algorithm 6: Byzantine agreement with DAGs.
//!
//! "Contrary to the chain, the DAG follows an inclusive strategy": a
//! correct node appends a block referencing *every* tip of its view. The
//! DAG is then ordered along the longest (or GHOST-heaviest) chain and the
//! decision is the sign of the sum of the first `k` values in the
//! ordering. Forked correct values are *included* later rather than
//! orphaned, which is why the resilience stays near `1/2` independent of
//! the rate λ (Theorem 5.6).
//!
//! The dangerous adversary is the Lemma 5.5 *withhold-burst*: bank tokens
//! (within their Δ lifetime), wait until the decision is imminent, and
//! release a private chain that simultaneously completes the `k`-value
//! condition and stuffs Byzantine values into the decided prefix. The
//! lemma bounds the burst by the token yield of a correct-silence
//! interval, `O(λ log n)` w.h.p. — measured by experiment E9.

use crate::params::{Params, ViewPolicy};
use am_core::{
    chain::longest_chain_with, ghost, linearize_naive, linearize_with, longest_chain,
    pivot::pivot_chain_with, pivot_chain, AppendMemory, ConeCoverTracker, DagIndex, IncrementalDag,
    Linearization, MemoryView, MessageBuilder, MsgId, Sign, Value,
};
use am_poisson::{Grant, TokenAuthority};

/// Chain-selection rule for the DAG ordering (Algorithm 6 line 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagRule {
    /// Longest chain.
    LongestChain,
    /// GHOST heaviest subtree \[22\].
    Ghost,
    /// Conflux-style pivot chain (heaviest first-parent subtree) \[14\].
    Pivot,
}

/// The Byzantine strategy of a DAG trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagAdversary {
    /// Tokens wasted.
    Absent,
    /// Spend tokens honestly on `−1` blocks referencing all tips.
    Dissenter,
    /// Lemma 5.5: bank tokens and release a private chain just before the
    /// decision.
    WithholdBurst,
}

/// Outcome of one Algorithm 6 trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DagTrial {
    /// The common decision.
    pub decision: Option<Sign>,
    /// Whether validity held.
    pub validity: bool,
    /// Byzantine values among the decided first `k`.
    pub byz_in_prefix: usize,
    /// Length of the released withheld burst (0 for other adversaries).
    pub burst_len: usize,
    /// Values covered by the selected chain at decision time.
    pub covered_values: usize,
    /// Total appends in the memory (genesis excluded).
    pub total_appends: usize,
    /// Simulated time at which the decision condition was met.
    pub finish_time: f64,
}

/// Incremental bookkeeping for the DAG simulation (shared with the weak
/// agreement / temporal-asynchrony runners in [`crate::weak`]).
pub(crate) struct DagSim {
    pub(crate) mem: AppendMemory,
    /// Incremental depth / tips / arrival bookkeeping.
    pub(crate) inc: IncrementalDag,
    /// Incremental covered-value count of the deepest tip's past cone —
    /// replaces the per-grant snapshot + DFS of the decision gate.
    pub(crate) cover: ConeCoverTracker,
    pub(crate) byz_author: Vec<bool>,
    /// Reusable tips buffer for [`DagSim::append_referencing_prefix`] — the
    /// hot loop allocates no per-grant tip vectors.
    tips_buf: Vec<MsgId>,
}

impl DagSim {
    pub(crate) fn new(p: &Params) -> DagSim {
        let mut byz_author = vec![false; p.n];
        for b in p.byz_nodes() {
            byz_author[b.index()] = true;
        }
        DagSim {
            mem: AppendMemory::new(p.n),
            inc: IncrementalDag::new(),
            cover: ConeCoverTracker::new(),
            byz_author,
            tips_buf: Vec::new(),
        }
    }

    pub(crate) fn append(
        &mut self,
        node: am_core::NodeId,
        value: Value,
        parents: &[MsgId],
        time: am_core::Time,
    ) -> MsgId {
        let id = self
            .mem
            .append_at(
                MessageBuilder::new(node, value).parents(parents.iter().copied()),
                time,
            )
            .expect("dag append is valid");
        self.inc.on_append(id, parents, time);
        self.cover.on_append(id, parents, value.as_sign().is_some());
        id
    }

    /// Covered-value count of the deepest tip's past cone, maintained
    /// incrementally — the Algorithm 6 "chain covers ≥ k values" gate
    /// without re-reading the memory.
    pub(crate) fn gate_covered(&mut self) -> usize {
        let tip = self.inc.deepest();
        self.cover.cover_of(tip)
    }

    /// Tips of the prefix view of length `prefix`.
    pub(crate) fn tips_of_prefix(&self, prefix: usize) -> Vec<MsgId> {
        self.inc.tips_of_prefix(prefix)
    }

    /// Appends a message referencing every tip of the length-`prefix` view,
    /// reusing the sim-owned tips buffer — the allocation-free form of
    /// `tips_of_prefix` + `append` used by the hot loops.
    pub(crate) fn append_referencing_prefix(
        &mut self,
        node: am_core::NodeId,
        value: Value,
        prefix: usize,
        time: am_core::Time,
    ) -> MsgId {
        let mut tips = std::mem::take(&mut self.tips_buf);
        self.inc.tips_of_prefix_into(prefix, &mut tips);
        let id = self.append(node, value, &tips, time);
        self.tips_buf = tips;
        id
    }

    /// Id of the deepest message (ties to smallest id).
    pub(crate) fn deepest(&self) -> MsgId {
        self.inc.deepest()
    }

    /// Pre-PR4 deepest-tip lookup kept for the `*_naive` baselines: a full
    /// rescan of the depth table, as the per-grant gate used to do.
    pub(crate) fn deepest_rescan(&self) -> MsgId {
        let mut best = MsgId(0);
        for i in 1..self.inc.len() {
            let id = MsgId(i as u64);
            if self.inc.depth_of(id) > self.inc.depth_of(best) {
                best = id;
            }
        }
        best
    }

    /// Prefix visible under the view policy at grant time `now`.
    pub(crate) fn view_prefix(
        &self,
        policy: ViewPolicy,
        boundary_len: usize,
        now: am_core::Time,
        delta: f64,
    ) -> usize {
        match policy {
            ViewPolicy::IntervalSnapshot => boundary_len,
            ViewPolicy::LaggedDelta => self
                .inc
                .prefix_at_time(am_core::Time::new(now.seconds() - delta)),
        }
    }

    /// Number of value-carrying messages in the closed past cone of `tip`
    /// — the "chain containing at least k values" gate of Algorithm 6.
    pub(crate) fn covered_values(&self, view: &MemoryView, tip: MsgId) -> usize {
        let mut seen = vec![false; view.len()];
        let mut stack = vec![tip];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            let i = id.index();
            if seen[i] {
                continue;
            }
            seen[i] = true;
            let m = view.get(id).expect("cone id in view");
            if m.value.as_sign().is_some() {
                count += 1;
            }
            stack.extend_from_slice(&m.parents);
        }
        count
    }
}

/// Runs one trial of Algorithm 6.
///
/// ```
/// use am_protocols::{run_dag, DagAdversary, DagRule, Params};
/// let p = Params::new(8, 2, 0.3, 15, 7);
/// let out = run_dag(&p, DagRule::LongestChain, DagAdversary::WithholdBurst);
/// assert!(out.covered_values >= p.k);
/// ```
pub fn run_dag(p: &Params, rule: DagRule, adv: DagAdversary) -> DagTrial {
    let mut sim = DagSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let mut burst_len = 0usize;
    let ttl = p.token_ttl * p.delta;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    loop {
        // Decision gate: the selected chain covers ≥ k values. The count is
        // maintained incrementally — no snapshot, no per-grant DFS.
        if sim.mem.len() > p.k {
            let covered = sim.gate_covered();
            if covered >= p.k {
                break;
            }
            // Withhold-burst: fire when the bank can bridge the gap.
            if adv == DagAdversary::WithholdBurst
                && !banked.is_empty()
                && covered + banked.len() >= p.k
            {
                let mut tip = sim.deepest();
                let fire_at = sim.mem.now();
                for tok in banked.drain(..) {
                    tip = sim.append(tok.node, Value::minus(), &[tip], fire_at);
                    burst_len += 1;
                }
                continue;
            }
        }

        grants += 1;
        if grants > max_grants {
            break;
        }
        let g = auth.next_grant();
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());

        if auth.is_byz(g.node) {
            match adv {
                DagAdversary::Absent => {}
                DagAdversary::Dissenter => {
                    let len = sim.mem.len();
                    sim.append_referencing_prefix(g.node, Value::minus(), len, g.time);
                }
                DagAdversary::WithholdBurst => banked.push(g),
            }
            continue;
        }

        // Correct append: reference every tip of the policy-lagged view.
        let prefix = sim.view_prefix(p.view_policy, boundary_len, g.time, p.delta);
        sim.append_referencing_prefix(g.node, Value::plus(), prefix, g.time);
    }

    crate::scratch::put_banked(banked);
    decide(p, &sim, rule, burst_len)
}

/// Chain selection for a rule on a view.
pub(crate) fn select_chain(rule: DagRule, view: &MemoryView) -> Vec<MsgId> {
    match rule {
        DagRule::LongestChain => longest_chain(view),
        DagRule::Ghost => ghost::ghost_pivot(view),
        DagRule::Pivot => pivot_chain(view),
    }
}

/// Chain selection on an existing index — decision paths build the index
/// once and share it with [`linearize_with`]. GHOST selection routes
/// through the per-thread scratch pool to reuse its weight bitsets across
/// trials.
pub(crate) fn select_chain_with(rule: DagRule, dag: &DagIndex) -> Vec<MsgId> {
    match rule {
        DagRule::LongestChain => longest_chain_with(dag),
        DagRule::Ghost => crate::scratch::ghost_pivot_pooled(dag),
        DagRule::Pivot => pivot_chain_with(dag),
    }
}

pub(crate) fn decide(p: &Params, sim: &DagSim, rule: DagRule, burst_len: usize) -> DagTrial {
    let view = sim.mem.read();
    // One index build serves chain selection and linearization.
    let dag = DagIndex::new(&view);
    let chain = select_chain_with(rule, &dag);
    let lin = linearize_with(&dag, &chain);
    let prefix = lin.first_k_values(&view, p.k);
    let mut sum = 0i64;
    let mut byz_in_prefix = 0usize;
    for id in &prefix {
        let m = view.get(*id).unwrap();
        sum += m.value.spin_contribution();
        if m.author.map(|a| sim.byz_author[a.index()]).unwrap_or(false) {
            byz_in_prefix += 1;
        }
    }
    let decision = Sign::of_sum(sum);
    let covered = covered_of_lin(&view, &chain, &lin);
    DagTrial {
        decision,
        validity: decision == Some(Sign::Plus),
        byz_in_prefix,
        burst_len,
        covered_values: covered,
        total_appends: view.append_count(),
        finish_time: sim.mem.now().seconds(),
    }
}

/// Covered-value count of the chain tip's closed past cone, read off an
/// existing linearization: consecutive chain blocks are parent/child, so
/// every block is an ancestor of the tip and the linearized order *is* the
/// tip's closed past cone — counting its value-carriers equals the per-tip
/// cone DFS without running one.
pub(crate) fn covered_of_lin(view: &MemoryView, chain: &[MsgId], lin: &Linearization) -> usize {
    if chain.is_empty() {
        return 0;
    }
    lin.order
        .iter()
        .filter(|&&id| {
            view.get(id)
                .map(|m| m.value.as_sign().is_some())
                .unwrap_or(false)
        })
        .count()
}

/// Pre-PR4 decision path kept verbatim as the benchmark baseline: separate
/// index builds inside chain selection and linearization, plus a per-tip
/// cone DFS for the covered count. Semantically identical to [`decide`].
pub(crate) fn decide_naive(p: &Params, sim: &DagSim, rule: DagRule, burst_len: usize) -> DagTrial {
    let view = sim.mem.read_rebuild();
    let chain = select_chain(rule, &view);
    let lin = linearize_naive(&view, &chain);
    let prefix = lin.first_k_values(&view, p.k);
    let mut sum = 0i64;
    let mut byz_in_prefix = 0usize;
    for id in &prefix {
        let m = view.get(*id).unwrap();
        sum += m.value.spin_contribution();
        if m.author.map(|a| sim.byz_author[a.index()]).unwrap_or(false) {
            byz_in_prefix += 1;
        }
    }
    let decision = Sign::of_sum(sum);
    let covered = chain
        .last()
        .map(|&tip| sim.covered_values(&view, tip))
        .unwrap_or(0);
    DagTrial {
        decision,
        validity: decision == Some(Sign::Plus),
        byz_in_prefix,
        burst_len,
        covered_values: covered,
        total_appends: view.append_count(),
        finish_time: sim.mem.now().seconds(),
    }
}

/// Pre-PR4 [`run_dag`] kept verbatim as the benchmark baseline: per-grant
/// memory snapshot + full-history DFS at the decision gate, and the
/// duplicate-index [`decide_naive`]. Semantically identical to [`run_dag`];
/// the equivalence is asserted by tests and by the engine property suite.
pub fn run_dag_naive(p: &Params, rule: DagRule, adv: DagAdversary) -> DagTrial {
    let mut sim = DagSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = Vec::new();
    let mut burst_len = 0usize;
    let ttl = p.token_ttl * p.delta;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    loop {
        if sim.mem.len() > p.k {
            let view = sim.mem.read_rebuild();
            let covered = sim.covered_values(&view, sim.deepest_rescan());
            if covered >= p.k {
                break;
            }
            if adv == DagAdversary::WithholdBurst
                && !banked.is_empty()
                && covered + banked.len() >= p.k
            {
                let mut tip = sim.deepest_rescan();
                let fire_at = sim.mem.now();
                for tok in banked.drain(..) {
                    tip = sim.append(tok.node, Value::minus(), &[tip], fire_at);
                    burst_len += 1;
                }
                continue;
            }
        }

        grants += 1;
        if grants > max_grants {
            break;
        }
        let g = auth.next_grant();
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());

        if auth.is_byz(g.node) {
            match adv {
                DagAdversary::Absent => {}
                DagAdversary::Dissenter => {
                    let tips = sim.tips_of_prefix(sim.mem.len());
                    sim.append(g.node, Value::minus(), &tips, g.time);
                }
                DagAdversary::WithholdBurst => banked.push(g),
            }
            continue;
        }

        let prefix = sim.view_prefix(p.view_policy, boundary_len, g.time, p.delta);
        let tips = sim.tips_of_prefix(prefix);
        sim.append(g.node, Value::plus(), &tips, g.time);
    }

    decide_naive(p, &sim, rule, burst_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_rate(p0: Params, rule: DagRule, adv: DagAdversary, trials: u64) -> f64 {
        let fails = (0..trials)
            .filter(|&s| !run_dag(&p0.with_seed(s), rule, adv).validity)
            .count();
        fails as f64 / trials as f64
    }

    #[test]
    fn no_adversary_decides_plus() {
        for seed in 0..10 {
            let p = Params::new(8, 2, 0.5, 15, seed);
            for rule in [DagRule::LongestChain, DagRule::Ghost] {
                let out = run_dag(&p, rule, DagAdversary::Absent);
                assert_eq!(out.decision, Some(Sign::Plus), "seed {seed} {rule:?}");
                assert!(out.validity);
                assert_eq!(out.byz_in_prefix, 0);
                assert!(out.covered_values >= p.k);
            }
        }
    }

    #[test]
    fn dag_includes_forked_values_no_waste() {
        // Even at a high rate (heavy forking), covered values ≈ total
        // appends — the inclusive property. Compare with the chain's heavy
        // orphaning under identical parameters.
        let p = Params::new(16, 0, 1.0, 25, 3);
        let out = run_dag(&p, DagRule::LongestChain, DagAdversary::Absent);
        let inclusion = out.covered_values as f64 / out.total_appends as f64;
        assert!(
            inclusion > 0.8,
            "DAG must cover most appends, covered {} of {}",
            out.covered_values,
            out.total_appends
        );
    }

    #[test]
    fn dissenter_below_half_keeps_validity() {
        let p = Params::new(10, 3, 0.5, 41, 0); // t/n = 0.3
        for rule in [DagRule::LongestChain, DagRule::Ghost] {
            let rate = failure_rate(p, rule, DagAdversary::Dissenter, 40);
            assert!(rate < 0.2, "{rule:?} must tolerate t=0.3n, rate {rate}");
        }
    }

    #[test]
    fn dissenter_beyond_half_breaks_validity() {
        let p = Params::new(10, 6, 0.5, 41, 0); // t/n = 0.6
        let rate = failure_rate(p, DagRule::LongestChain, DagAdversary::Dissenter, 40);
        assert!(rate > 0.8, "t=0.6n must fail, rate {rate}");
    }

    #[test]
    fn dag_survives_the_chain_killer_parameters() {
        // The tie-breaker parameters that destroy the chain (λt = 2,
        // t/n = 1/3) leave the DAG's validity intact — the headline claim.
        let p = Params::new(12, 4, 0.5, 41, 0);
        let rate = failure_rate(p, DagRule::LongestChain, DagAdversary::WithholdBurst, 40);
        assert!(
            rate < 0.25,
            "DAG at λt=2, t=n/3 must hold validity, rate {rate}"
        );
    }

    #[test]
    fn withhold_burst_fires_and_is_bounded() {
        let p = Params::new(12, 4, 0.5, 41, 7);
        let out = run_dag(&p, DagRule::LongestChain, DagAdversary::WithholdBurst);
        // The burst must have fired (banked tokens exist w.h.p.) and be
        // small relative to k (Lemma 5.5: O(λ log n), not Θ(k)).
        assert!(out.burst_len > 0, "burst never fired");
        assert!(
            out.burst_len < p.k / 2,
            "burst {} must stay far below k={}",
            out.burst_len,
            p.k
        );
    }

    #[test]
    fn byz_prefix_share_is_fair_plus_burst() {
        // Withholding cannot push the Byzantine prefix share far beyond
        // t/n + burst/k.
        let p = Params::new(10, 3, 0.5, 61, 0);
        let mut share_sum = 0.0;
        let trials = 30;
        for s in 0..trials {
            let out = run_dag(
                &p.with_seed(s),
                DagRule::LongestChain,
                DagAdversary::WithholdBurst,
            );
            share_sum += out.byz_in_prefix as f64 / p.k as f64;
        }
        let mean_share = share_sum / trials as f64;
        assert!(
            mean_share < 0.45,
            "byz prefix share {mean_share} must stay below 1/2 for t/n=0.3"
        );
    }

    #[test]
    fn ghost_and_longest_agree_without_adversary() {
        let p = Params::new(8, 0, 0.3, 21, 11);
        let a = run_dag(&p, DagRule::LongestChain, DagAdversary::Absent);
        let b = run_dag(&p, DagRule::Ghost, DagAdversary::Absent);
        assert_eq!(a.decision, b.decision);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Params::new(10, 3, 0.5, 21, 42);
        let a = run_dag(&p, DagRule::Ghost, DagAdversary::WithholdBurst);
        let b = run_dag(&p, DagRule::Ghost, DagAdversary::WithholdBurst);
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_engine_matches_naive_baseline() {
        // The tracker + shared-index decision path must reproduce the
        // pre-PR4 snapshot-and-DFS path bit for bit, across every rule and
        // adversary combination.
        for seed in 0..12 {
            let p = Params::new(10, 3, 0.8, 21, seed);
            for rule in [DagRule::LongestChain, DagRule::Ghost, DagRule::Pivot] {
                for adv in [
                    DagAdversary::Absent,
                    DagAdversary::Dissenter,
                    DagAdversary::WithholdBurst,
                ] {
                    let fast = run_dag(&p, rule, adv);
                    let naive = run_dag_naive(&p, rule, adv);
                    assert_eq!(fast, naive, "seed {seed} {rule:?} {adv:?}");
                }
            }
        }
    }
}
