//! Multi-process sweep sharding: deterministic interleaved trial slices,
//! per-shard checkpoints, and the byte-identical merge.
//!
//! The sweep engine's tallies are pure functions of `(seed, trial
//! index)`, so a sweep point can be split across OS processes by residue
//! class: shard `i` of `m` runs exactly the trial indices `≡ i (mod m)`.
//! Because the unsharded engine consults its stopping rule only at batch
//! boundaries, a shard records its *per-window* hit counts (window `b` =
//! the index range the unsharded run would cover in batch `b`), and the
//! merge step replays the unsharded batch loop with each window's hits
//! reassembled as the sum over shards — reproducing the unsharded
//! tallies, batch counts, and stop decisions bit for bit, adaptive early
//! stops included.
//!
//! Three pieces live here:
//!
//! * [`ShardSpec`] — which residue class a process owns, plus the
//!   closed-form index arithmetic.
//! * [`ShardCheckpointStore`] — the per-shard checkpoint file
//!   (`<id>.shard-<i>-of-<m>.checkpoint.json`), written with the same
//!   atomic tmp+rename discipline as the unsharded store and stamped
//!   with seed, schema, shard identity, batch size, and sweep mode so a
//!   mismatched file is ignored rather than merged.
//! * [`ShardMergeSource`] — the merge-side loader: reads the `m` shard
//!   files and serves per-window hit counts back to the engine. Windows
//!   a shard never recorded (killed mid-run, or a shard that stopped a
//!   grid point earlier than its peers) are simply re-run by the merge
//!   process — the "top-up" lane — so the merged output is byte-identical
//!   to the unsharded run even when shards die or diverge on
//!   data-dependent grids.
//!
//! **Why shards can stop early at all.** A shard alone cannot evaluate
//! the global Wilson stopping rule — it sees only its residue class's
//! hits. But it *can* bound the global tally: at batch boundary `T` the
//! global hit count lies in `[own_hits, own_hits + (T − own_trials)]`,
//! and the Wilson half-width is unimodal in the hit count (widest at
//! `T/2`). When every tally in that interval satisfies the rule, the
//! unsharded run has provably stopped at or before `T`, so the shard has
//! recorded every window the merge can ever ask for and may stop too
//! ([`surely_stopped`]). Fixed-mode rules only fire at the budget, so
//! fixed shards run their full slice — exactly the unsharded behaviour.

use crate::sweep::{SweepConfig, SweepMode};
use am_stats::{Proportion, StopRule};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version stamp of the shard checkpoint JSON document.
pub const SHARD_CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// Which interleaved slice of the trial-index range a process owns:
/// shard `index` of `count` runs the indices `≡ index (mod count)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index.
    pub index: u32,
    /// Total shard count (≥ 1).
    pub count: u32,
}

impl ShardSpec {
    /// A validated spec; `index` must be below `count`.
    pub fn new(index: u32, count: u32) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be ≥ 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range (must be < {count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// The checkpoint file name this shard writes for experiment `id`.
    pub fn file_name(&self, id: &str) -> String {
        format!(
            "{id}.shard-{}-of-{}.checkpoint.json",
            self.index, self.count
        )
    }

    /// Whether this shard runs trial index `idx`.
    pub fn owns(&self, idx: u64) -> bool {
        idx % u64::from(self.count) == u64::from(self.index)
    }

    /// How many indices in `[lo, hi)` belong to this shard.
    pub fn trials_in(&self, lo: u64, hi: u64) -> u64 {
        let below = |x: u64| {
            let (i, m) = (u64::from(self.index), u64::from(self.count));
            if x > i {
                (x - i).div_ceil(m)
            } else {
                0
            }
        };
        below(hi.max(lo)) - below(lo)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    /// Parses the CLI grammar `i/m` (0-based index, e.g. `"2/4"`).
    fn from_str(s: &str) -> Result<ShardSpec, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("expected i/m (e.g. 0/4), got '{s}'"))?;
        let index: u32 = i.parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: u32 = m.parse().map_err(|_| format!("bad shard count '{m}'"))?;
        ShardSpec::new(index, count)
    }
}

/// Monotone counter making concurrent tmp files unique *within* a
/// process; the PID makes them unique across processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The tmp path a checkpoint write under `path` uses for process `pid`
/// and write sequence number `seq` — pure so the uniqueness property is
/// directly testable.
pub fn tmp_path_for(path: &Path, pid: u32, seq: u64) -> PathBuf {
    path.with_extension(format!("tmp.{pid}.{seq}"))
}

/// Writes `body` to `path` atomically: a PID-and-sequence-unique tmp
/// file plus a rename, so two processes (or stores) checkpointing into
/// the same path can never tear each other's tmp file — the last rename
/// wins and readers always see a complete document.
pub(crate) fn write_atomic(path: &Path, body: &str) -> io::Result<()> {
    let tmp = tmp_path_for(
        path,
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// One sweep point's per-shard state: this shard's hit count inside each
/// global batch window it has run, in window order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardPointCheckpoint {
    /// `batch_hits[b]` = failures among this shard's indices inside the
    /// unsharded run's batch window `b`.
    pub batch_hits: Vec<u64>,
    /// Whether this shard has proven the unsharded run stops within the
    /// recorded windows (or has exhausted the budget).
    pub done: bool,
}

/// The identity stamp a shard checkpoint carries beyond seed + schema:
/// window geometry (batch size) and stopping mode, both of which the
/// merge must share for the per-window hits to line up.
fn mode_label(cfg: &SweepConfig) -> String {
    match cfg.mode {
        SweepMode::Fixed => "fixed".to_string(),
        SweepMode::Adaptive { target_half_width } => format!("adaptive:{target_half_width}"),
    }
}

/// The on-disk per-shard checkpoint: schema, seed, shard identity, sweep
/// geometry, and per-point window tallies, written atomically after
/// every window.
#[derive(Debug)]
pub struct ShardCheckpointStore {
    path: PathBuf,
    seed: u64,
    spec: ShardSpec,
    batch: u64,
    mode: String,
    points: Mutex<BTreeMap<String, ShardPointCheckpoint>>,
}

impl ShardCheckpointStore {
    /// A fresh store writing to `path`; any existing file is overwritten
    /// at the first window.
    pub fn create(
        path: impl Into<PathBuf>,
        seed: u64,
        spec: ShardSpec,
        cfg: &SweepConfig,
    ) -> ShardCheckpointStore {
        ShardCheckpointStore {
            path: path.into(),
            seed,
            spec,
            batch: cfg.batch,
            mode: mode_label(cfg),
            points: Mutex::new(BTreeMap::new()),
        }
    }

    /// Resumes from `path` if it holds a checkpoint for the same seed,
    /// shard identity, and sweep geometry; otherwise starts fresh.
    pub fn resume(
        path: impl Into<PathBuf>,
        seed: u64,
        spec: ShardSpec,
        cfg: &SweepConfig,
    ) -> ShardCheckpointStore {
        let path = path.into();
        let points = std::fs::read_to_string(&path)
            .ok()
            .and_then(|body| parse_shard_file(&body, seed, spec, cfg))
            .unwrap_or_default();
        ShardCheckpointStore {
            path,
            seed,
            spec,
            batch: cfg.batch,
            mode: mode_label(cfg),
            points: Mutex::new(points),
        }
    }

    /// The file this store writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The shard identity this store records.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The recorded state of a point, if any.
    pub fn lookup(&self, key: &str) -> Option<ShardPointCheckpoint> {
        self.points.lock().unwrap().get(key).cloned()
    }

    /// Records a point's state and rewrites the checkpoint file.
    pub fn update(&self, key: &str, cp: ShardPointCheckpoint) -> io::Result<()> {
        let body = {
            let mut points = self.points.lock().unwrap();
            points.insert(key.to_string(), cp);
            self.render(&points)
        };
        write_atomic(&self.path, &body)
    }

    /// Records a point's state in memory only — no disk write. Rewriting
    /// the whole file every batch window is O(windows²) I/O on long
    /// sweeps, so the engine stages most windows and [`flush`es]
    /// periodically plus at every durability boundary (point done,
    /// interruption return).
    ///
    /// [`flush`es]: ShardCheckpointStore::flush
    pub fn stage(&self, key: &str, cp: ShardPointCheckpoint) {
        self.points.lock().unwrap().insert(key.to_string(), cp);
    }

    /// Writes the current in-memory state to the checkpoint file.
    pub fn flush(&self) -> io::Result<()> {
        let body = {
            let points = self.points.lock().unwrap();
            self.render(&points)
        };
        write_atomic(&self.path, &body)
    }

    fn render(&self, points: &BTreeMap<String, ShardPointCheckpoint>) -> String {
        let doc = Value::Object(vec![
            (
                "schema_version".to_string(),
                SHARD_CHECKPOINT_SCHEMA_VERSION.to_value(),
            ),
            ("seed".to_string(), self.seed.to_value()),
            ("shard_index".to_string(), self.spec.index.to_value()),
            ("shard_count".to_string(), self.spec.count.to_value()),
            ("batch".to_string(), self.batch.to_value()),
            ("mode".to_string(), self.mode.to_value()),
            (
                "points".to_string(),
                Value::Object(
                    points
                        .iter()
                        .map(|(k, cp)| (k.clone(), cp.to_value()))
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".into())
    }

    /// Whether every recorded point has proven global coverage — false
    /// after a `max_batches_per_run` halt or a mid-sweep kill.
    pub fn all_done(&self) -> bool {
        self.points.lock().unwrap().values().all(|cp| cp.done)
    }

    /// Deletes the checkpoint file.
    pub fn discard(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn parse_shard_file(
    body: &str,
    seed: u64,
    spec: ShardSpec,
    cfg: &SweepConfig,
) -> Option<BTreeMap<String, ShardPointCheckpoint>> {
    let v: Value = serde_json::from_str(body).ok()?;
    if v.get("schema_version")?.as_u64()? != u64::from(SHARD_CHECKPOINT_SCHEMA_VERSION)
        || v.get("seed")?.as_u64()? != seed
        || v.get("shard_index")?.as_u64()? != u64::from(spec.index)
        || v.get("shard_count")?.as_u64()? != u64::from(spec.count)
        || v.get("batch")?.as_u64()? != cfg.batch
        || *v.get("mode")? != Value::String(mode_label(cfg))
    {
        return None;
    }
    let Value::Object(entries) = v.get("points")? else {
        return None;
    };
    let mut points = BTreeMap::new();
    for (key, val) in entries {
        points.insert(key.clone(), ShardPointCheckpoint::from_value(val).ok()?);
    }
    Some(points)
}

/// The merge-side view of `m` shard checkpoint files: per-point,
/// per-shard window tallies, plus the source paths for post-merge
/// cleanup.
#[derive(Debug)]
pub struct ShardMergeSource {
    count: u32,
    paths: Vec<PathBuf>,
    points: BTreeMap<String, Vec<Option<ShardPointCheckpoint>>>,
}

impl ShardMergeSource {
    /// Loads the `count` shard files for experiment `id` under `dir`.
    /// Missing or mismatched (seed / schema / geometry) files degrade to
    /// absent shards — their trials are re-run by the merge — and each
    /// degradation is reported as a warning string.
    pub fn load(
        dir: &Path,
        id: &str,
        count: u32,
        seed: u64,
        cfg: &SweepConfig,
    ) -> (ShardMergeSource, Vec<String>) {
        let mut warnings = Vec::new();
        let mut paths = Vec::new();
        let mut per_shard: Vec<Option<BTreeMap<String, ShardPointCheckpoint>>> = Vec::new();
        for index in 0..count {
            let spec = ShardSpec { index, count };
            let path = dir.join(spec.file_name(id));
            let parsed = match std::fs::read_to_string(&path) {
                Ok(body) => {
                    let parsed = parse_shard_file(&body, seed, spec, cfg);
                    if parsed.is_none() {
                        warnings.push(format!(
                            "shard file {} ignored (schema/seed/geometry mismatch); \
                             its trials will be re-run",
                            path.display()
                        ));
                    }
                    parsed
                }
                Err(_) => {
                    warnings.push(format!(
                        "shard file {} missing; its trials will be re-run",
                        path.display()
                    ));
                    None
                }
            };
            paths.push(path);
            per_shard.push(parsed);
        }
        let mut points: BTreeMap<String, Vec<Option<ShardPointCheckpoint>>> = BTreeMap::new();
        for (index, shard_points) in per_shard.into_iter().enumerate() {
            let Some(shard_points) = shard_points else {
                continue;
            };
            for (key, cp) in shard_points {
                points
                    .entry(key)
                    .or_insert_with(|| vec![None; count as usize])[index] = Some(cp);
            }
        }
        (
            ShardMergeSource {
                count,
                paths,
                points,
            },
            warnings,
        )
    }

    /// The shard count this source merges.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Shard `shard`'s recorded hits inside window `window` of point
    /// `key`, if it got that far.
    pub fn hits(&self, key: &str, shard: u32, window: u64) -> Option<u64> {
        self.points
            .get(key)?
            .get(shard as usize)?
            .as_ref()?
            .batch_hits
            .get(usize::try_from(window).ok()?)
            .copied()
    }

    /// Deletes the shard checkpoint files (call after the merged final
    /// results are safely written).
    pub fn discard_files(&self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Whether the *unsharded* run has provably stopped at or before
/// `trials` global trials, given that this shard observed `own_hits`
/// failures over its `own_trials` indices below that boundary. The
/// global hit count lies in `[own_hits, own_hits + (trials −
/// own_trials)]`; the Wilson half-width is unimodal in the hit count
/// (maximal near `trials/2`), so checking the interval's endpoints plus
/// the clamped midpoint bounds the width over every consistent tally.
pub(crate) fn surely_stopped(rule: &StopRule, own_hits: u64, own_trials: u64, trials: u64) -> bool {
    debug_assert!(own_trials <= trials && own_hits <= own_trials);
    if trials >= rule.max_trials {
        return true;
    }
    if trials < rule.min_trials {
        return false;
    }
    let lo = own_hits;
    let hi = own_hits + (trials - own_trials);
    let mid = (trials / 2).clamp(lo, hi);
    [lo, mid, hi]
        .iter()
        .all(|&h| rule.half_width(&Proportion::from_counts(h, trials)) <= rule.target_half_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_and_validate() {
        let s: ShardSpec = "2/4".parse().unwrap();
        assert_eq!(s, ShardSpec { index: 2, count: 4 });
        assert_eq!(s.to_string(), "2/4");
        assert_eq!(s.file_name("e8"), "e8.shard-2-of-4.checkpoint.json");
        assert!("4/4".parse::<ShardSpec>().is_err(), "index must be < count");
        assert!("0/0".parse::<ShardSpec>().is_err(), "count must be ≥ 1");
        assert!("nope".parse::<ShardSpec>().is_err());
        assert!("1".parse::<ShardSpec>().is_err());
    }

    #[test]
    fn trials_in_matches_enumeration() {
        for count in 1..=5u32 {
            for index in 0..count {
                let spec = ShardSpec { index, count };
                for lo in 0..40u64 {
                    for hi in lo..40 {
                        let expect = (lo..hi).filter(|&i| spec.owns(i)).count() as u64;
                        assert_eq!(
                            spec.trials_in(lo, hi),
                            expect,
                            "shard {spec} over [{lo}, {hi})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shards_partition_every_index() {
        let count = 3u32;
        for idx in 0..100u64 {
            let owners = (0..count)
                .filter(|&i| ShardSpec { index: i, count }.owns(idx))
                .count();
            assert_eq!(owners, 1, "index {idx} must have exactly one owner");
        }
    }

    #[test]
    fn tmp_paths_are_unique_per_pid_and_seq() {
        let path = Path::new("/tmp/x/e8.checkpoint.json");
        let a = tmp_path_for(path, 100, 0);
        let b = tmp_path_for(path, 100, 1);
        let c = tmp_path_for(path, 101, 0);
        assert_ne!(a, b, "writes within a process must not share a tmp file");
        assert_ne!(a, c, "processes must not share a tmp file");
        assert!(a.to_string_lossy().contains("100"));
        // The tmp file stays inside the checkpoint's directory.
        assert_eq!(a.parent(), path.parent());
    }

    #[test]
    fn concurrent_stores_never_tear_the_file() {
        // Two stores aimed at one path (the two-process hazard, simulated
        // in-process: each store's writes use distinct tmp names via the
        // global sequence) hammer updates while a reader keeps parsing.
        // Every observed file must be a complete JSON document.
        let dir = std::env::temp_dir().join(format!("am_shard_race_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cp.checkpoint.json");
        let cfg = SweepConfig::fixed();
        let spec = ShardSpec { index: 0, count: 1 };
        let a = ShardCheckpointStore::create(&path, 7, spec, &cfg);
        let b = ShardCheckpointStore::create(&path, 7, spec, &cfg);
        std::thread::scope(|sc| {
            for store in [&a, &b] {
                sc.spawn(move || {
                    for i in 0..60u64 {
                        let cp = ShardPointCheckpoint {
                            batch_hits: vec![i; 8],
                            done: false,
                        };
                        store.update("pt", cp).unwrap();
                    }
                });
            }
            sc.spawn(|| {
                for _ in 0..120 {
                    if let Ok(body) = std::fs::read_to_string(&path) {
                        let v: Value = serde_json::from_str(&body)
                            .unwrap_or_else(|e| panic!("torn checkpoint read: {e}\n{body}"));
                        assert!(v.get("points").is_some());
                    }
                    std::thread::yield_now();
                }
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_store_resume_validates_identity() {
        let dir = std::env::temp_dir().join(format!("am_shard_ident_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let cfg = SweepConfig::adaptive(0.05);
        let spec = ShardSpec { index: 1, count: 4 };
        let path = dir.join(spec.file_name("e8"));
        let store = ShardCheckpointStore::create(&path, 3, spec, &cfg);
        store
            .update(
                "k",
                ShardPointCheckpoint {
                    batch_hits: vec![1, 0, 2],
                    done: true,
                },
            )
            .unwrap();

        let same = ShardCheckpointStore::resume(&path, 3, spec, &cfg);
        assert_eq!(same.lookup("k").unwrap().batch_hits, vec![1, 0, 2]);
        assert!(same.all_done());

        // Any identity mismatch must start fresh, not merge foreign data.
        let other_seed = ShardCheckpointStore::resume(&path, 4, spec, &cfg);
        assert!(other_seed.lookup("k").is_none(), "seed mismatch");
        let other_spec =
            ShardCheckpointStore::resume(&path, 3, ShardSpec { index: 2, count: 4 }, &cfg);
        assert!(other_spec.lookup("k").is_none(), "shard identity mismatch");
        let mut other_batch = cfg;
        other_batch.batch = 8;
        let other = ShardCheckpointStore::resume(&path, 3, spec, &other_batch);
        assert!(other.lookup("k").is_none(), "batch geometry mismatch");
        let other_mode = ShardCheckpointStore::resume(&path, 3, spec, &SweepConfig::fixed());
        assert!(other_mode.lookup("k").is_none(), "mode mismatch");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_source_reports_missing_shards() {
        let dir = std::env::temp_dir().join(format!("am_shard_merge_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        let cfg = SweepConfig::fixed();
        for index in [0u32, 2] {
            let spec = ShardSpec { index, count: 3 };
            let store = ShardCheckpointStore::create(dir.join(spec.file_name("e6")), 0, spec, &cfg);
            store
                .update(
                    "pt",
                    ShardPointCheckpoint {
                        batch_hits: vec![u64::from(index)],
                        done: true,
                    },
                )
                .unwrap();
        }
        let (src, warnings) = ShardMergeSource::load(&dir, "e6", 3, 0, &cfg);
        assert_eq!(
            warnings.len(),
            1,
            "exactly shard 1 is missing: {warnings:?}"
        );
        assert!(warnings[0].contains("shard-1-of-3"));
        assert_eq!(src.hits("pt", 0, 0), Some(0));
        assert_eq!(src.hits("pt", 1, 0), None, "missing shard has no data");
        assert_eq!(src.hits("pt", 2, 0), Some(2));
        assert_eq!(src.hits("pt", 0, 1), None, "beyond recorded windows");
        assert_eq!(src.hits("nope", 0, 0), None, "unknown point");
        src.discard_files();
        assert!(!dir.join("e6.shard-0-of-3.checkpoint.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn surely_stopped_is_sound_against_every_consistent_tally() {
        // Whenever the conservative check fires, the actual rule must
        // fire for every global tally consistent with the shard's view.
        let rule = StopRule::wilson95(0.05, 10_000);
        for trials in [0u64, 32, 64, 96, 200, 400, 800] {
            for own_trials in [0, trials / 4, trials / 2, trials] {
                for own_hits in [0, own_trials / 3, own_trials] {
                    if surely_stopped(&rule, own_hits, own_trials, trials) {
                        for h in own_hits..=own_hits + (trials - own_trials) {
                            assert!(
                                rule.check(&Proportion::from_counts(h, trials)).is_some(),
                                "claimed stop at {trials} but h={h} keeps sampling"
                            );
                        }
                    }
                }
            }
        }
        // And it must eventually fire: full knowledge at an easy point.
        assert!(surely_stopped(&rule, 0, 200, 200));
        // Budget exhaustion always fires.
        let tight = StopRule::wilson95(0.001, 64);
        assert!(surely_stopped(&tight, 10, 32, 64));
    }

    #[test]
    fn fixed_mode_shards_run_the_full_slice() {
        let cfg = SweepConfig::fixed();
        let rule = cfg.rule(100);
        assert!(!surely_stopped(&rule, 0, 25, 96), "fixed never stops early");
        assert!(surely_stopped(&rule, 0, 25, 100), "fixed stops at budget");
    }
}
