//! # am-protocols — Byzantine agreement with randomized memory access
//!
//! Section 5 of the paper: the three protocols that decide by "the sign of
//! the sum of the first k appends", under Poisson-gated append access.
//!
//! * [`timestamp`] — **Algorithm 4**: the absolute-timestamp baseline. A
//!   central authority stamps every append; the first `k` stamps order the
//!   decision. Best possible resilience in the model (Theorem 5.2).
//! * [`chain`] — **Algorithm 5**: append to the longest chain, break ties
//!   deterministically (first in memory, Theorem 5.3) or uniformly at
//!   random (Theorem 5.4). Adversaries: *fork-maker* (forks every correct
//!   tip and wins deterministic ties) and *tie-breaker* (extends the first
//!   correct append of each interval, orphaning the rest).
//! * [`dag`] — **Algorithm 6**: append referencing every tip; order the
//!   DAG along the longest/heaviest chain; decide on the first `k` values.
//!   Adversaries: *dissenter* (spends its fair token share on minority
//!   values) and *withhold-burst* (banks tokens and releases a private
//!   chain just before the decision — Lemma 5.5).
//! * [`bft`] — the finality layer (PR 7): the same token-gated DAG read
//!   as an embedded BFT protocol (`am-bft`), with per-node finality
//!   oracles and Byzantine strategies that target finality itself
//!   (equivocation, vote withholding, stale-parent mining).
//! * [`runner`] — parallel Monte-Carlo estimation of validity-failure
//!   rates and resilience thresholds (rayon fan-out, per-trial seeding).
//! * [`sweep`] — the adaptive sweep engine: batched trials with Wilson
//!   early stopping ([`am_stats::StopRule`]), per-point budgets, and
//!   crash-safe checkpoint/resume.
//! * [`shard`] — multi-process sweep sharding: interleaved trial slices,
//!   per-shard checkpoints, and the byte-identical merge the sweep
//!   engine's [`SweepRunner::sharded`]/[`SweepRunner::merging`] modes
//!   build on.
//!
//! ## Modelling notes (see DESIGN.md)
//!
//! * **Interval concurrency.** Synchronous nodes with bound Δ are modelled
//!   by interval snapshots: a correct append granted in interval `i` uses
//!   the memory state at the start of interval `i` — appends within one
//!   interval are mutually concurrent, exactly the fork-generating worst
//!   case of Theorem 5.4's analysis.
//! * **Token TTL.** Grants expire Δ after issue. Byzantine nodes may delay
//!   a grant within its lifetime (the "withhold … for a small period of
//!   time" of Lemma 5.5) but cannot hoard tokens indefinitely — the only
//!   reading of the access model under which the Lemma 5.5 burst bound
//!   (and hence DAG resilience 1/2) is actually true.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bft;
pub mod chain;
pub mod dag;
pub mod params;
pub mod propagation;
pub mod runner;
pub(crate) mod scratch;
pub mod shard;
pub mod sweep;
pub mod timestamp;
pub mod weak;

pub use bft::{run_bft, run_bft_net, run_bft_net_full, BftAdversary, BftNetRun, BftTrial};
pub use chain::{run_chain, ChainAdversary, ChainTrial, TieBreak};
pub use dag::{run_dag, DagAdversary, DagRule, DagTrial};
pub use params::{ParamError, Params, ParamsBuilder, ViewPolicy};
pub use propagation::{run_chain_net, run_dag_net, BlockMsg, Propagation};
pub use runner::{measure_failure_rate, resilience_threshold, trial_seed, TrialKind};
pub use shard::{ShardCheckpointStore, ShardMergeSource, ShardPointCheckpoint, ShardSpec};
pub use sweep::{
    CheckpointStore, PointCheckpoint, PointResult, SweepConfig, SweepMode, SweepRunner,
};
pub use timestamp::{run_timestamp, TimestampTrial};
pub use weak::{
    run_chain_staggered, run_dag_multinode, run_dag_staggered, MultiTrial, StaggeredTrial,
};
