//! Byzantine drivers for the embedded BFT finality layer (`am-bft`).
//!
//! The Section 5 runners decide a one-shot agreement; these runners keep
//! the same substrate — Poisson token grants, interval-snapshot views,
//! optional block gossip over `am-net` — but run it as a *finality*
//! protocol: every appended block doubles as a protocol message
//! (`parents[0]` is the author's vote), per-node
//! [`FinalityOracle`](am_bft::FinalityOracle)s interpret their own
//! admitted sub-DAG, and the trial succeeds once the finalized chain
//! reaches `k` blocks.
//!
//! Because the token schedule depends only on `(n, λ, Δ, byz, seed)`,
//! a BFT trial and an Algorithm 4/5/6 trial at the same [`Params`] run
//! under **byte-identical grant schedules** — E15's head-to-head
//! comparison is apples to apples.
//!
//! The Byzantine strategies target the finality layer specifically:
//!
//! * [`BftAdversary::Equivocator`] — alternates honest-looking votes
//!   with forks of its own history (two blocks sharing an
//!   (author, round) slot). Detection is sticky: once both blocks are
//!   visible the author is excluded from every later quorum, so beyond
//!   `n − quorum` equivocators the watermark stalls permanently.
//! * [`BftAdversary::Withholder`] — banks token grants (silence = no
//!   votes) and releases them in bursts, so finality advances in
//!   stutters; beyond `n − quorum` withholding authors it stalls.
//! * [`BftAdversary::StaleMiner`] — spends every grant immediately but
//!   votes from a 2Δ-stale view, diluting the freshness of quorums and
//!   stretching finality latency.

use crate::params::Params;
use am_bft::FinalityOracle;
use am_core::{IncrementalDag, MsgId, Time, GENESIS};
use am_net::{NetConfig, NetStats};
use am_poisson::{Grant, TokenAuthority};

/// The Byzantine strategy of a BFT finality trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BftAdversary {
    /// Tokens wasted (the fault-free baseline at `t > 0`).
    Absent,
    /// Alternate honest votes with same-round forks of own history.
    Equivocator,
    /// Bank grants and release vote bursts (temporary vote withholding).
    Withholder,
    /// Vote from a 2Δ-stale prefix (stale-parent mining).
    StaleMiner,
}

impl BftAdversary {
    /// Stable lowercase label for sweep keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BftAdversary::Absent => "absent",
            BftAdversary::Equivocator => "equivocator",
            BftAdversary::Withholder => "withholder",
            BftAdversary::StaleMiner => "staleminer",
        }
    }
}

/// Outcome of one BFT finality trial (observer: node 0, always correct).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BftTrial {
    /// Whether the finalized chain reached `k` within the grant budget
    /// without a detected safety conflict.
    pub finality: bool,
    /// Finalized chain height at the gate.
    pub finalized_height: usize,
    /// Blocks in the finalized past cone (the finalized DAG *prefix*).
    pub finalized_cone: usize,
    /// Total blocks appended (genesis excluded).
    pub total_appends: usize,
    /// Mean finality lag over finalized chain blocks, seconds (append →
    /// observer finalization).
    pub lag_mean: f64,
    /// Max finality lag, seconds.
    pub lag_max: f64,
    /// Finalized chain blocks per simulated second.
    pub throughput: f64,
    /// Authors the observer caught equivocating.
    pub equivocators: usize,
    /// Whether the observer detected a quorum behind a conflicting
    /// candidate (safety breach; only reachable past the tolerance).
    pub conflict: bool,
    /// Simulated time at the gate.
    pub finish_time: f64,
    /// The observer's finalized-prefix digest at the gate.
    pub finalized_digest: u64,
    /// Role mix over the observer's view: (proposals, votes, echoes) —
    /// the DAG interpreter's reading of the same blocks.
    pub roles: (usize, usize, usize),
}

/// Full outcome of a networked BFT trial, with per-node finality state
/// for the cross-node agreement suites.
#[derive(Clone, Debug)]
pub struct BftNetRun {
    /// Node 0's view of the trial (the [`BftTrial`] scalar summary).
    pub trial: BftTrial,
    /// Network statistics.
    pub stats: NetStats,
    /// Per-node finalized chains at the decision gate — nodes lag each
    /// other here, but the chains must be pairwise extension-ordered.
    pub chains_at_gate: Vec<Vec<MsgId>>,
    /// Per-node finalized chains after every surviving in-flight block
    /// was delivered (dropped blocks stay lost).
    pub chains_settled: Vec<Vec<MsgId>>,
    /// Per-node finalized chains after an omniscient heal: every node
    /// fed every block it never received. Correct nodes must agree
    /// exactly here (same block set → same verdicts).
    pub chains_healed: Vec<Vec<MsgId>>,
    /// Per-node finalized-prefix digests after the heal.
    pub digests_healed: Vec<u64>,
    /// Whether any correct node's oracle flagged a conflict.
    pub conflict_any: bool,
}

/// Running lag aggregate for newly finalized chain blocks.
#[derive(Default)]
struct LagTally {
    sum: f64,
    max: f64,
    count: usize,
    drain: Vec<MsgId>,
}

impl LagTally {
    fn absorb(&mut self, oracle: &mut FinalityOracle, append_time: &[f64], now: f64) {
        self.drain.clear();
        oracle.drain_newly_final(&mut self.drain);
        for id in &self.drain {
            let lag = now - append_time[id.index()];
            self.sum += lag;
            self.max = self.max.max(lag);
            self.count += 1;
        }
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The honest vote: the deepest candidate whose chain extends the
/// voter's own finalized prefix (never abandon finality), falling back
/// to the finalized head itself. `deepest` is sorted ascending, so ties
/// break to the smallest id.
fn pick_vote(oracle: &FinalityOracle, deepest: &[MsgId]) -> MsgId {
    deepest
        .iter()
        .copied()
        .find(|&d| oracle.extends_finalized(d))
        .unwrap_or_else(|| oracle.finalized_head())
}

/// Grant budget: finality stalls are an expected outcome past the
/// tolerance, so the cap is tighter than the one-shot runners'.
fn grant_budget(p: &Params) -> usize {
    2_000 + 200 * p.k * (p.n + 1)
}

/// Withholder burst threshold: release once the bank can visibly move a
/// quorum (at least the Byzantine cohort size, floor 2).
fn burst_threshold(p: &Params) -> usize {
    p.t.max(2)
}

/// Feeds one node's oracle the blocks it just admitted. Correct nodes'
/// admission logs are ancestor-closed, but an omniscient Byzantine
/// author sees its own block instantly even when it hasn't received the
/// block's parents yet — those go to `deferred` and are observed once
/// the missing parents arrive (or never, if the parents were dropped;
/// the heal phase covers them).
fn feed_node(
    oracle: &mut FinalityOracle,
    deferred: &mut Vec<MsgId>,
    prop: &crate::propagation::Propagation,
    authors: &[u32],
    admitted: &[MsgId],
) {
    for &id in admitted {
        if !prop.parents_of(id).iter().all(|p| oracle.is_observed(*p)) {
            deferred.push(id);
            continue;
        }
        oracle.observe(id, authors[id.index()] as usize, prop.parents_of(id));
        let mut progress = true;
        while progress {
            progress = false;
            let mut i = 0;
            while i < deferred.len() {
                let d = deferred[i];
                if prop.parents_of(d).iter().all(|p| oracle.is_observed(*p)) {
                    oracle.observe(d, authors[d.index()] as usize, prop.parents_of(d));
                    deferred.remove(i);
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Runs one abstract-view BFT finality trial: a single shared DAG, a
/// global observer oracle, interval-snapshot views (the same view model
/// as [`run_dag`](crate::run_dag), and the same token schedule at equal
/// [`Params`]).
///
/// ```
/// use am_protocols::{run_bft, BftAdversary, Params};
/// let p = Params::new(8, 0, 0.5, 9, 7);
/// let out = run_bft(&p, BftAdversary::Absent);
/// assert!(out.finality && out.finalized_height >= p.k);
/// ```
pub fn run_bft(p: &Params, adv: BftAdversary) -> BftTrial {
    let _span = am_obs::span("protocols/bft");
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);
    let mut inc = IncrementalDag::new();
    let mut oracle = FinalityOracle::new(p.n);
    let mut append_time: Vec<f64> = vec![0.0];
    let mut lag = LagTally::default();

    let mut boundary_len = 1usize;
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let mut eq_cnt = vec![0u64; p.n];
    // A node always knows its own history: every non-equivocating append
    // carries the author's previous block as a parent, so a snapshot view
    // that lags the author's own last block cannot force a round
    // collision (self-equivocation).
    let mut last_own: Vec<MsgId> = vec![GENESIS; p.n];
    let mut parents_buf: Vec<MsgId> = Vec::new();
    let mut now = Time::ZERO;

    let ttl = p.token_ttl * p.delta;
    let max_grants = grant_budget(p);
    let mut grants = 0usize;

    macro_rules! append {
        ($node:expr, $parents:expr, $at:expr) => {{
            let id = MsgId(inc.len() as u64);
            inc.on_append(id, $parents, $at);
            append_time.push($at.seconds());
            oracle.observe(id, $node, $parents);
            lag.absorb(&mut oracle, &append_time, $at.seconds());
            last_own[$node] = id;
            id
        }};
    }

    while oracle.finalized_height() < p.k && !oracle.conflict_detected() {
        grants += 1;
        if grants > max_grants {
            am_obs::event(
                "protocols/bft_stalled",
                0,
                (now.seconds() * 1e9) as u64,
                || {
                    format!(
                        "k {} finalized {} after {grants} grants",
                        p.k,
                        oracle.finalized_height()
                    )
                },
            );
            break;
        }
        let g = auth.next_grant();
        now = g.time;
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = inc.len();
        }
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());

        if auth.is_byz(g.node) {
            match adv {
                BftAdversary::Absent => {}
                BftAdversary::Equivocator => {
                    let node = g.node.index();
                    eq_cnt[node] += 1;
                    if eq_cnt[node] % 2 == 1 {
                        // Honest-looking vote on the current view.
                        let deepest = inc.deepest_in_prefix(inc.len());
                        let sel = pick_vote(&oracle, &deepest);
                        parents_buf.clear();
                        parents_buf.push(sel);
                        append!(node, &parents_buf, g.time);
                    } else {
                        // Fork own history from genesis: the round-1
                        // collision brands the author an equivocator.
                        parents_buf.clear();
                        parents_buf.push(GENESIS);
                        append!(node, &parents_buf, g.time);
                    }
                }
                BftAdversary::Withholder => {
                    banked.push(g);
                    if banked.len() >= burst_threshold(p) {
                        let mut tip = inc.deepest();
                        for tok in banked.drain(..) {
                            let node = tok.node.index();
                            parents_buf.clear();
                            parents_buf.push(tip);
                            let own = last_own[node];
                            if own != tip && own != GENESIS {
                                parents_buf.push(own);
                            }
                            tip = append!(node, &parents_buf, g.time);
                        }
                    }
                }
                BftAdversary::StaleMiner => {
                    let stale = inc.prefix_at_time(Time::new(g.time.seconds() - 2.0 * p.delta));
                    let deepest = inc.deepest_in_prefix(stale);
                    let sel = deepest[0];
                    let node = g.node.index();
                    let own = last_own[node];
                    parents_buf.clear();
                    parents_buf.push(sel);
                    if own != sel && own != GENESIS {
                        parents_buf.push(own);
                    }
                    inc.tips_of_prefix(stale)
                        .into_iter()
                        .filter(|&t| t != sel && t != own)
                        .for_each(|t| parents_buf.push(t));
                    append!(node, &parents_buf, g.time);
                }
            }
            continue;
        }

        // Correct append: vote for the deepest block of the view that
        // extends the finalized prefix, referencing every view tip plus
        // the author's own last block (self-parent).
        let prefix = boundary_len.min(inc.len());
        let deepest = inc.deepest_in_prefix(prefix);
        let sel = pick_vote(&oracle, &deepest);
        let node = g.node.index();
        let own = last_own[node];
        parents_buf.clear();
        parents_buf.push(sel);
        if own != sel && own != GENESIS {
            parents_buf.push(own);
        }
        inc.tips_of_prefix(prefix)
            .into_iter()
            .filter(|&t| t != sel && t != own)
            .for_each(|t| parents_buf.push(t));
        append!(node, &parents_buf, g.time);
    }

    crate::scratch::put_banked(banked);
    finish(p, &oracle, inc.len() - 1, &lag, now.seconds())
}

fn finish(
    p: &Params,
    oracle: &FinalityOracle,
    total_appends: usize,
    lag: &LagTally,
    finish_time: f64,
) -> BftTrial {
    let finalized_height = oracle.finalized_height();
    BftTrial {
        finality: finalized_height >= p.k && !oracle.conflict_detected(),
        finalized_height,
        finalized_cone: oracle.finalized_cone_blocks(),
        total_appends,
        lag_mean: lag.mean(),
        lag_max: lag.max,
        throughput: if finish_time > 0.0 {
            finalized_height as f64 / finish_time
        } else {
            0.0
        },
        equivocators: oracle.equivocator_count(),
        conflict: oracle.conflict_detected(),
        finish_time,
        finalized_digest: oracle.finalized_digest(),
        roles: oracle.role_counts(),
    }
}

/// Runs one networked BFT finality trial: blocks gossip over `cfg`,
/// each node runs its *own* oracle over exactly the sub-DAG it admitted
/// (in admission order), and the gate requires every correct node's
/// finalized chain to reach `k`. Correct nodes pull-repair dangling
/// references ([`Propagation::pull_missing_parents`]) at each grant, so
/// dropped announcements delay finality instead of starving it forever.
/// Returns the scalar summary and the network stats; see
/// [`run_bft_net_full`] for per-node chains.
pub fn run_bft_net(p: &Params, adv: BftAdversary, cfg: &NetConfig) -> (BftTrial, NetStats) {
    let run = run_bft_net_full(p, adv, cfg);
    (run.trial, run.stats)
}

/// [`run_bft_net`] with the per-node finality state exposed (gate /
/// settled / healed chains) for the agreement property suites.
pub fn run_bft_net_full(p: &Params, adv: BftAdversary, cfg: &NetConfig) -> BftNetRun {
    let _span = am_obs::span("protocols/bft_net");
    let mut prop = crate::propagation::Propagation::with_scratch(
        p.n,
        cfg,
        p.seed ^ 0x6e57_c0de,
        crate::scratch::take_net(),
    );
    prop.set_track_admitted(true);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);
    let mut inc = IncrementalDag::new();
    let mut oracles: Vec<FinalityOracle> = (0..p.n).map(|_| FinalityOracle::new(p.n)).collect();
    let mut authors: Vec<u32> = vec![u32::MAX];
    let mut append_time: Vec<f64> = vec![0.0];
    let mut lag = LagTally::default();
    let correct = p.n - p.t;

    let mut banked: Vec<Grant> = crate::scratch::take_banked();
    let mut eq_cnt = vec![0u64; p.n];
    // Self-parent bookkeeping for the omniscient strategies (correct
    // appends are safe without it: a node's own blocks are always in its
    // visible set, so its tips already cover its history).
    let mut last_own: Vec<MsgId> = vec![GENESIS; p.n];
    let mut parents_buf: Vec<MsgId> = Vec::new();
    let mut admitted_buf: Vec<MsgId> = Vec::new();
    let mut now = Time::ZERO;

    let ttl = p.token_ttl * p.delta;
    let max_grants = grant_budget(p);
    let mut grants = 0usize;

    let mut deferred: Vec<Vec<MsgId>> = vec![Vec::new(); p.n];

    // Feeds each node's oracle the blocks it admitted since last time;
    // node 0 is the latency observer.
    macro_rules! feed {
        ($at:expr) => {
            for node in 0..p.n {
                admitted_buf.clear();
                prop.drain_admitted(node, &mut admitted_buf);
                feed_node(
                    &mut oracles[node],
                    &mut deferred[node],
                    &prop,
                    &authors,
                    &admitted_buf,
                );
                if node == 0 {
                    lag.absorb(&mut oracles[0], &append_time, $at.seconds());
                }
            }
        };
    }

    macro_rules! append {
        ($node:expr, $parents:expr, $at:expr) => {{
            let id = MsgId(inc.len() as u64);
            inc.on_append(id, $parents, $at);
            authors.push($node as u32);
            append_time.push($at.seconds());
            prop.on_append($node, id, $parents, $at);
            last_own[$node] = id;
            id
        }};
    }

    loop {
        let min_final = (0..correct)
            .map(|i| oracles[i].finalized_height())
            .min()
            .unwrap_or(0);
        let conflict = (0..correct).any(|i| oracles[i].conflict_detected());
        if min_final >= p.k || conflict {
            break;
        }
        grants += 1;
        if grants > max_grants {
            am_obs::event(
                "protocols/bft_stalled",
                0,
                (now.seconds() * 1e9) as u64,
                || format!("k {} min finalized {min_final} after {grants} grants", p.k),
            );
            break;
        }
        let g = auth.next_grant();
        now = g.time;
        prop.advance_to(g.time);
        feed!(g.time);
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());

        if auth.is_byz(g.node) {
            match adv {
                BftAdversary::Absent => {}
                BftAdversary::Equivocator => {
                    let node = g.node.index();
                    eq_cnt[node] += 1;
                    if eq_cnt[node] % 2 == 1 {
                        let sel = prop.deepest_visible(node)[0];
                        parents_buf.clear();
                        parents_buf.push(sel);
                        append!(node, &parents_buf, g.time);
                    } else {
                        parents_buf.clear();
                        parents_buf.push(GENESIS);
                        append!(node, &parents_buf, g.time);
                    }
                }
                BftAdversary::Withholder => {
                    banked.push(g);
                    if banked.len() >= burst_threshold(p) {
                        let mut tip = inc.deepest();
                        for tok in banked.drain(..) {
                            let node = tok.node.index();
                            parents_buf.clear();
                            parents_buf.push(tip);
                            let own = last_own[node];
                            if own != tip && own != GENESIS {
                                parents_buf.push(own);
                            }
                            tip = append!(node, &parents_buf, g.time);
                        }
                    }
                }
                BftAdversary::StaleMiner => {
                    let stale = inc.prefix_at_time(Time::new(g.time.seconds() - 2.0 * p.delta));
                    let deepest = inc.deepest_in_prefix(stale);
                    let sel = deepest[0];
                    let node = g.node.index();
                    let own = last_own[node];
                    parents_buf.clear();
                    parents_buf.push(sel);
                    if own != sel && own != GENESIS {
                        parents_buf.push(own);
                    }
                    inc.tips_of_prefix(stale)
                        .into_iter()
                        .filter(|&t| t != sel && t != own)
                        .for_each(|t| parents_buf.push(t));
                    append!(node, &parents_buf, g.time);
                }
            }
            // The author sees its own block instantly; fold it into its
            // oracle right away so its next vote builds on it.
            feed!(g.time);
            continue;
        }

        // Correct append: vote for the deepest *arrived* block that
        // extends this node's own finalized prefix; reference every
        // arrived tip. First repair dangling references — without the
        // pull, one dropped announcement would starve the node's cone
        // (and therefore every quorum) forever.
        let node = g.node.index();
        prop.pull_missing_parents(node);
        let sel = pick_vote(&oracles[node], prop.deepest_visible(node));
        parents_buf.clear();
        parents_buf.push(sel);
        prop.visible_tips(node)
            .iter()
            .copied()
            .filter(|&t| t != sel)
            .for_each(|t| parents_buf.push(t));
        append!(node, &parents_buf, g.time);
        feed!(g.time);
    }

    let total_appends = inc.len() - 1;
    let finish_time = now.seconds();
    let chains_at_gate: Vec<Vec<MsgId>> = oracles.iter().map(|o| o.finalized_chain()).collect();

    // Deliver everything still in flight (dropped blocks stay lost).
    prop.settle();
    feed!(now);
    let chains_settled: Vec<Vec<MsgId>> = oracles.iter().map(|o| o.finalized_chain()).collect();

    // Omniscient heal: feed every oracle the blocks it never received,
    // in global id order (ancestor-closed by construction).
    for oracle in oracles.iter_mut().take(p.n) {
        for (idx, &author) in authors.iter().enumerate().take(inc.len()).skip(1) {
            let id = MsgId(idx as u64);
            if !oracle.is_observed(id) {
                oracle.observe(id, author as usize, prop.parents_of(id));
            }
        }
    }
    let chains_healed: Vec<Vec<MsgId>> = oracles.iter().map(|o| o.finalized_chain()).collect();
    let digests_healed: Vec<u64> = oracles.iter().map(|o| o.finalized_digest()).collect();
    let conflict_any = oracles[..correct].iter().any(|o| o.conflict_detected());

    let trial = finish(p, &oracles[0], total_appends, &lag, finish_time);
    crate::scratch::put_banked(banked);
    let stats = prop.stats().clone();
    crate::scratch::put_net(prop.into_scratch());
    BftNetRun {
        trial,
        stats,
        chains_at_gate,
        chains_settled,
        chains_healed,
        digests_healed,
        conflict_any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_net::{LatencyModel, NetProfile};

    fn fast() -> NetConfig {
        NetProfile::ideal(LatencyModel::Constant(10_000_000)).into()
    }

    fn fast_drop(prob: f64) -> NetConfig {
        NetProfile::ideal(LatencyModel::Constant(10_000_000))
            .with_drop(prob)
            .into()
    }

    /// Pairwise extension-order check over finalized chains.
    fn prefix_ordered(chains: &[Vec<MsgId>]) -> bool {
        for a in chains {
            for b in chains {
                let m = a.len().min(b.len());
                if a[..m] != b[..m] {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn fault_free_reaches_finality() {
        for seed in 0..8 {
            let p = Params::new(7, 0, 0.5, 9, seed);
            let out = run_bft(&p, BftAdversary::Absent);
            assert!(out.finality, "seed {seed}: {out:?}");
            assert!(out.finalized_height >= p.k);
            assert!(out.finalized_cone >= out.finalized_height);
            assert!(out.lag_mean > 0.0 && out.lag_max >= out.lag_mean);
            assert!(!out.conflict);
            assert_eq!(out.equivocators, 0);
        }
    }

    #[test]
    fn equivocators_within_tolerance_are_survived() {
        // n = 8, quorum 6: one equivocator leaves 7 ≥ 6 voters.
        let mut finals = 0;
        for seed in 0..6 {
            let p = Params::new(8, 1, 0.5, 9, seed);
            let out = run_bft(&p, BftAdversary::Equivocator);
            assert!(!out.conflict, "seed {seed}");
            if out.finality {
                finals += 1;
                assert!(out.equivocators >= 1, "the fork must be caught");
            }
        }
        assert!(finals >= 4, "tolerated equivocation must mostly finalize");
    }

    #[test]
    fn equivocators_beyond_tolerance_stall_without_forking() {
        // n = 9, quorum 7: three equivocators leave 6 < 7 voters.
        for seed in 0..4 {
            let p = Params::new(9, 3, 0.5, 9, seed);
            let out = run_bft(&p, BftAdversary::Equivocator);
            assert!(!out.finality, "seed {seed}: must stall, got {out:?}");
            assert!(!out.conflict, "stall, never fork");
        }
    }

    #[test]
    fn withholder_stutters_but_finalizes_within_tolerance() {
        let mut ok = 0;
        for seed in 0..6 {
            let p = Params::new(8, 2, 0.5, 9, seed);
            let out = run_bft(&p, BftAdversary::Withholder);
            if out.finality {
                ok += 1;
            }
        }
        assert!(ok >= 4, "bursty votes still finalize, got {ok}/6");
    }

    #[test]
    fn stale_miner_slows_but_rarely_stops_finality() {
        let mut ok = 0;
        for seed in 0..6 {
            let p = Params::new(8, 2, 0.5, 9, seed);
            let out = run_bft(&p, BftAdversary::StaleMiner);
            if out.finality {
                ok += 1;
            }
        }
        assert!(ok >= 4, "stale votes still support the chain, got {ok}/6");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Params::new(8, 2, 0.5, 9, 42);
        for adv in [
            BftAdversary::Absent,
            BftAdversary::Equivocator,
            BftAdversary::Withholder,
            BftAdversary::StaleMiner,
        ] {
            assert_eq!(run_bft(&p, adv), run_bft(&p, adv), "{adv:?}");
        }
        let (a, sa) = run_bft_net(&p, BftAdversary::Withholder, &fast());
        let (b, sb) = run_bft_net(&p, BftAdversary::Withholder, &fast());
        assert_eq!(a, b);
        assert_eq!(sa.trace(), sb.trace());
    }

    #[test]
    fn net_trial_finalizes_and_agrees_on_ideal_network() {
        for seed in 0..4 {
            let p = Params::new(7, 0, 0.5, 9, seed);
            let run = run_bft_net_full(&p, BftAdversary::Absent, &fast());
            assert!(run.trial.finality, "seed {seed}");
            assert!(prefix_ordered(&run.chains_at_gate), "seed {seed}");
            assert!(!run.conflict_any);
            // After the heal every node saw every block: exact agreement.
            assert!(run.chains_healed.windows(2).all(|w| w[0] == w[1]));
            assert!(run.digests_healed.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn net_trial_survives_drops_with_ordered_prefixes() {
        let mut ok = 0;
        for seed in 0..4 {
            let p = Params::new(7, 0, 0.5, 9, seed);
            let run = run_bft_net_full(&p, BftAdversary::Absent, &fast_drop(0.2));
            assert!(
                prefix_ordered(&run.chains_at_gate),
                "seed {seed}: finalized chains must be extension-ordered"
            );
            assert!(prefix_ordered(&run.chains_settled), "seed {seed}");
            assert!(!run.conflict_any, "seed {seed}");
            ok += run.trial.finality as u32;
        }
        assert!(
            ok >= 3,
            "pull repair must recover dropped announcements, got {ok}/4"
        );
    }
}
