//! Algorithm 5: Byzantine agreement with chains.
//!
//! Correct nodes append to the last state of the longest chain in their
//! view; ties between several longest chains are broken deterministically
//! ("the first longest chain in the memory", the Theorem 5.3 rule from
//! Garay et al.) or uniformly at random (the Theorem 5.4 rule from Ren).
//! The decision is the sign of the sum of the first `k` appends in the
//! longest chain.
//!
//! Adversaries implemented (both from the paper's proofs):
//!
//! * [`ChainAdversary::ForkMaker`] — Theorem 5.3: "every append to the
//!   memory from a Byzantine node will cause a fork …, i.e. it will append
//!   its value to the same append as the last correct node, thus producing
//!   two longest chains", positioned to win the deterministic tie. The
//!   chain then carries `t/(n−t)` Byzantine blocks — half at `t = n/3`.
//! * [`ChainAdversary::TieBreaker`] — Theorem 5.4: "append its value
//!   simultaneously to the first correct append in the longest chain, and
//!   thereby prolong the chain by one additional append", orphaning every
//!   other correct append of the interval. Needs one token per interval,
//!   i.e. succeeds once `λt ≥ 1 ⇔ t/n ≥ 1/(1+λ(n−t))`.

use crate::params::{Params, ViewPolicy};
use am_core::{AppendMemory, IncrementalDag, MessageBuilder, MsgId, NodeId, Sign, Value};
use am_poisson::{Grant, TokenAuthority};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Tie-breaking rule for Algorithm 5 line 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Choose the first longest chain in the memory (smallest id) \[9\].
    Deterministic,
    /// Choose uniformly at random among the longest chains \[21\].
    Randomized,
}

/// The Byzantine strategy of a chain trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainAdversary {
    /// Tokens are wasted (crash-like baseline).
    Absent,
    /// Spend tokens honestly on `−1` blocks extending the longest chain.
    Dissenter,
    /// The Theorem 5.3 fork strategy against deterministic tie-breaking.
    ForkMaker,
    /// The Theorem 5.4 interval tie-break strategy.
    TieBreaker,
}

/// Outcome of one Algorithm 5 trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainTrial {
    /// The common decision (`None` on a tie).
    pub decision: Option<Sign>,
    /// Whether validity held (all correct inputs `+1` ⇒ must decide `+1`).
    pub validity: bool,
    /// Byzantine blocks among the first `k` of the decided chain.
    pub byz_in_prefix: usize,
    /// Final canonical chain length in blocks (genesis excluded).
    pub chain_len: usize,
    /// Total appends in the memory (genesis excluded).
    pub total_appends: usize,
    /// Correct appends that did not make the canonical chain.
    pub orphaned_correct: usize,
    /// Simulated time at which the decision condition was met.
    pub finish_time: f64,
}

/// State tracked incrementally during a trial (shared with the staggered
/// runner in [`crate::weak`]).
pub(crate) struct ChainSim {
    pub(crate) mem: AppendMemory,
    /// Incremental depth / tips / arrival bookkeeping.
    pub(crate) inc: IncrementalDag,
    /// Authors flagged Byzantine.
    pub(crate) byz_author: Vec<bool>,
}

impl ChainSim {
    pub(crate) fn new(p: &Params) -> ChainSim {
        let mut byz_author = vec![false; p.n];
        for b in p.byz_nodes() {
            byz_author[b.index()] = true;
        }
        ChainSim {
            mem: AppendMemory::new(p.n),
            inc: IncrementalDag::new(),
            byz_author,
        }
    }

    /// Appends a single-parent block, maintaining the incremental index.
    pub(crate) fn append(
        &mut self,
        node: NodeId,
        value: Value,
        parent: MsgId,
        time: am_core::Time,
    ) -> MsgId {
        let id = self
            .mem
            .append_at(MessageBuilder::new(node, value).parent(parent), time)
            .expect("chain append is valid");
        self.inc.on_append(id, &[parent], time);
        id
    }

    /// Deepest block ids within the first `prefix` messages.
    pub(crate) fn deepest_in_prefix(&self, prefix: usize) -> Vec<MsgId> {
        self.inc.deepest_in_prefix(prefix)
    }

    pub(crate) fn max_depth(&self) -> u32 {
        self.inc.max_depth()
    }
}

/// Runs one trial of Algorithm 5.
///
/// ```
/// use am_protocols::{run_chain, ChainAdversary, Params, TieBreak};
/// let p = Params::new(8, 2, 0.3, 15, 7);
/// let out = run_chain(&p, TieBreak::Randomized, ChainAdversary::TieBreaker);
/// assert!(out.chain_len >= p.k);
/// ```
pub fn run_chain(p: &Params, tie: TieBreak, adv: ChainAdversary) -> ChainTrial {
    let mut sim = ChainSim::new(p);
    let mut auth = TokenAuthority::new(p.n, p.lambda, p.delta, &p.byz_nodes(), p.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(p.seed ^ 0x5eed5eed5eed5eed);

    let mut boundary_len = 1usize; // memory length at the interval start
    let mut cur_interval = 0u64;
    let mut banked: Vec<Grant> = Vec::new();
    // ForkMaker: tips already forked (one Byzantine sibling is enough).
    let mut forked: HashSet<MsgId> = HashSet::new();
    // TieBreaker: whether this interval's first correct append was hit.
    let mut hit_this_interval = false;
    let mut correct_appends = 0usize;

    let ttl = p.token_ttl * p.delta;
    let max_grants = 10_000 + 400 * p.k * (p.n + 1);
    let mut grants = 0usize;

    while (sim.max_depth() as usize) < p.k {
        grants += 1;
        if grants > max_grants {
            break; // safety valve; decision stays a failure
        }
        let g = auth.next_grant();
        let interval = (g.time.seconds() / p.delta) as u64;
        if interval != cur_interval {
            cur_interval = interval;
            boundary_len = sim.mem.len();
            hit_this_interval = false;
        }
        // Expire stale banked tokens.
        banked.retain(|b| b.time.seconds() + ttl >= g.time.seconds());

        // Correct view prefix under the configured policy.
        let view_prefix = match p.view_policy {
            ViewPolicy::IntervalSnapshot => boundary_len,
            ViewPolicy::LaggedDelta => self_prefix_lagged(&sim, g.time, p.delta),
        };

        if auth.is_byz(g.node) {
            match adv {
                ChainAdversary::Absent => {}
                ChainAdversary::Dissenter => {
                    // Honest-structure, minority-value block on the real tip.
                    let tips = sim.deepest_in_prefix(sim.mem.len());
                    let tip = tips[0];
                    sim.append(g.node, Value::minus(), tip, g.time);
                }
                ChainAdversary::ForkMaker | ChainAdversary::TieBreaker => banked.push(g),
            }
            continue;
        }

        // --- Correct append: view per the configured lag policy. ---
        let tips = sim.deepest_in_prefix(view_prefix);
        let tip = match tie {
            TieBreak::Deterministic => tips[0],
            TieBreak::Randomized => tips[rng.gen_range(0..tips.len())],
        };

        // ForkMaker preemption: place a Byzantine sibling *before* the
        // correct block so it wins the deterministic (first-in-memory) tie.
        if adv == ChainAdversary::ForkMaker && !forked.contains(&tip) {
            if let Some(tok) = banked.pop() {
                sim.append(tok.node, Value::minus(), tip, g.time);
                forked.insert(tip);
            }
        }

        let correct_block = sim.append(g.node, Value::plus(), tip, g.time);
        correct_appends += 1;

        // TieBreaker: ride the first correct append of the interval,
        // spending every banked token as a private chain on top of it —
        // all later correct appends of the interval extend an "outdated"
        // state and are orphaned.
        if adv == ChainAdversary::TieBreaker && !hit_this_interval && !banked.is_empty() {
            let mut tip = correct_block;
            for tok in banked.drain(..) {
                tip = sim.append(tok.node, Value::minus(), tip, g.time);
            }
            hit_this_interval = true;
        }
    }

    decide(p, &sim, correct_appends)
}

/// Prefix visible to a node whose view lags the memory by Δ.
fn self_prefix_lagged(sim: &ChainSim, now: am_core::Time, delta: f64) -> usize {
    sim.inc
        .prefix_at_time(am_core::Time::new(now.seconds() - delta))
}

/// The common decision: all nodes read the same final memory, select the
/// first longest chain, and take the sign of the sum of its first `k`
/// appends (Algorithm 5 lines 8–10). Shared with the network-propagated
/// runner in [`crate::propagation`].
pub(crate) fn decide(p: &Params, sim: &ChainSim, correct_appends: usize) -> ChainTrial {
    // Canonical chain: walk back from the smallest-id deepest tip.
    let tips = sim.deepest_in_prefix(sim.mem.len());
    let tip = tips[0];
    let view = sim.mem.read();
    let mut chain: Vec<MsgId> = Vec::with_capacity(sim.inc.depth_of(tip) as usize + 1);
    let mut cur = tip;
    loop {
        chain.push(cur);
        let m = view.get(cur).expect("chain id in view");
        match m.parents.first() {
            Some(&parent) => cur = parent,
            None => break,
        }
    }
    chain.reverse(); // genesis first

    let mut sum = 0i64;
    let mut byz_in_prefix = 0usize;
    let mut chain_correct = 0usize;
    for (i, id) in chain.iter().skip(1).enumerate() {
        let m = view.get(*id).unwrap();
        let is_byz = m.author.map(|a| sim.byz_author[a.index()]).unwrap_or(false);
        if i < p.k {
            sum += m.value.spin_contribution();
            if is_byz {
                byz_in_prefix += 1;
            }
        }
        if !is_byz {
            chain_correct += 1;
        }
    }
    let decision = Sign::of_sum(sum);
    ChainTrial {
        decision,
        validity: decision == Some(Sign::Plus),
        byz_in_prefix,
        chain_len: chain.len() - 1,
        total_appends: view.append_count(),
        orphaned_correct: correct_appends.saturating_sub(chain_correct),
        finish_time: sim.mem.now().seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_rate(p0: Params, tie: TieBreak, adv: ChainAdversary, trials: u64) -> f64 {
        let fails = (0..trials)
            .filter(|&s| !run_chain(&p0.with_seed(s), tie, adv).validity)
            .count();
        fails as f64 / trials as f64
    }

    #[test]
    fn no_adversary_decides_plus() {
        for seed in 0..10 {
            let p = Params::new(8, 2, 0.5, 15, seed);
            let out = run_chain(&p, TieBreak::Randomized, ChainAdversary::Absent);
            assert_eq!(out.decision, Some(Sign::Plus), "seed {seed}");
            assert!(out.validity);
            assert_eq!(out.byz_in_prefix, 0);
            assert!(out.chain_len >= p.k);
        }
    }

    #[test]
    fn forks_orphan_correct_appends_at_high_rate() {
        // λ(n−t) ≫ 1: many concurrent correct appends per interval, most
        // orphaned.
        let p = Params::new(16, 0, 1.0, 25, 3); // correct rate 16
        let out = run_chain(&p, TieBreak::Randomized, ChainAdversary::Absent);
        assert!(
            out.orphaned_correct > out.chain_len,
            "high rate must orphan heavily: orphaned {} chain {}",
            out.orphaned_correct,
            out.chain_len
        );
    }

    #[test]
    fn low_rate_produces_clean_chain() {
        // λ(n−t) ≪ 1: roughly one append per interval, few orphans.
        let p = Params::new(8, 0, 0.02, 21, 5); // correct rate 0.16
        let out = run_chain(&p, TieBreak::Randomized, ChainAdversary::Absent);
        assert!(
            (out.orphaned_correct as f64) < 0.2 * out.total_appends as f64,
            "orphaned {} of {}",
            out.orphaned_correct,
            out.total_appends
        );
    }

    #[test]
    fn forkmaker_beats_deterministic_at_one_third() {
        // Theorem 5.3: t/n ≥ 1/3 breaks the deterministic rule.
        let p = Params::new(9, 3, 0.5, 31, 0); // t/n = 1/3
        let rate = failure_rate(p, TieBreak::Deterministic, ChainAdversary::ForkMaker, 60);
        assert!(
            rate > 0.4,
            "fork-maker at t=n/3 must flip/tie often, rate {rate}"
        );
        // Byzantine chain share ≈ 1/2.
        let out = run_chain(&p, TieBreak::Deterministic, ChainAdversary::ForkMaker);
        let share = out.byz_in_prefix as f64 / p.k as f64;
        assert!(share > 0.35, "byz chain share {share} should approach 1/2");
    }

    #[test]
    fn randomized_tie_defends_against_forkmaker() {
        // The same fork strategy against randomized tie-breaking yields a
        // Byzantine share near 1/3 — validity survives at t = n/3.
        let p = Params::new(9, 3, 0.5, 31, 0);
        let rate = failure_rate(p, TieBreak::Randomized, ChainAdversary::ForkMaker, 60);
        assert!(
            rate < 0.35,
            "randomized ties must blunt the fork strategy, rate {rate}"
        );
    }

    #[test]
    fn tiebreaker_kills_randomized_chain_when_lambda_t_big() {
        // λt = 2 ≥ 1: the tie-break adversary claims every second chain
        // slot → validity collapses well below n/2.
        let p = Params::new(12, 4, 0.5, 31, 0); // λt = 2, t/n = 1/3
        let rate = failure_rate(p, TieBreak::Randomized, ChainAdversary::TieBreaker, 60);
        assert!(
            rate > 0.5,
            "tie-breaker with λt=2 must break validity, rate {rate}"
        );
    }

    #[test]
    fn tiebreaker_harmless_when_lambda_t_small() {
        // λt = 0.1 ≪ 1: a token per interval almost never available.
        let p = Params::new(12, 1, 0.1, 31, 0);
        let rate = failure_rate(p, TieBreak::Randomized, ChainAdversary::TieBreaker, 60);
        assert!(rate < 0.2, "λt=0.1 should be tolerable, rate {rate}");
    }

    #[test]
    fn dissenter_chain_share_matches_lambda_t_formula() {
        // A tip-riding Byzantine node claims chain slots at rate λt per
        // interval while the forking correct nodes land ≈ 1 per interval:
        // expected Byzantine chain share ≈ λt/(1+λt). This is the same
        // algebra as the Theorem 5.4 bound (share 1/2 ⇔ λt = 1).
        let p = Params::new(12, 2, 0.3, 61, 0); // λt = 0.6 → share ≈ 0.375
        let mut share_sum = 0.0;
        let trials = 40;
        for s in 0..trials {
            let out = run_chain(
                &p.with_seed(s),
                TieBreak::Randomized,
                ChainAdversary::Dissenter,
            );
            share_sum += out.byz_in_prefix as f64 / p.k as f64;
        }
        let share = share_sum / trials as f64;
        let predicted = 0.6 / 1.6;
        assert!(
            (share - predicted).abs() < 0.12,
            "byz chain share {share} should be ≈ {predicted}"
        );
    }

    #[test]
    fn view_policies_agree_on_the_threshold_shape() {
        // Ablation A5: the interval-snapshot and lagged-Δ readings of
        // synchrony give the same qualitative resilience — well-below the
        // bound both succeed, well-above both fail.
        use crate::params::ViewPolicy;
        let below = Params::new(12, 1, 0.1, 31, 0); // λt = 0.1, bound ≈ 0.48
        let above = Params::new(12, 5, 0.8, 31, 0); // λt = 4, far past bound
        for vp in [ViewPolicy::IntervalSnapshot, ViewPolicy::LaggedDelta] {
            let lo = failure_rate(
                below.with_view_policy(vp),
                TieBreak::Randomized,
                ChainAdversary::TieBreaker,
                40,
            );
            let hi = failure_rate(
                above.with_view_policy(vp),
                TieBreak::Randomized,
                ChainAdversary::TieBreaker,
                40,
            );
            assert!(lo < 0.25, "{vp:?}: below-bound failure {lo}");
            assert!(hi > 0.75, "{vp:?}: above-bound failure {hi}");
        }
    }

    #[test]
    fn lagged_views_fork_at_least_as_much() {
        // A lagged view is exactly Δ old; an interval snapshot is < Δ old.
        // The lagged (older) views are the conservative worst case: they
        // orphan at least as many correct appends.
        use crate::params::ViewPolicy;
        let mut lag_total = 0usize;
        let mut snap_total = 0usize;
        for seed in 0..10 {
            let p = Params::new(16, 0, 1.0, 25, seed);
            snap_total +=
                run_chain(&p, TieBreak::Randomized, ChainAdversary::Absent).orphaned_correct;
            lag_total += run_chain(
                &p.with_view_policy(ViewPolicy::LaggedDelta),
                TieBreak::Randomized,
                ChainAdversary::Absent,
            )
            .orphaned_correct;
        }
        assert!(
            lag_total >= snap_total,
            "lagged {lag_total} must orphan ≥ snapshot {snap_total}"
        );
    }

    #[test]
    fn trial_is_deterministic_per_seed() {
        let p = Params::new(10, 3, 0.5, 21, 99);
        let a = run_chain(&p, TieBreak::Randomized, ChainAdversary::TieBreaker);
        let b = run_chain(&p, TieBreak::Randomized, ChainAdversary::TieBreaker);
        assert_eq!(a, b);
    }

    #[test]
    fn chain_len_reaches_k() {
        let p = Params::new(8, 2, 0.3, 17, 4);
        for adv in [
            ChainAdversary::Absent,
            ChainAdversary::Dissenter,
            ChainAdversary::ForkMaker,
            ChainAdversary::TieBreaker,
        ] {
            let out = run_chain(&p, TieBreak::Randomized, adv);
            assert!(out.chain_len >= p.k, "{adv:?}: {}", out.chain_len);
        }
    }
}
