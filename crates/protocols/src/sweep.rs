//! The adaptive Monte-Carlo sweep engine.
//!
//! Every theorem experiment is a sweep: a grid of parameter points, each
//! estimating a Bernoulli failure probability by repeated simulation.
//! This module is the one engine those sweeps share:
//!
//! * **Batched, schedule-independent trials.** Each point runs trials in
//!   rayon-parallel batches; trial `i` is seeded by
//!   [`trial_seed`](crate::runner::trial_seed)`(seed, i)`, so the tally is
//!   a pure function of `(seed, trial count)` — independent of batch
//!   boundaries, thread schedule, and interruption.
//! * **Sequential stopping.** In [`SweepMode::Adaptive`] the engine
//!   consults an [`am_stats::StopRule`] between batches and stops a point
//!   as soon as its Wilson half-width reaches the target — easy points
//!   (failure rate ≈ 0 or ≈ 1) finish in a batch or two, hard points near
//!   the resilience threshold run to the budget cap. [`SweepMode::Fixed`]
//!   reproduces the historic fixed-budget tables exactly.
//! * **Checkpoint/resume.** With a [`CheckpointStore`] attached, the
//!   engine persists per-point tallies and the batch cursor after every
//!   batch; a resumed run restores them and continues at the cursor,
//!   producing bit-identical final results (integer tallies + the same
//!   per-index seeds leave nothing schedule-dependent).
//! * **Warm workers.** Rayon pool threads persist for the process
//!   lifetime, so the `thread_local!` arenas in [`crate::scratch`]
//!   (banked-grant buffer, GHOST weight bitsets) warm up on a worker's
//!   first trial and are reused by every later trial that worker runs —
//!   the batched fan-out amortises allocation across the whole sweep,
//!   not just one trial. Buffers are cleared before reuse, so tallies
//!   stay bit-identical regardless of which worker runs which trial.
//!
//! Observability: `sweep.batches`, `sweep.trials`, and
//! `sweep.trials_saved` counters, plus a `sweep/<key>` span per point.
//! Sharded and merging engines add `sweep.shard.trials`,
//! `sweep.merge.windows_reused`, and `sweep.merge.topup_trials`.
//!
//! **Multi-process sharding.** Because tallies are pure functions of
//! `(seed, trial index)`, a sweep can be split across OS processes by
//! residue class (see [`crate::shard`]): [`SweepRunner::sharded`] runs
//! one interleaved slice and records per-window hits to a
//! [`ShardCheckpointStore`]; [`SweepRunner::merging`] replays the
//! unsharded batch loop with each window's hits summed over shard files,
//! re-running any window a shard never recorded, and produces results
//! bit-identical to the single-process engine — adaptive early stops
//! included.

use crate::params::Params;
use crate::runner::{trial_seed, TrialKind};
use crate::shard::{
    surely_stopped, write_atomic, ShardCheckpointStore, ShardMergeSource, ShardPointCheckpoint,
};
use am_stats::{Proportion, StopReason, StopRule, WilsonInterval};
use rayon::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// How a sweep spends its per-point trial budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SweepMode {
    /// Historic behaviour: every point runs its full budget.
    Fixed,
    /// Sequential stopping: batches until the 95% Wilson half-width is
    /// ≤ `target_half_width` or the budget cap is hit.
    Adaptive {
        /// The Wilson 95% half-width at which a point stops sampling.
        target_half_width: f64,
    },
}

/// Engine configuration shared by every point of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepConfig {
    /// Fixed or adaptive budget spending.
    pub mode: SweepMode,
    /// Trials per batch (the granularity of stopping checks and
    /// checkpoints).
    pub batch: u64,
    /// When set, each point runs at most this many batches *in this
    /// process* and then reports itself incomplete — a deterministic
    /// stand-in for a mid-sweep kill, used by the `--resume` round-trip
    /// test lane.
    pub max_batches_per_run: Option<u64>,
}

impl SweepConfig {
    /// The historic default: fixed budgets, 32-trial batches.
    pub fn fixed() -> SweepConfig {
        SweepConfig {
            mode: SweepMode::Fixed,
            batch: 32,
            max_batches_per_run: None,
        }
    }

    /// Adaptive stopping at the given Wilson 95% half-width target.
    pub fn adaptive(target_half_width: f64) -> SweepConfig {
        SweepConfig {
            mode: SweepMode::Adaptive { target_half_width },
            batch: 32,
            max_batches_per_run: None,
        }
    }

    /// The stop rule this configuration induces for a point with the
    /// given trial budget.
    pub fn rule(&self, budget: u64) -> StopRule {
        match self.mode {
            // A fixed rule "stops" only at the budget; the unreachable
            // half-width target keeps the check inert.
            SweepMode::Fixed => StopRule {
                target_half_width: 0.0,
                z: 1.959964,
                max_trials: budget,
                min_trials: budget,
            },
            SweepMode::Adaptive { target_half_width } => {
                let mut rule = StopRule::wilson95(target_half_width, budget);
                // Never stop before one batch of evidence, but also never
                // demand more than the budget itself.
                rule.min_trials = self.batch.min(budget);
                rule
            }
        }
    }
}

/// Outcome of one sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointResult {
    /// The failure tally over the trials actually run.
    pub tally: Proportion,
    /// The budget the point was allowed.
    pub budget: u64,
    /// Batches executed (across resumes).
    pub batches: u64,
    /// Why sampling stopped.
    pub stop: StopReason,
    /// False when `max_batches_per_run` halted the point mid-budget; the
    /// checkpoint holds the cursor for a later `--resume`.
    pub complete: bool,
}

impl PointResult {
    /// Trials actually run.
    pub fn trials_used(&self) -> u64 {
        self.tally.trials
    }

    /// Point estimate of the failure probability.
    pub fn estimate(&self) -> f64 {
        self.tally.estimate()
    }

    /// The achieved 95% Wilson interval.
    pub fn ci95(&self) -> WilsonInterval {
        self.tally.wilson95()
    }

    /// Trials the stopping rule saved relative to the full budget.
    pub fn trials_saved(&self) -> u64 {
        self.budget.saturating_sub(self.tally.trials)
    }
}

/// Per-point persistent state: the tally and the batch cursor. The
/// cursor always equals `trials` because every trial index below it has
/// run exactly once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PointCheckpoint {
    /// Failure count so far.
    pub hits: u64,
    /// Trials run so far (also the next trial index).
    pub trials: u64,
    /// Batches executed so far.
    pub batches: u64,
    /// Whether the point's stopping rule has fired.
    pub done: bool,
}

/// The on-disk checkpoint: schema, base seed, and per-point tallies,
/// written atomically (tmp + rename) after every batch.
///
/// The store is keyed by caller-chosen stable strings (e.g.
/// `"e8/l0.2/t3/chain"`); a resumed run with the same seed restores each
/// key's cursor and continues, which — with index-derived trial seeds —
/// reproduces the uninterrupted run bit for bit. A checkpoint recorded
/// under a different base seed is ignored on load.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    seed: u64,
    points: Mutex<BTreeMap<String, PointCheckpoint>>,
}

/// Version stamp of the checkpoint JSON document.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// How many batch windows a shard runs between checkpoint flushes. The
/// in-memory tally is always current; only the file lags. A mid-flush
/// kill therefore costs at most this many windows of one shard's work
/// (the merge re-runs whatever the file is missing), while the sweep
/// avoids rewriting the whole checkpoint after every window.
const SHARD_FLUSH_WINDOWS: usize = 256;

impl CheckpointStore {
    /// A fresh store writing to `path`; any existing file is ignored and
    /// will be overwritten at the first batch.
    pub fn create(path: impl Into<PathBuf>, seed: u64) -> CheckpointStore {
        CheckpointStore {
            path: path.into(),
            seed,
            points: Mutex::new(BTreeMap::new()),
        }
    }

    /// Resumes from `path` if it holds a checkpoint for the same seed;
    /// otherwise starts fresh (a seed mismatch means the tallies belong
    /// to a different run and must not be continued).
    pub fn resume(path: impl Into<PathBuf>, seed: u64) -> CheckpointStore {
        let path = path.into();
        let points = std::fs::read_to_string(&path)
            .ok()
            .and_then(|body| Self::parse(&body, seed))
            .unwrap_or_default();
        CheckpointStore {
            path,
            seed,
            points: Mutex::new(points),
        }
    }

    fn parse(body: &str, seed: u64) -> Option<BTreeMap<String, PointCheckpoint>> {
        let v: Value = serde_json::from_str(body).ok()?;
        if v.get("schema_version")?.as_u64()? != CHECKPOINT_SCHEMA_VERSION as u64
            || v.get("seed")?.as_u64()? != seed
        {
            return None;
        }
        let Value::Object(entries) = v.get("points")? else {
            return None;
        };
        let mut points = BTreeMap::new();
        for (key, val) in entries {
            points.insert(key.clone(), PointCheckpoint::from_value(val).ok()?);
        }
        Some(points)
    }

    /// The file this store writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded state of a point, if any.
    pub fn lookup(&self, key: &str) -> Option<PointCheckpoint> {
        self.points.lock().unwrap().get(key).copied()
    }

    /// Records a point's state and rewrites the checkpoint file.
    pub fn update(&self, key: &str, cp: PointCheckpoint) -> io::Result<()> {
        let body = {
            let mut points = self.points.lock().unwrap();
            points.insert(key.to_string(), cp);
            self.render(&points)
        };
        write_atomic(&self.path, &body)
    }

    fn render(&self, points: &BTreeMap<String, PointCheckpoint>) -> String {
        let doc = Value::Object(vec![
            (
                "schema_version".to_string(),
                CHECKPOINT_SCHEMA_VERSION.to_value(),
            ),
            ("seed".to_string(), self.seed.to_value()),
            (
                "points".to_string(),
                Value::Object(
                    points
                        .iter()
                        .map(|(k, cp)| (k.clone(), cp.to_value()))
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".into())
    }

    /// Whether every recorded point has finished its stopping rule —
    /// false after a `max_batches_per_run` halt (or a crash mid-sweep).
    pub fn all_done(&self) -> bool {
        self.points.lock().unwrap().values().all(|cp| cp.done)
    }

    /// Deletes the checkpoint file (call after the final results are
    /// safely written; a stale checkpoint would shadow the next run).
    pub fn discard(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The engine: a configuration plus an optional checkpoint store.
///
/// ```
/// use am_protocols::sweep::{SweepConfig, SweepRunner};
/// let runner = SweepRunner::new(SweepConfig::adaptive(0.05));
/// // A deterministic coin: trial i fails iff its low bit is set.
/// let r = runner.estimate("demo", 10_000, |i| i % 2 == 0);
/// assert!(r.complete);
/// assert!(r.trials_used() < 10_000, "a fair coin stops well short");
/// assert!(r.ci95().contains(0.5));
/// ```
pub struct SweepRunner<'a> {
    cfg: SweepConfig,
    checkpoint: Option<&'a CheckpointStore>,
    exec: Exec<'a>,
}

/// How the engine executes trials: locally (the historic single-process
/// path), as one shard of a multi-process run, or as the merge step
/// reassembling shard tallies.
enum Exec<'a> {
    Local,
    Shard(&'a ShardCheckpointStore),
    Merge(&'a ShardMergeSource),
}

impl<'a> SweepRunner<'a> {
    /// An engine without checkpointing (library/test use).
    pub fn new(cfg: SweepConfig) -> SweepRunner<'static> {
        SweepRunner {
            cfg,
            checkpoint: None,
            exec: Exec::Local,
        }
    }

    /// An engine persisting per-point state to `store` after every batch.
    pub fn with_checkpoints(cfg: SweepConfig, store: &'a CheckpointStore) -> SweepRunner<'a> {
        SweepRunner {
            cfg,
            checkpoint: Some(store),
            exec: Exec::Local,
        }
    }

    /// An engine running one interleaved slice of every point: only trial
    /// indices owned by `store`'s [`ShardSpec`](crate::shard::ShardSpec)
    /// run, and per-window hit counts are persisted to `store` for a
    /// later [`SweepRunner::merging`] pass. The returned tallies cover
    /// this shard's indices only — they are progress reports, not the
    /// sweep's estimates.
    pub fn sharded(cfg: SweepConfig, store: &'a ShardCheckpointStore) -> SweepRunner<'a> {
        SweepRunner {
            cfg,
            checkpoint: None,
            exec: Exec::Shard(store),
        }
    }

    /// An engine replaying the unsharded batch loop with each window's
    /// hits reassembled from `source`'s shard files; windows no shard
    /// recorded are re-run inline ("top-up"), so the results are
    /// bit-identical to a single-process run regardless of shard deaths
    /// or divergence. An optional `store` checkpoints the merged state
    /// exactly like an unsharded run.
    pub fn merging(
        cfg: SweepConfig,
        source: &'a ShardMergeSource,
        store: Option<&'a CheckpointStore>,
    ) -> SweepRunner<'a> {
        SweepRunner {
            cfg,
            checkpoint: store,
            exec: Exec::Merge(source),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Estimates a Bernoulli proportion: `trial(i)` runs trial `i` and
    /// returns whether the event occurred. `key` names the point in the
    /// checkpoint file and its obs span; it must be stable across runs
    /// and unique within the sweep.
    ///
    /// The trial function must be deterministic in `i` (derive all
    /// randomness from `i`, e.g. via
    /// [`trial_seed`](crate::runner::trial_seed)); the engine guarantees
    /// each index in `0..trials_used` runs exactly once, across batches
    /// and resumes.
    pub fn estimate<F>(&self, key: &str, budget: u64, trial: F) -> PointResult
    where
        F: Fn(u64) -> bool + Sync,
    {
        match self.exec {
            Exec::Local => self.estimate_with(key, budget, |_window, lo, n| {
                (lo..lo + n).into_par_iter().filter(|&i| trial(i)).count() as u64
            }),
            Exec::Merge(source) => {
                let shards = u64::from(source.count());
                self.estimate_with(key, budget, |window, lo, n| {
                    // Reassemble this window's hits shard by shard; any
                    // residue class without a recorded tally (killed
                    // shard, or a shard whose local view stopped this
                    // point earlier) is topped up by running its trial
                    // indices right here.
                    let mut hits = 0u64;
                    for r in 0..shards {
                        match source.hits(key, r as u32, window) {
                            Some(h) => {
                                hits += h;
                                am_obs::counter("sweep.merge.windows_reused").inc();
                            }
                            None => {
                                hits += (lo..lo + n)
                                    .into_par_iter()
                                    .filter(|&i| i % shards == r)
                                    .filter(|&i| trial(i))
                                    .count() as u64;
                                am_obs::counter("sweep.merge.topup_trials").add(n.div_ceil(shards));
                            }
                        }
                    }
                    hits
                })
            }
            Exec::Shard(store) => self.estimate_shard(store, key, budget, &trial),
        }
    }

    /// The unsharded batch loop, generic over where a window's hit count
    /// comes from: `window_hits(window, lo, n)` must return the failure
    /// count over global trial indices `[lo, lo + n)` — by running them
    /// ([`Exec::Local`]) or by summing shard tallies ([`Exec::Merge`]).
    /// Stopping decisions, checkpoint writes, and counters are identical
    /// either way, which is what makes the merge bit-exact.
    fn estimate_with<W>(&self, key: &str, budget: u64, mut window_hits: W) -> PointResult
    where
        W: FnMut(u64, u64, u64) -> u64,
    {
        let _span = am_obs::span(format!("sweep/{key}"));
        let rule = self.cfg.rule(budget);
        let mut cp = self
            .checkpoint
            .and_then(|s| s.lookup(key))
            .unwrap_or_default();
        let mut batches_this_run = 0u64;
        loop {
            let tally = Proportion::from_counts(cp.hits, cp.trials);
            if cp.done {
                // Replayed from a checkpoint that already stopped; the
                // reason is re-derived from the same rule and tally.
                let stop = rule.check(&tally).unwrap_or(StopReason::Budget);
                return self.finish(budget, cp, stop);
            }
            if let Some(stop) = rule.check(&tally) {
                cp.done = true;
                self.save(key, cp);
                am_obs::counter("sweep.trials_saved").add(budget.saturating_sub(cp.trials));
                return self.finish(budget, cp, stop);
            }
            if self
                .cfg
                .max_batches_per_run
                .is_some_and(|cap| batches_this_run >= cap)
            {
                return PointResult {
                    tally,
                    budget,
                    batches: cp.batches,
                    stop: StopReason::Budget,
                    complete: false,
                };
            }
            let n = rule.next_batch(cp.trials, self.cfg.batch);
            debug_assert!(n > 0, "rule must stop before an empty batch");
            let hits = window_hits(cp.batches, cp.trials, n);
            cp.hits += hits;
            cp.trials += n;
            cp.batches += 1;
            batches_this_run += 1;
            am_obs::counter("sweep.batches").inc();
            am_obs::counter("sweep.trials").add(n);
            self.save(key, cp);
        }
    }

    /// One shard's slice of a point: runs only the trial indices its
    /// residue class owns inside each global batch window, records the
    /// per-window hits, and stops once the *global* rule has provably
    /// fired ([`surely_stopped`]) — the conservative bound means a shard
    /// may run a few windows past where the merged run will stop, never
    /// fewer. The returned tally covers this shard's indices only.
    fn estimate_shard<F>(
        &self,
        store: &ShardCheckpointStore,
        key: &str,
        budget: u64,
        trial: &F,
    ) -> PointResult
    where
        F: Fn(u64) -> bool + Sync,
    {
        let _span = am_obs::span(format!("sweep/{key}"));
        let rule = self.cfg.rule(budget);
        let spec = store.spec();
        let mut cp = store.lookup(key).unwrap_or_default();
        // The global trial boundary after the recorded windows; window
        // sizes are deterministic, so it is reconstructible from the
        // window count alone.
        let mut bound = (cp.batch_hits.len() as u64 * self.cfg.batch).min(budget);
        let mut own_hits: u64 = cp.batch_hits.iter().sum();
        let mut own_trials = spec.trials_in(0, bound);
        let mut batches_this_run = 0u64;
        loop {
            if !cp.done && surely_stopped(&rule, own_hits, own_trials, bound) {
                cp.done = true;
                self.save_shard(store, key, &cp);
            }
            if cp.done {
                let stop = if bound >= budget {
                    StopReason::Budget
                } else {
                    StopReason::HalfWidth
                };
                return self.finish(
                    budget,
                    PointCheckpoint {
                        hits: own_hits,
                        trials: own_trials,
                        batches: cp.batch_hits.len() as u64,
                        done: true,
                    },
                    stop,
                );
            }
            if self
                .cfg
                .max_batches_per_run
                .is_some_and(|cap| batches_this_run >= cap)
            {
                // Durability boundary: persist any staged windows before
                // handing control back for the resume.
                self.save_shard(store, key, &cp);
                return PointResult {
                    tally: Proportion::from_counts(own_hits, own_trials),
                    budget,
                    batches: cp.batch_hits.len() as u64,
                    stop: StopReason::Budget,
                    complete: false,
                };
            }
            let n = rule.next_batch(bound, self.cfg.batch);
            debug_assert!(n > 0, "surely_stopped must fire at the budget");
            let hits = (bound..bound + n)
                .into_par_iter()
                .filter(|&i| spec.owns(i))
                .filter(|&i| trial(i))
                .count() as u64;
            let own_n = spec.trials_in(bound, bound + n);
            cp.batch_hits.push(hits);
            own_hits += hits;
            own_trials += own_n;
            bound += n;
            batches_this_run += 1;
            am_obs::counter("sweep.batches").inc();
            am_obs::counter("sweep.shard.trials").add(own_n);
            // Rewriting the file every window is O(windows²) I/O on
            // scaled sweeps; stage in memory and flush every
            // SHARD_FLUSH_WINDOWS (a kill loses at most that many
            // windows of one shard's work — the merge re-runs them).
            if cp.batch_hits.len().is_multiple_of(SHARD_FLUSH_WINDOWS) {
                self.save_shard(store, key, &cp);
            } else {
                store.stage(key, cp.clone());
            }
        }
    }

    fn save_shard(&self, store: &ShardCheckpointStore, key: &str, cp: &ShardPointCheckpoint) {
        store.stage(key, cp.clone());
        if let Err(e) = store.flush() {
            eprintln!(
                "[sweep] shard checkpoint write to {} failed: {e}",
                store.path().display()
            );
        }
    }

    /// Estimates the validity-failure rate of `kind` at `p` — the
    /// protocol-trial form of [`SweepRunner::estimate`], seeding trial
    /// `i` with `trial_seed(p.seed, i)` exactly as
    /// [`measure_failure_rate`](crate::runner::measure_failure_rate)
    /// always has.
    pub fn measure(&self, key: &str, p: &Params, kind: TrialKind, budget: u64) -> PointResult {
        let result = self.estimate(key, budget, |i| {
            kind.run_one(&p.with_seed(trial_seed(p.seed, i)))
        });
        am_obs::counter("protocols.trials").add(result.trials_used());
        am_obs::counter("protocols.failures").add(result.tally.hits);
        result
    }

    fn save(&self, key: &str, cp: PointCheckpoint) {
        if let Some(store) = self.checkpoint {
            if let Err(e) = store.update(key, cp) {
                // Checkpointing is crash insurance, not correctness; a
                // full disk must not kill the sweep itself.
                eprintln!(
                    "[sweep] checkpoint write to {} failed: {e}",
                    store.path().display()
                );
            }
        }
    }

    fn finish(&self, budget: u64, cp: PointCheckpoint, stop: StopReason) -> PointResult {
        let stop = match self.cfg.mode {
            SweepMode::Fixed => StopReason::Fixed,
            SweepMode::Adaptive { .. } => stop,
        };
        PointResult {
            tally: Proportion::from_counts(cp.hits, cp.trials),
            budget,
            batches: cp.batches,
            stop,
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainAdversary, TieBreak};
    use crate::runner::measure_failure_rate;

    fn coin(i: u64) -> bool {
        // A deterministic ~30% coin on the trial index.
        trial_seed(9, i) % 10 < 3
    }

    #[test]
    fn fixed_mode_runs_exactly_the_budget() {
        let runner = SweepRunner::new(SweepConfig::fixed());
        let r = runner.estimate("fixed", 100, coin);
        assert_eq!(r.trials_used(), 100);
        assert_eq!(r.stop, StopReason::Fixed);
        assert_eq!(r.batches, 4); // 32+32+32+4
        assert!(r.complete);
        assert_eq!(r.trials_saved(), 0);
    }

    #[test]
    fn fixed_mode_matches_measure_failure_rate() {
        let p = Params::new(8, 3, 0.5, 15, 77);
        let kind = TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker);
        let old = measure_failure_rate(&p, kind, 64);
        let new = SweepRunner::new(SweepConfig::fixed()).measure("m", &p, kind, 64);
        assert_eq!(
            new.tally, old,
            "the engine must reproduce the historic tallies"
        );
    }

    #[test]
    fn adaptive_stops_early_on_easy_points() {
        let runner = SweepRunner::new(SweepConfig::adaptive(0.05));
        let r = runner.estimate("easy", 10_000, |_| false);
        assert_eq!(r.stop, StopReason::HalfWidth);
        assert!(
            r.trials_used() <= 96,
            "an all-clear point should stop within a few batches, used {}",
            r.trials_used()
        );
        assert!(r.trials_saved() > 9_000);
    }

    #[test]
    fn adaptive_hits_budget_on_hard_points() {
        let runner = SweepRunner::new(SweepConfig::adaptive(0.01));
        let r = runner.estimate("hard", 200, |i| i % 2 == 0);
        assert_eq!(r.stop, StopReason::Budget);
        assert_eq!(r.trials_used(), 200);
    }

    #[test]
    fn adaptive_prefix_of_fixed() {
        // The adaptive tally is the fixed tally's prefix: same indices,
        // same seeds.
        let runner = SweepRunner::new(SweepConfig::adaptive(0.04));
        let adaptive = runner.estimate("prefix", 4000, coin);
        let mut prefix = Proportion::new();
        for i in 0..adaptive.trials_used() {
            prefix.record(coin(i));
        }
        assert_eq!(adaptive.tally, prefix);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join("am_sweep_ckpt_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("checkpoint.json");

        // Uninterrupted reference.
        let full = SweepRunner::new(SweepConfig::adaptive(0.03)).estimate("pt", 4000, coin);

        // Interrupted after one batch per process, resumed until done.
        let mut halted_cfg = SweepConfig::adaptive(0.03);
        halted_cfg.max_batches_per_run = Some(1);
        let store = CheckpointStore::create(&path, 9);
        let first = SweepRunner::with_checkpoints(halted_cfg, &store).estimate("pt", 4000, coin);
        assert!(!first.complete);
        assert!(!store.all_done());
        let mut resumed = first;
        for _ in 0..200 {
            let store = CheckpointStore::resume(&path, 9);
            resumed = SweepRunner::with_checkpoints(halted_cfg, &store).estimate("pt", 4000, coin);
            if resumed.complete {
                assert!(store.all_done());
                break;
            }
        }
        assert!(resumed.complete, "resume loop never finished");
        assert_eq!(resumed.tally, full.tally);
        assert_eq!(resumed.batches, full.batches);
        assert_eq!(resumed.stop, full.stop);

        // A third run over the finished checkpoint replays without trials.
        let store = CheckpointStore::resume(&path, 9);
        let replay = SweepRunner::with_checkpoints(halted_cfg, &store)
            .estimate("pt", 4000, |_| panic!("done points must not re-run trials"));
        assert_eq!(replay.tally, full.tally);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_ignores_other_seeds() {
        let dir = std::env::temp_dir().join("am_sweep_seed_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("checkpoint.json");
        let store = CheckpointStore::create(&path, 1);
        store
            .update(
                "k",
                PointCheckpoint {
                    hits: 5,
                    trials: 10,
                    batches: 1,
                    done: true,
                },
            )
            .unwrap();
        assert!(CheckpointStore::resume(&path, 1).lookup("k").is_some());
        assert!(
            CheckpointStore::resume(&path, 2).lookup("k").is_none(),
            "a different seed's tallies must not be continued"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn shard_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("am_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    fn run_sharded_and_merge(
        cfg: SweepConfig,
        shards: u32,
        budget: u64,
        tag: &str,
        kill_shard: Option<u32>,
    ) -> PointResult {
        use crate::shard::{ShardCheckpointStore, ShardMergeSource, ShardSpec};
        let dir = shard_dir(tag);
        for index in 0..shards {
            let spec = ShardSpec::new(index, shards).unwrap();
            let path = dir.join(spec.file_name("pt"));
            if kill_shard == Some(index) {
                // Simulate a kill mid-run: one window per process, one
                // process — the shard file ends incomplete.
                let mut halted = cfg;
                halted.max_batches_per_run = Some(1);
                let store = ShardCheckpointStore::create(&path, 9, spec, &halted);
                let r = SweepRunner::sharded(halted, &store).estimate("pt", budget, coin);
                assert!(!r.complete || budget <= halted.batch);
            } else {
                let store = ShardCheckpointStore::create(&path, 9, spec, &cfg);
                let r = SweepRunner::sharded(cfg, &store).estimate("pt", budget, coin);
                assert!(r.complete);
                assert!(store.all_done());
            }
        }
        let (source, warnings) = ShardMergeSource::load(&dir, "pt", shards, 9, &cfg);
        assert!(warnings.is_empty(), "all shard files present: {warnings:?}");
        let merged = SweepRunner::merging(cfg, &source, None).estimate("pt", budget, coin);
        source.discard_files();
        let _ = std::fs::remove_dir_all(&dir);
        merged
    }

    #[test]
    fn sharded_merge_matches_unsharded_fixed() {
        let cfg = SweepConfig::fixed();
        let full = SweepRunner::new(cfg).estimate("pt", 500, coin);
        for shards in [1, 2, 4, 7] {
            let merged = run_sharded_and_merge(cfg, shards, 500, "fx", None);
            assert_eq!(merged, full, "{shards} shards");
        }
    }

    #[test]
    fn sharded_merge_matches_unsharded_adaptive() {
        // Adaptive early stop: the merged run must stop at the same batch
        // with the same tally even though each shard saw a different
        // slice of the evidence.
        let cfg = SweepConfig::adaptive(0.04);
        let full = SweepRunner::new(cfg).estimate("pt", 4000, coin);
        assert_eq!(full.stop, StopReason::HalfWidth, "test wants an early stop");
        for shards in [1, 2, 4] {
            let merged = run_sharded_and_merge(cfg, shards, 4000, "ad", None);
            assert_eq!(merged, full, "{shards} shards");
        }
    }

    #[test]
    fn merge_tops_up_a_killed_shard() {
        // Shard 1 of 3 dies after one window; the merge re-runs its
        // residue class inline and still reproduces the unsharded run.
        let cfg = SweepConfig::adaptive(0.04);
        let full = SweepRunner::new(cfg).estimate("pt", 4000, coin);
        let merged = run_sharded_and_merge(cfg, 3, 4000, "kill", Some(1));
        assert_eq!(merged, full);
    }

    #[test]
    fn merge_with_no_shard_files_degrades_to_local() {
        // All shards missing: the merge runs every trial itself.
        use crate::shard::ShardMergeSource;
        let dir = shard_dir("empty");
        let cfg = SweepConfig::adaptive(0.04);
        let (source, warnings) = ShardMergeSource::load(&dir, "pt", 4, 9, &cfg);
        assert_eq!(warnings.len(), 4);
        let merged = SweepRunner::merging(cfg, &source, None).estimate("pt", 4000, coin);
        let full = SweepRunner::new(cfg).estimate("pt", 4000, coin);
        assert_eq!(merged, full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_shard_resumes_from_its_checkpoint() {
        use crate::shard::{ShardCheckpointStore, ShardSpec};
        let cfg = SweepConfig::adaptive(0.03);
        let budget = 4000;
        let dir = shard_dir("resume");
        let spec = ShardSpec::new(1, 4).unwrap();
        let path = dir.join(spec.file_name("pt"));

        // Reference: the shard run uninterrupted.
        let clean_store = ShardCheckpointStore::create(&path, 9, spec, &cfg);
        let clean = SweepRunner::sharded(cfg, &clean_store).estimate("pt", budget, coin);
        let clean_cp = clean_store.lookup("pt").unwrap();
        clean_store.discard();

        // One window per process, resumed until done.
        let mut halted = cfg;
        halted.max_batches_per_run = Some(1);
        let store = ShardCheckpointStore::create(&path, 9, spec, &halted);
        let first = SweepRunner::sharded(halted, &store).estimate("pt", budget, coin);
        assert!(!first.complete);
        let mut resumed = first;
        for _ in 0..400 {
            let store = ShardCheckpointStore::resume(&path, 9, spec, &halted);
            resumed = SweepRunner::sharded(halted, &store).estimate("pt", budget, coin);
            if resumed.complete {
                assert_eq!(store.lookup("pt").unwrap(), clean_cp);
                break;
            }
        }
        assert!(resumed.complete, "resume loop never finished");
        assert_eq!(resumed, clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_overrun_is_bounded_and_sufficient() {
        // A shard stops at or after the global stop point (never before),
        // so the merge never asks for an unrecorded window of a healthy
        // shard — pin that containment directly.
        use crate::shard::{ShardCheckpointStore, ShardSpec};
        let cfg = SweepConfig::adaptive(0.04);
        let budget = 4000;
        let full = SweepRunner::new(cfg).estimate("pt", budget, coin);
        let dir = shard_dir("overrun");
        for index in 0..3u32 {
            let spec = ShardSpec::new(index, 3).unwrap();
            let store = ShardCheckpointStore::create(dir.join(spec.file_name("pt")), 9, spec, &cfg);
            SweepRunner::sharded(cfg, &store).estimate("pt", budget, coin);
            let cp = store.lookup("pt").unwrap();
            assert!(
                cp.batch_hits.len() as u64 >= full.batches,
                "shard {index} recorded {} windows < global {}",
                cp.batch_hits.len(),
                full.batches
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixed_rule_never_stops_early() {
        let cfg = SweepConfig::fixed();
        let rule = cfg.rule(500);
        assert_eq!(rule.check(&Proportion::from_counts(0, 499)), None);
        assert_eq!(
            rule.check(&Proportion::from_counts(0, 500)),
            Some(StopReason::Budget)
        );
    }
}
