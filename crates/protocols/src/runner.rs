//! Parallel Monte-Carlo estimation over trials.
//!
//! Fans trials out with rayon (`par_iter` over trial indices), each trial
//! deterministically seeded from the base seed and its index, and reduces
//! into [`Proportion`] tallies — the pattern the experiment harness and
//! the resilience-threshold searches are built on.

use crate::bft::{run_bft, run_bft_net, BftAdversary};
use crate::chain::{run_chain, ChainAdversary, TieBreak};
use crate::dag::{run_dag, DagAdversary, DagRule};
use crate::params::Params;
use crate::propagation::{run_chain_net, run_dag_net};
use crate::sweep::{SweepConfig, SweepRunner};
use crate::timestamp::run_timestamp;
use am_stats::{search_threshold, Proportion, ThresholdResult};

/// Which protocol/strategy combination a measurement runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialKind {
    /// Algorithm 4 under worst-case Byzantine values.
    Timestamp,
    /// Algorithm 5 with a tie-break rule and adversary.
    Chain(TieBreak, ChainAdversary),
    /// Algorithm 6 with an ordering rule and adversary.
    Dag(DagRule, DagAdversary),
    /// The embedded BFT finality layer with a finality-targeting
    /// adversary; a trial fails if finality stalls or a conflict is
    /// detected.
    Bft(BftAdversary),
}

impl TrialKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            TrialKind::Timestamp => "timestamp".into(),
            TrialKind::Chain(tie, adv) => format!("chain/{tie:?}/{adv:?}").to_lowercase(),
            TrialKind::Dag(rule, adv) => format!("dag/{rule:?}/{adv:?}").to_lowercase(),
            TrialKind::Bft(adv) => format!("bft/{}", adv.label()),
        }
    }

    /// Runs one trial; returns whether **validity failed**. When
    /// `p.net` is set, chain/DAG trials propagate blocks over the faulty
    /// network (the timestamp baseline has a central authority and no
    /// gossip, so the profile does not apply to it).
    pub fn run_one(&self, p: &Params) -> bool {
        match (self, p.net) {
            (TrialKind::Timestamp, _) => !run_timestamp(p).validity,
            (TrialKind::Chain(tie, adv), None) => !run_chain(p, *tie, *adv).validity,
            (TrialKind::Chain(tie, adv), Some(profile)) => {
                !run_chain_net(p, *tie, *adv, &profile).0.validity
            }
            (TrialKind::Dag(rule, adv), None) => !run_dag(p, *rule, *adv).validity,
            (TrialKind::Dag(rule, adv), Some(profile)) => {
                !run_dag_net(p, *rule, *adv, &profile).0.validity
            }
            (TrialKind::Bft(adv), None) => {
                let out = run_bft(p, *adv);
                !out.finality || out.conflict
            }
            (TrialKind::Bft(adv), Some(profile)) => {
                let out = run_bft_net(p, *adv, &profile).0;
                !out.finality || out.conflict
            }
        }
    }
}

/// Per-trial seed derivation: SplitMix of the base seed and index, so
/// parallel runs are reproducible and independent of scheduling.
pub fn trial_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Measures the validity-failure rate of `kind` at `p` over `trials`
/// Monte-Carlo runs, in parallel — the fixed-budget entry point, now a
/// thin wrapper over the [`crate::sweep`] engine (same trial indices,
/// same seeds, identical tallies).
pub fn measure_failure_rate(p: &Params, kind: TrialKind, trials: u64) -> Proportion {
    let _span = am_obs::span(format!("protocols/measure/{}", kind.label()));
    SweepRunner::new(SweepConfig::fixed())
        .measure(&kind.label(), p, kind, trials)
        .tally
}

/// Empirical resilience threshold: the largest `t` (over a probe grid up
/// to `n/2`) whose failure rate stays below `tol`.
pub fn resilience_threshold(
    base: &Params,
    kind: TrialKind,
    trials: u64,
    tol: f64,
) -> ThresholdResult {
    resilience_threshold_with(
        &SweepRunner::new(SweepConfig::fixed()),
        &kind.label(),
        base,
        kind,
        trials,
        tol,
    )
}

/// [`resilience_threshold`] through an explicit sweep engine: adaptive
/// runners stop each probed `t` early once its Wilson half-width is
/// tight, and checkpointing runners make the scan resumable. `key`
/// namespaces the probes in the checkpoint file.
pub fn resilience_threshold_with(
    runner: &SweepRunner<'_>,
    key: &str,
    base: &Params,
    kind: TrialKind,
    trials: u64,
    tol: f64,
) -> ThresholdResult {
    let grid = am_stats::threshold::byzantine_grid(base.n as u64, 8);
    search_threshold(base.n as u64, &grid, tol, 0.9, |t| {
        runner
            .measure(
                &format!("{key}/t{t}"),
                &base.with_t(t as usize),
                kind,
                trials,
            )
            .tally
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        let c = trial_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(trial_seed(1, 0), a);
    }

    #[test]
    fn measure_is_reproducible_despite_parallelism() {
        let p = Params::new(8, 3, 0.5, 15, 77);
        let kind = TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker);
        let a = measure_failure_rate(&p, kind, 64);
        let b = measure_failure_rate(&p, kind, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn timestamp_clean_at_zero_byz() {
        let p = Params::new(8, 0, 1.0, 15, 1);
        let rate = measure_failure_rate(&p, TrialKind::Timestamp, 50);
        assert_eq!(rate.hits, 0);
    }

    #[test]
    fn threshold_search_finds_dag_above_chain() {
        // Small but end-to-end: at λ = 0.5, the DAG's empirical threshold
        // must exceed the chain's under their respective worst adversaries.
        let base = Params::new(8, 1, 0.5, 21, 5);
        let chain = resilience_threshold(
            &base,
            TrialKind::Chain(TieBreak::Randomized, ChainAdversary::TieBreaker),
            24,
            0.3,
        );
        let dag = resilience_threshold(
            &base,
            TrialKind::Dag(DagRule::LongestChain, DagAdversary::WithholdBurst),
            24,
            0.3,
        );
        assert!(
            dag.resilience >= chain.resilience,
            "dag {} must be ≥ chain {}",
            dag.resilience,
            chain.resilience
        );
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(TrialKind::Timestamp.label(), "timestamp");
        let l = TrialKind::Chain(TieBreak::Deterministic, ChainAdversary::ForkMaker).label();
        assert!(l.contains("chain") && l.contains("fork"));
        let l = TrialKind::Dag(DagRule::Ghost, DagAdversary::WithholdBurst).label();
        assert!(l.contains("dag") && l.contains("ghost"));
    }
}
